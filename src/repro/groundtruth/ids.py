"""A signature-based IDS over HTTP traces.

Stands in for the paper's "well-known commercial IDS".  Two frozen
signature generations model the paper's IDS2012 / IDS2013 split: running
both over a trace yields the ground-truth sets used throughout Section V
(servers labelled by 2012 signatures, and servers labelled only by the
newer 2013 signatures — the "zero-day" evidence).
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Callable, Iterable

from repro.groundtruth.labels import Signature, ThreatLabel
from repro.httplog.trace import HttpTrace


class SignatureIds:
    """Match a signature set against a trace and label servers.

    ``name`` identifies the signature generation (e.g. ``"ids2012"``).
    """

    def __init__(self, name: str, signatures: Iterable[Signature]) -> None:
        self.name = name
        self.signatures: tuple[Signature, ...] = tuple(signatures)
        # Index exact-server signatures for the fast path.
        self._by_server: dict[str, list[Signature]] = defaultdict(list)
        self._patterns: list[Signature] = []
        for signature in self.signatures:
            if signature.server is not None:
                self._by_server[signature.server].append(signature)
            else:
                self._patterns.append(signature)

    def __len__(self) -> int:
        return len(self.signatures)

    def label_servers(
        self,
        trace: HttpTrace,
        server_name: Callable[[str], str] | None = None,
    ) -> dict[str, frozenset[ThreatLabel]]:
        """Return server -> set of threat labels triggered in *trace*.

        ``server_name`` maps raw request hosts to the aggregated server
        identity SMASH operates on (so that IDS hits and SMASH inferences
        live in the same name space).  Servers with no hits are absent.
        """
        rename = server_name or (lambda host: host)
        hits: dict[str, set[ThreatLabel]] = defaultdict(set)
        for request in trace:
            name = rename(request.host)
            for signature in self._by_server.get(name, ()):
                if signature.matches(request, server_name=name):
                    hits[name].add(signature.label)
            for signature in self._patterns:
                if signature.matches(request, server_name=name):
                    hits[name].add(signature.label)
        return {server: frozenset(labels) for server, labels in hits.items()}

    def detected_servers(
        self,
        trace: HttpTrace,
        server_name: Callable[[str], str] | None = None,
    ) -> frozenset[str]:
        """Just the set of servers with at least one signature hit."""
        return frozenset(self.label_servers(trace, server_name))

    def threat_groups(
        self,
        trace: HttpTrace,
        server_name: Callable[[str], str] | None = None,
    ) -> dict[str, frozenset[str]]:
        """Group detected servers by threat identifier.

        This is the paper's ground-truth notion of a "malware campaign
        according to the IDS": all servers carrying the same threat
        identifier belong to one campaign (Section V-A2).
        """
        groups: dict[str, set[str]] = defaultdict(set)
        for server, labels in self.label_servers(trace, server_name).items():
            for label in labels:
                groups[label.threat_id].add(server)
        return {threat: frozenset(servers) for threat, servers in groups.items()}
