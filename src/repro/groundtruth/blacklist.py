"""Online blacklist services and the paper's confirmation policy.

Section IV-B checks inferred servers against several blacklists (Malware
Domain Block List, Malware Domain List, Phishtank, SpyEye Tracker, ZeuS
Tracker, VirusTotal, WOT) plus WhatIsMyIPAddress, an aggregator of 78
blacklist feeds.  The confirmation rule is:

* listed by **any** primary service  ->  confirmed malicious;
* listed **only** by the aggregator  ->  needs at least **two** of the
  aggregator's member feeds to agree.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping
from dataclasses import dataclass, field


@dataclass(frozen=True)
class BlacklistService:
    """One blacklist feed: a name and a set of listed servers."""

    name: str
    listed: frozenset[str] = field(default_factory=frozenset)

    def __contains__(self, server: str) -> bool:
        return server in self.listed

    @classmethod
    def from_servers(cls, name: str, servers: Iterable[str]) -> "BlacklistService":
        return cls(name=name, listed=frozenset(servers))


class BlacklistAggregator:
    """The combined blacklist ground truth with the paper's two-vote rule."""

    def __init__(
        self,
        primary: Iterable[BlacklistService] = (),
        aggregated_feeds: Iterable[BlacklistService] = (),
        min_aggregated_votes: int = 2,
    ) -> None:
        self.primary: tuple[BlacklistService, ...] = tuple(primary)
        self.aggregated_feeds: tuple[BlacklistService, ...] = tuple(aggregated_feeds)
        if min_aggregated_votes < 1:
            raise ValueError("min_aggregated_votes must be >= 1")
        self.min_aggregated_votes = min_aggregated_votes

    def vote_count(self, server: str) -> int:
        """Number of aggregator member feeds listing *server*."""
        return sum(1 for feed in self.aggregated_feeds if server in feed)

    def listing_services(self, server: str) -> tuple[str, ...]:
        """Names of all services (primary + feeds) listing *server*."""
        names = [svc.name for svc in self.primary if server in svc]
        names.extend(feed.name for feed in self.aggregated_feeds if server in feed)
        return tuple(names)

    def is_confirmed(self, server: str) -> bool:
        """Apply the paper's confirmation policy to *server*."""
        if any(server in svc for svc in self.primary):
            return True
        return self.vote_count(server) >= self.min_aggregated_votes

    def confirmed_among(self, servers: Iterable[str]) -> frozenset[str]:
        """Subset of *servers* confirmed malicious by this aggregator."""
        return frozenset(s for s in servers if self.is_confirmed(s))

    @classmethod
    def from_mapping(
        cls,
        primary: Mapping[str, Iterable[str]],
        aggregated: Mapping[str, Iterable[str]] | None = None,
        min_aggregated_votes: int = 2,
    ) -> "BlacklistAggregator":
        """Build from ``{service name: [servers]}`` mappings."""
        return cls(
            primary=[
                BlacklistService.from_servers(name, servers)
                for name, servers in primary.items()
            ],
            aggregated_feeds=[
                BlacklistService.from_servers(name, servers)
                for name, servers in (aggregated or {}).items()
            ],
            min_aggregated_votes=min_aggregated_votes,
        )
