"""Ground-truth substrate: signature IDS and online blacklists.

These play the role of the paper's commercial IDS (two signature
generations, 2012 and 2013) and the online blacklist ecosystem used in
Section IV-B to verify SMASH's inferences.
"""

from repro.groundtruth.labels import Signature, ThreatLabel
from repro.groundtruth.ids import SignatureIds
from repro.groundtruth.blacklist import BlacklistAggregator, BlacklistService

__all__ = [
    "BlacklistAggregator",
    "BlacklistService",
    "Signature",
    "SignatureIds",
    "ThreatLabel",
]
