"""Threat labels and IDS signatures.

A :class:`Signature` matches HTTP requests on any combination of server
name, URI file, User-Agent and query-parameter pattern — the fields a
signature-based commercial IDS keys on.  Matching requests are labelled
with the signature's :class:`ThreatLabel` (threat identifier), which the
paper uses to group IDS detections into campaigns for the false-negative
analysis (Section V-A2).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.httplog.records import HttpRequest


@dataclass(frozen=True, slots=True)
class ThreatLabel:
    """A named threat (e.g. ``Bagle``, ``Cycbot``) with a category.

    ``category`` is one of the paper's Table-IV activity categories:
    ``cnc``, ``web_exploit``, ``phishing``, ``drop_zone``, ``malicious``,
    ``web_scanner``, ``iframe_injection``.
    """

    threat_id: str
    category: str

    def __post_init__(self) -> None:
        if not self.threat_id:
            raise ValueError("ThreatLabel.threat_id must be non-empty")


@dataclass(frozen=True, slots=True)
class Signature:
    """A single IDS signature.

    A request matches when **all** specified (non-None) criteria hold.
    A signature with only a ``server`` pins a known-bad domain/IP; one
    with ``uri_file`` + ``user_agent`` matches a protocol pattern on any
    server (how real IDS rules catch C&C protocols on new domains).
    """

    label: ThreatLabel
    server: str | None = None
    uri_file: str | None = None
    user_agent: str | None = None
    parameter_names: tuple[str, ...] | None = None

    def __post_init__(self) -> None:
        if (
            self.server is None
            and self.uri_file is None
            and self.user_agent is None
            and self.parameter_names is None
        ):
            raise ValueError("Signature must constrain at least one field")
        if self.parameter_names is not None:
            object.__setattr__(
                self, "parameter_names", tuple(sorted(self.parameter_names))
            )

    def matches(self, request: HttpRequest, server_name: str | None = None) -> bool:
        """True when *request* triggers this signature.

        ``server_name`` is the (possibly aggregated) server identity to
        compare against; defaults to the request's raw host.
        """
        if self.server is not None:
            target = server_name if server_name is not None else request.host
            if target != self.server:
                return False
        if self.uri_file is not None and request.uri_file != self.uri_file:
            return False
        if self.user_agent is not None and request.user_agent != self.user_agent:
            return False
        if (
            self.parameter_names is not None
            and request.parameter_names != self.parameter_names
        ):
            return False
        return True
