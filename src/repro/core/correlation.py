"""ASH correlation (Section III-C).

For every server the suspiciousness score accumulates over the enabled
secondary dimensions (eq. 9):

    S(Si) = sum_d  w_d(C^d_Si) * w_m(C^m_Si) * Phi(|C^d_Si ∩ C^m_Si|)

where ``C^m_Si`` / ``C^d_Si`` are the herds containing ``Si`` in the main
and secondary dimension, ``w`` is herd edge density, and

    Phi(x) = (1 + erf((x - mu) / sigma)) / 2

is the "S"-shaped normaliser (mu = 4, sigma = 5.5) that gives herds with
fewer than four common servers a low per-dimension score, forcing them to
accumulate evidence across several dimensions.

Servers scoring below ``thresh`` are removed from all ASHs; intersection
ASHs left with fewer than two servers are dropped.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.config import CorrelationConfig
from repro.core.ashmining import MiningOutcome
from repro.core.results import CandidateAsh


def phi(x: float, mu: float = 4.0, sigma: float = 5.5) -> float:
    """The paper's S-shaped normaliser; maps herd overlap size to (0, 1)."""
    return 0.5 * (1.0 + math.erf((x - mu) / sigma))


@dataclass(frozen=True)
class CorrelationOutcome:
    """Scores, per-dimension contributions, and surviving candidate ASHs."""

    scores: dict[str, float]
    contributions: dict[str, dict[str, float]]
    candidate_ashes: tuple[CandidateAsh, ...]

    @property
    def surviving_servers(self) -> frozenset[str]:
        servers: set[str] = set()
        for ash in self.candidate_ashes:
            servers |= ash.servers
        return frozenset(servers)


def correlate(
    main: MiningOutcome,
    secondary: dict[str, MiningOutcome],
    config: CorrelationConfig | None = None,
    thresh: float | None = None,
) -> CorrelationOutcome:
    """Correlate the main dimension's herds with every secondary dimension.

    ``thresh`` overrides ``config.thresh`` (used by the Appendix-C
    single-client track, which runs at a higher threshold).
    """
    config = config or CorrelationConfig()
    config.validate()
    threshold = config.thresh if thresh is None else thresh

    secondary_herd_of = {
        dimension: outcome.herd_of() for dimension, outcome in secondary.items()
    }

    scores: dict[str, float] = {}
    contributions: dict[str, dict[str, float]] = {}
    # (main index, dimension, secondary index) -> intersection servers.
    intersections: dict[tuple[int, str, int], set[str]] = {}
    # The density weights w_d and w_m of eq. 9 are measured on the *new*
    # ASH — the intersection — as seen by each dimension's similarity
    # graph.  Using the parent herds' densities instead would let
    # loosely-attached hangers-on in a big parent herd dilute the score of
    # a tight campaign core.  Cache per (main, dimension, secondary) key:
    # every server of one intersection shares the same weights.
    density_cache: dict[tuple[int, str, int], tuple[float, float]] = {}

    def intersection_densities(
        key: tuple[int, str, int], overlap: frozenset[str], dimension: str
    ) -> tuple[float, float]:
        if key not in density_cache:
            if len(overlap) == 1:
                density_cache[key] = (1.0, 1.0)
            else:
                sec_density = secondary[dimension].graph.subgraph(overlap).density()
                main_density = main.graph.subgraph(overlap).density()
                density_cache[key] = (sec_density, main_density)
        return density_cache[key]

    for main_herd in main.herds:
        # Sorted member iteration keeps the scores/contributions dicts (and
        # the intersection accumulators) in an order derived from the data,
        # not from frozenset hash order.
        for server in sorted(main_herd.servers):
            per_dim: dict[str, float] = {}
            for dimension, herd_of in secondary_herd_of.items():
                sec_herd = herd_of.get(server)
                if sec_herd is None:
                    continue
                overlap = main_herd.servers & sec_herd.servers
                if not overlap:
                    continue
                key = (main_herd.index, dimension, sec_herd.index)
                sec_density, main_density = intersection_densities(
                    key, frozenset(overlap), dimension
                )
                contribution = (
                    sec_density
                    * main_density
                    * phi(len(overlap), config.mu, config.sigma)
                )
                if contribution <= 0.0:
                    continue
                per_dim[dimension] = contribution
                intersections.setdefault(key, set()).update(overlap)
            if per_dim:
                scores[server] = sum(per_dim.values())
                contributions[server] = per_dim

    surviving = {server for server, score in scores.items() if score >= threshold}

    ashes: list[CandidateAsh] = []
    for (main_index, dimension, secondary_index), servers in sorted(
        intersections.items()
    ):
        kept = frozenset(servers & surviving)
        # Groups left with a single server are removed: "that server can
        # not be associated with others" (Section III-C).
        if len(kept) >= 2:
            ashes.append(
                CandidateAsh(
                    main_index=main_index,
                    secondary_dimension=dimension,
                    secondary_index=secondary_index,
                    servers=kept,
                )
            )
    return CorrelationOutcome(
        scores=scores,
        contributions=contributions,
        candidate_ashes=tuple(ashes),
    )
