"""ASH correlation (Section III-C).

For every server the suspiciousness score accumulates over the enabled
secondary dimensions (eq. 9):

    S(Si) = sum_d  w_d(C^d_Si) * w_m(C^m_Si) * Phi(|C^d_Si ∩ C^m_Si|)

where ``C^m_Si`` / ``C^d_Si`` are the herds containing ``Si`` in the main
and secondary dimension, ``w`` is herd edge density, and

    Phi(x) = (1 + erf((x - mu) / sigma)) / 2

is the "S"-shaped normaliser (mu = 4, sigma = 5.5) that gives herds with
fewer than four common servers a low per-dimension score, forcing them to
accumulate evidence across several dimensions.

Servers scoring below ``thresh`` are removed from all ASHs; intersection
ASHs left with fewer than two servers are dropped.

The pipeline runs the interned core (:func:`correlate_ids`): herd
membership, overlaps and score keys are dense integer server ids, and
intersection densities are measured with ``WeightedGraph.density_of``
(no subgraph materialisation); ids are decoded back to labels only at
the results boundary (``SmashPipeline.finish``).  The label-domain
:func:`correlate` wrapper keeps the original public signature for
callers outside the pipeline.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from itertools import chain

from repro.config import CorrelationConfig
from repro.core.ashmining import MiningOutcome
from repro.core.interning import Interner
from repro.core.results import CandidateAsh


def phi(x: float, mu: float = 4.0, sigma: float = 5.5) -> float:
    """The paper's S-shaped normaliser; maps herd overlap size to (0, 1)."""
    return 0.5 * (1.0 + math.erf((x - mu) / sigma))


@dataclass(frozen=True)
class EncodedCorrelation:
    """Id-domain correlation outcome (server ids, not labels).

    ``candidate_ashes`` holds ``(main_index, dimension, secondary_index,
    frozenset-of-ids)`` tuples; the pipeline decodes them into
    :class:`~repro.core.results.CandidateAsh` at the results boundary.
    """

    scores: dict[int, float]
    contributions: dict[int, dict[str, float]]
    candidate_ashes: tuple[tuple[int, str, int, frozenset[int]], ...]


@dataclass(frozen=True)
class CorrelationOutcome:
    """Scores, per-dimension contributions, and surviving candidate ASHs."""

    scores: dict[str, float]
    contributions: dict[str, dict[str, float]]
    candidate_ashes: tuple[CandidateAsh, ...]

    @property
    def surviving_servers(self) -> frozenset[str]:
        servers: set[str] = set()
        for ash in self.candidate_ashes:
            servers |= ash.servers
        return frozenset(servers)


def correlate_ids(
    main: MiningOutcome,
    secondary: dict[str, MiningOutcome],
    interner: Interner,
    config: CorrelationConfig | None = None,
    thresh: float | None = None,
) -> EncodedCorrelation:
    """Correlate the main dimension's herds with every secondary dimension.

    ``thresh`` overrides ``config.thresh`` (used by the Appendix-C
    single-client track, which runs at a higher threshold).  All herd
    members must be known to *interner* (the pipeline interns the full
    post-preprocess namespace, which covers every mined herd).
    """
    config = config or CorrelationConfig()
    config.validate()
    threshold = config.thresh if thresh is None else thresh

    encode_set = interner.encode_set
    main_herds = [(herd.index, encode_set(herd.servers)) for herd in main.herds]
    secondary_data: dict[str, tuple[dict[int, frozenset[int]], dict[int, int]]] = {}
    for dimension, outcome in secondary.items():
        herd_ids: dict[int, frozenset[int]] = {}
        herd_of: dict[int, int] = {}
        for herd in outcome.herds:
            members = encode_set(herd.servers)
            herd_ids[herd.index] = members
            for server_id in members:
                herd_of[server_id] = herd.index
        secondary_data[dimension] = (herd_ids, herd_of)

    scores: dict[int, float] = {}
    contributions: dict[int, dict[str, float]] = {}
    # (main index, dimension, secondary index) -> intersection server ids.
    intersections: dict[tuple[int, str, int], set[int]] = {}
    # The density weights w_d and w_m of eq. 9 are measured on the *new*
    # ASH — the intersection — as seen by each dimension's similarity
    # graph.  Using the parent herds' densities instead would let
    # loosely-attached hangers-on in a big parent herd dilute the score of
    # a tight campaign core.  Cache per (main, dimension, secondary) key:
    # every server of one intersection shares the same weights.
    density_cache: dict[tuple[int, str, int], tuple[float, float]] = {}
    decode_set = interner.decode_set

    def intersection_densities(
        key: tuple[int, str, int], overlap: frozenset[int], dimension: str
    ) -> tuple[float, float]:
        cached = density_cache.get(key)
        if cached is None:
            if len(overlap) == 1:
                cached = (1.0, 1.0)
            else:
                members = decode_set(overlap)
                cached = (
                    secondary[dimension].graph.density_of(members),
                    main.graph.density_of(members),
                )
            density_cache[key] = cached
        return cached

    for main_index, main_members in main_herds:
        # Sorted member iteration keeps the scores/contributions dicts (and
        # the intersection accumulators) in an order derived from the data,
        # not from frozenset hash order.
        for server_id in sorted(main_members):
            per_dim: dict[str, float] = {}
            for dimension, (herd_ids, herd_of) in secondary_data.items():
                sec_index = herd_of.get(server_id)
                if sec_index is None:
                    continue
                overlap = main_members & herd_ids[sec_index]
                if not overlap:
                    continue
                key = (main_index, dimension, sec_index)
                sec_density, main_density = intersection_densities(
                    key, overlap, dimension
                )
                contribution = (
                    sec_density
                    * main_density
                    * phi(len(overlap), config.mu, config.sigma)
                )
                if contribution <= 0.0:
                    continue
                per_dim[dimension] = contribution
                intersections.setdefault(key, set()).update(overlap)
            if per_dim:
                scores[server_id] = sum(per_dim.values())
                contributions[server_id] = per_dim

    surviving = {
        server_id for server_id, score in scores.items() if score >= threshold
    }

    ashes: list[tuple[int, str, int, frozenset[int]]] = []
    for (main_index, dimension, secondary_index), members in sorted(
        intersections.items()
    ):
        kept = frozenset(members & surviving)
        # Groups left with a single server are removed: "that server can
        # not be associated with others" (Section III-C).
        if len(kept) >= 2:
            ashes.append((main_index, dimension, secondary_index, kept))
    return EncodedCorrelation(
        scores=scores,
        contributions=contributions,
        candidate_ashes=tuple(ashes),
    )


def correlate(
    main: MiningOutcome,
    secondary: dict[str, MiningOutcome],
    config: CorrelationConfig | None = None,
    thresh: float | None = None,
) -> CorrelationOutcome:
    """Label-domain wrapper over :func:`correlate_ids`.

    Interns the herd namespace, runs the id core, and decodes scores and
    candidate ASHs back to server labels — byte-identical to the original
    label-path implementation.
    """
    interner = Interner(
        chain(
            chain.from_iterable(herd.servers for herd in main.herds),
            chain.from_iterable(
                herd.servers
                for outcome in secondary.values()
                for herd in outcome.herds
            ),
        )
    )
    encoded = correlate_ids(main, secondary, interner, config, thresh=thresh)
    label_of = interner.label_of
    return CorrelationOutcome(
        scores={label_of(i): score for i, score in encoded.scores.items()},
        contributions={
            label_of(i): dict(per_dim)
            for i, per_dim in encoded.contributions.items()
        },
        candidate_ashes=tuple(
            CandidateAsh(
                main_index=main_index,
                secondary_dimension=dimension,
                secondary_index=secondary_index,
                servers=interner.decode_set(members),
            )
            for main_index, dimension, secondary_index, members in encoded.candidate_ashes
        ),
    )
