"""Shard-job worker entry point: ``python -m repro.core.shardworker``.

Reads one JSON shard-job spec from stdin, executes it with
:func:`~repro.core.shardmine.run_shard_job`, and prints the one-line
JSON result to stdout.  The spec names its inputs by store paths and
content digests and the result names the spilled partial the same way,
so this process shares nothing with the coordinator but the filesystem —
the contract a remote worker over any transport would satisfy.

Failures are reported as a structured
``{"error": {"kind", "message", "retryable"}}`` object on stdout (plus
the traceback on stderr) with a non-zero exit, so the dispatcher can
re-raise the coordinator-side equivalent — and its retry policy can tell
a transient failure from a fatal one.
"""

from __future__ import annotations

import json
import resource
import sys
import traceback

from repro.core.faults import is_retryable, mark_worker_process


def main() -> int:
    # This process exists for exactly one shard job; injected crash
    # faults may os._exit it the way a real interpreter death would.
    mark_worker_process()
    try:
        spec = json.loads(sys.stdin.read())
        if not isinstance(spec, dict):
            raise ValueError("shard-job spec must be a JSON object")
        from repro.core.shardmine import run_shard_job

        result = run_shard_job(spec)
        result["peak_rss_kb"] = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    except Exception as error:
        traceback.print_exc()
        print(
            json.dumps(
                {
                    "error": {
                        "kind": type(error).__name__,
                        "message": str(error),
                        "retryable": is_retryable(error),
                    }
                }
            )
        )
        return 1
    print(json.dumps(result))
    return 0


if __name__ == "__main__":
    sys.exit(main())
