"""Deterministic fault injection and retry policy for the sharded mine.

PR 9's dispatch seam speaks the remote-worker contract (store paths +
content digests), but a single crashed, hung or corrupt-spilling worker
still failed the whole mine.  This module makes every dispatcher
retry-aware and gives the test/bench harness a way to *prove* recovery:

* :class:`FaultPlan` — an explicit, JSON-serialisable fault schedule.
  Each :class:`FaultSpec` is a ``{shard, attempt, kind}`` trigger (plus
  ``seconds`` for hangs); there is no wall-clock or RNG at any decision
  point, so replaying a plan reproduces the exact same failure sequence
  on every host and under every ``PYTHONHASHSEED``.
* :class:`RetryPolicy` — max attempts, capped deterministic exponential
  backoff, and the per-job timeout the subprocess dispatcher enforces
  (``SmashConfig.shard_timeout``).
* :func:`run_with_retry` — the attempt loop every dispatcher wraps
  around :func:`~repro.core.shardmine.run_shard_job`: each attempt gets
  a *fresh spill name* (so a digest mismatch can never poison the next
  try), failed spill bytes are quarantined with a reason file instead of
  deleted (``PartialStore.quarantine``), and errors are classified into
  retryable (worker death, timeout, spilled-partial digest mismatch)
  vs fatal (corrupt source partition — the same bytes will fail every
  host, so retrying is pointless and the mine fails fast).

Fault kinds
-----------

``crash_before_spill`` / ``crash_after_spill``
    The worker dies abruptly (``os._exit`` in a real shardworker
    process, a raised :class:`~repro.errors.WorkerError` in-process)
    before or after publishing its partial.
``hang``
    The worker sleeps past the configured timeout; the subprocess
    dispatcher kills it and retries.  In-process dispatchers cannot
    interrupt a thread, so the hang degrades to an immediate retryable
    failure there.
``corrupt_partial``
    The spilled partial's bytes are torn *after* the digest was
    computed — caught by the coordinator's post-attempt verification.
``vanish_spill``
    The spilled partial disappears before the coordinator can load it.
``stream_error``
    A transient :class:`~repro.errors.StreamError` on partition load
    (a flaky store mount); retryable.
``corrupt_source``
    A persistent :class:`~repro.errors.StreamError` on partition load
    (corrupt source bytes); **fatal** — fails the mine fast with a
    quarantine entry recording the reason.
"""

from __future__ import annotations

import json
import os
import sys
import time
from dataclasses import dataclass
from pathlib import Path

from repro.errors import (
    ConfigError,
    PipelineError,
    ReproError,
    ShardTimeoutError,
    StreamError,
    WorkerError,
)

#: Fault kinds a retry (or the inline reassignment) recovers from.
RECOVERABLE_KINDS: tuple[str, ...] = (
    "crash_before_spill",
    "crash_after_spill",
    "hang",
    "corrupt_partial",
    "vanish_spill",
    "stream_error",
)

#: Fault kinds that must fail the mine fast (same bytes fail everywhere).
FATAL_KINDS: tuple[str, ...] = ("corrupt_source",)

FAULT_KINDS: tuple[str, ...] = RECOVERABLE_KINDS + FATAL_KINDS

#: Exit codes an injected worker crash uses, by fault kind — distinct
#: from real Python exit codes so chaos-test failures are attributable.
_CRASH_EXIT_CODES = {"crash_before_spill": 81, "crash_after_spill": 82, "hang": 86}

#: Set by :func:`mark_worker_process` in ``repro.core.shardworker``:
#: crash faults may only ``os._exit`` a process whose whole job is the
#: one shard job (never a coordinator or pool worker thread).
_IN_WORKER = False


def mark_worker_process() -> None:
    """Declare this process a dedicated shard worker (crash faults may kill it)."""
    global _IN_WORKER
    _IN_WORKER = True


def transient(error: ReproError) -> ReproError:
    """Mark *error* retryable (a transient failure, not a data error)."""
    error.retryable = True
    return error


def is_retryable(error: BaseException) -> bool:
    """Whether the retry policy may re-run a job that raised *error*.

    Worker death and timeouts are always retryable
    (:class:`~repro.errors.WorkerError` and subclasses); stream errors
    are retryable only when the raise site marked them ``transient``
    (spilled partials are re-creatable; corrupt source partitions are
    not).  Everything else is fatal.
    """
    if isinstance(error, WorkerError):
        return True
    return bool(getattr(error, "retryable", False))


def failure_label(error: BaseException) -> str:
    """Stable classification label for the worker-failure counter."""
    if isinstance(error, ShardTimeoutError):
        return "timeout"
    if isinstance(error, WorkerError):
        return "crash"
    if isinstance(error, StreamError):
        return "stream_error"
    return "error"


@dataclass(frozen=True)
class FaultSpec:
    """One trigger: inject *kind* when *shard* runs its *attempt*-th try.

    ``attempt`` is 1-based; ``None`` fires on **every** attempt (how a
    persistent failure — e.g. ``corrupt_source`` — is modelled).
    ``seconds`` is how long a ``hang`` sleeps before dying; pick it well
    past the configured ``shard_timeout``.
    """

    shard: int
    kind: str
    attempt: int | None = None
    seconds: float = 60.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ConfigError(
                f"unknown fault kind {self.kind!r}; expected one of {FAULT_KINDS}"
            )
        if self.shard < 0:
            raise ConfigError("fault shard must be >= 0")
        if self.attempt is not None and self.attempt < 1:
            raise ConfigError("fault attempt is 1-based; must be >= 1 or null")
        if self.seconds <= 0:
            raise ConfigError("fault seconds must be > 0")

    def to_dict(self) -> dict[str, object]:
        doc: dict[str, object] = {"shard": self.shard, "kind": self.kind}
        if self.attempt is not None:
            doc["attempt"] = self.attempt
        if self.kind == "hang":
            doc["seconds"] = self.seconds
        return doc

    @classmethod
    def from_dict(cls, doc: dict) -> "FaultSpec":
        if not isinstance(doc, dict):
            raise ConfigError(f"fault spec must be a JSON object, got {type(doc)}")
        attempt = doc.get("attempt")
        return cls(
            shard=int(doc["shard"]),
            kind=str(doc["kind"]),
            attempt=None if attempt is None else int(attempt),
            seconds=float(doc.get("seconds", 60.0)),
        )


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic fault schedule: the first matching trigger fires.

    Execution strategy, not semantics: a mine that recovers from every
    injected fault produces output byte-identical to the fault-free run
    (test- and CI-enforced), so the plan rides on
    :class:`~repro.config.SmashConfig` excluded from equality like
    ``metrics``.
    """

    faults: tuple[FaultSpec, ...] = ()

    def fault_for(self, shard: int, attempt: int) -> FaultSpec | None:
        """The trigger for (*shard*, *attempt*), or ``None`` — pure lookup."""
        for fault in self.faults:
            if fault.shard == shard and fault.attempt in (None, attempt):
                return fault
        return None

    def to_dict(self) -> dict[str, object]:
        return {"version": 1, "faults": [fault.to_dict() for fault in self.faults]}

    @classmethod
    def from_dict(cls, doc: dict) -> "FaultPlan":
        if not isinstance(doc, dict) or not isinstance(doc.get("faults"), list):
            raise ConfigError('fault plan must be {"faults": [...]} JSON')
        return cls(faults=tuple(FaultSpec.from_dict(entry) for entry in doc["faults"]))

    @classmethod
    def load(cls, path: str | Path) -> "FaultPlan":
        try:
            doc = json.loads(Path(path).read_text())
        except (OSError, json.JSONDecodeError) as error:
            raise ConfigError(f"cannot load fault plan {path}: {error}") from error
        return cls.from_dict(doc)

    @classmethod
    def generate(
        cls,
        shards: int,
        kinds: tuple[str, ...] = RECOVERABLE_KINDS,
        hang_seconds: float = 60.0,
    ) -> "FaultPlan":
        """A deterministic plan spreading *kinds* over *shards*.

        Kind *i* triggers on shard ``i % shards`` at attempt
        ``1 + i // shards`` — with fewer shards than kinds the same
        shard fails on consecutive attempts, which (past the retry
        budget) also exercises inline reassignment.
        """
        if shards < 1:
            raise ConfigError("fault plan needs shards >= 1")
        faults = tuple(
            FaultSpec(
                shard=index % shards,
                kind=kind,
                attempt=1 + index // shards,
                seconds=hang_seconds,
            )
            for index, kind in enumerate(kinds)
        )
        return cls(faults=faults)


# -- injection hooks (called from run_shard_job) ------------------------------------


def _crash(shard: int, kind: str) -> None:
    if _IN_WORKER:
        # A real worker process: die the way a crashed interpreter does
        # (no JSON reply, no cleanup) so the dispatcher sees exactly what
        # a production crash produces.
        sys.stderr.write(f"injected fault: shard {shard} {kind}\n")
        sys.stderr.flush()
        os._exit(_CRASH_EXIT_CODES[kind])
    raise WorkerError(f"injected fault: shard {shard} worker {kind}")


def fire_before_load(fault: dict | None, shard: int) -> None:
    """Injection point at job entry, before the input source resolves."""
    if not fault:
        return
    kind = fault.get("kind")
    if kind == "stream_error":
        raise transient(
            StreamError(f"injected transient StreamError loading shard {shard} input")
        )
    if kind == "corrupt_source":
        raise StreamError(
            f"injected corrupt source partition for shard {shard}: "
            "content digest mismatch is permanent"
        )
    if kind == "hang":
        if _IN_WORKER:
            time.sleep(float(fault.get("seconds", 60.0)))
            os._exit(_CRASH_EXIT_CODES["hang"])
        raise transient(
            WorkerError(
                f"injected fault: shard {shard} worker hang "
                "(inline dispatch cannot enforce shard_timeout)"
            )
        )
    if kind == "crash_before_spill":
        _crash(shard, "crash_before_spill")


def fire_after_spill(fault: dict | None, path: Path, shard: int) -> None:
    """Injection point after the partial is published under *path*."""
    if not fault:
        return
    kind = fault.get("kind")
    if kind == "crash_after_spill":
        _crash(shard, "crash_after_spill")
    if kind == "corrupt_partial":
        # Tear the published bytes *after* the digest was computed —
        # exactly the failure the coordinator's verification must catch.
        data = path.read_bytes()
        path.write_bytes(data[: max(1, len(data) // 2)] + b"#torn")
    if kind == "vanish_spill":
        path.unlink(missing_ok=True)


# -- retry policy -------------------------------------------------------------------


@dataclass(frozen=True)
class RetryPolicy:
    """How many times a shard job may run and how long attempts may take.

    Backoff is deterministic (``base * 2**(attempt-1)``, capped) — no
    jitter, so a replayed fault plan reproduces the identical schedule.
    ``timeout`` bounds one subprocess attempt's wall time
    (``SmashConfig.shard_timeout``); in-process dispatchers cannot
    interrupt a running job and do not enforce it.
    """

    max_attempts: int = 3
    backoff_base: float = 0.05
    backoff_cap: float = 2.0
    timeout: float = 600.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigError("retry policy needs max_attempts >= 1")
        if self.backoff_base < 0 or self.backoff_cap < 0:
            raise ConfigError("retry backoff must be >= 0")
        if self.timeout <= 0:
            raise ConfigError("retry timeout must be > 0")

    def backoff(self, attempt: int) -> float:
        """Seconds to wait after failed *attempt* (1-based), capped."""
        return min(self.backoff_cap, self.backoff_base * (2.0 ** (attempt - 1)))

    @classmethod
    def from_config(cls, config) -> "RetryPolicy":
        """The policy a :class:`~repro.config.SmashConfig` asks for."""
        return cls(
            max_attempts=int(config.shard_retries) + 1,
            timeout=float(config.shard_timeout),
        )


class ShardRetriesExhaustedError(PipelineError):
    """Every attempt at one shard job failed retryably.

    Carries the per-attempt failure records so the dispatcher can
    account for them and fall back to inline execution.  Reduced to
    ``(shard, failures)`` for pickling across process pools.
    """

    def __init__(self, shard: int, failures: list[dict]) -> None:
        last = failures[-1]["message"] if failures else "no attempts recorded"
        super().__init__(
            f"shard {shard} failed {len(failures)} attempt(s); last error: {last}"
        )
        self.shard = shard
        self.failures = failures

    def __reduce__(self):
        return (type(self), (self.shard, self.failures))


def attempt_spec(spec: dict, attempt: int, plan: FaultPlan | None) -> dict:
    """The concrete spec for one attempt: fresh spill name + its fault.

    The first attempt keeps the canonical ``index-NNNN`` name; retries
    spill under ``index-NNNN.rK`` so a corrupt or torn partial from a
    dead attempt can never shadow a later good one.  The plan's trigger
    for (shard, attempt) — if any — is embedded in the spec, so workers
    never read the plan file and injection decisions stay with the
    coordinator.
    """
    shard = int(spec["shard"])
    prepared = dict(spec)
    base = str(spec.get("spill_name") or f"index-{shard:04d}")
    prepared["spill_name"] = base if attempt == 1 else f"{base}.r{attempt}"
    prepared.pop("fault", None)
    if plan is not None:
        fault = plan.fault_for(shard, attempt)
        if fault is not None:
            prepared["fault"] = fault.to_dict()
    return prepared


def _describe_failure(error: ReproError, attempt: int, seconds: float) -> dict:
    return {
        "attempt": attempt,
        "error": type(error).__name__,
        "label": failure_label(error),
        "message": str(error),
        "retryable": is_retryable(error),
        "seconds": round(seconds, 6),
    }


def run_with_retry(
    spec: dict,
    attempt_call,
    policy: RetryPolicy,
    plan: FaultPlan | None = None,
) -> dict:
    """Run one shard job under *policy*, verifying and retrying attempts.

    Each attempt's result is digest-verified against its spilled bytes
    before it counts as success (catching torn/vanished partials the
    moment they happen, not at merge time).  Failed attempts quarantine
    whatever they spilled — with a ``REASON.json`` — and retry on a
    fresh spill name after a deterministic backoff.  Fatal errors
    (non-retryable) propagate immediately with the attempt history
    attached as ``error.shard_failures``; exhausting the budget raises
    :class:`ShardRetriesExhaustedError`.

    Returns the successful attempt's result dict, extended with
    ``attempts`` (1-based count used) and ``failures`` (records of the
    attempts that failed before it).
    """
    from repro.stream.store import PartialStore

    shard = int(spec["shard"])
    spill = PartialStore(spec["spill_root"])
    failures: list[dict] = []
    for attempt in range(1, policy.max_attempts + 1):
        prepared = attempt_spec(spec, attempt, plan)
        tick = time.perf_counter()
        try:
            result = attempt_call(prepared)
            spill.verify(result["name"], result["digest"])
        except ReproError as error:
            entry = _describe_failure(error, attempt, time.perf_counter() - tick)
            quarantined = spill.quarantine(
                prepared["spill_name"],
                reason={
                    "shard": shard,
                    "attempt": attempt,
                    "spill_name": prepared["spill_name"],
                    "fault": prepared.get("fault"),
                    **{
                        key: entry[key]
                        for key in ("error", "label", "message", "retryable")
                    },
                },
            )
            entry["quarantined"] = None if quarantined is None else str(quarantined)
            failures.append(entry)
            if not is_retryable(error):
                error.shard_failures = failures
                raise
            if attempt < policy.max_attempts:
                time.sleep(policy.backoff(attempt))
            continue
        result["attempts"] = attempt
        result["failures"] = failures
        return result
    raise ShardRetriesExhaustedError(shard, failures)


def run_job_outcome(
    spec: dict,
    policy: RetryPolicy,
    plan: FaultPlan | None = None,
    attempt_call=None,
) -> dict:
    """:func:`run_with_retry` as a data-only outcome (pool/pickle safe).

    Returns ``{"ok": result}``, ``{"exhausted": {...}}`` (retry budget
    spent on retryable failures) or ``{"error": {...}}`` (fatal) —
    never raises a library error, so dispatchers can collect every
    job's outcome before deciding what to reassign and what to raise.
    Programming errors still propagate.
    """
    if attempt_call is None:
        from repro.core.shardmine import run_shard_job

        attempt_call = run_shard_job
    try:
        return {"ok": run_with_retry(spec, attempt_call, policy, plan)}
    except ShardRetriesExhaustedError as error:
        return {
            "exhausted": {
                "shard": error.shard,
                "message": str(error),
                "failures": error.failures,
            }
        }
    except ReproError as error:
        return {
            "error": {
                "kind": type(error).__name__,
                "message": str(error),
                "retryable": is_retryable(error),
            },
            "shard": int(spec["shard"]),
            "failures": getattr(error, "shard_failures", []),
        }


def rebuild_error(kind: str, message: str, retryable: bool = False) -> ReproError:
    """The coordinator-side exception for a data-form worker error."""
    classes = {
        "StreamError": StreamError,
        "WorkerError": WorkerError,
        "ShardTimeoutError": ShardTimeoutError,
        "PipelineError": PipelineError,
    }
    error = classes.get(kind, PipelineError)(message)
    if retryable:
        error.retryable = True
    return error


__all__ = [
    "FAULT_KINDS",
    "RECOVERABLE_KINDS",
    "FATAL_KINDS",
    "FaultSpec",
    "FaultPlan",
    "RetryPolicy",
    "ShardRetriesExhaustedError",
    "attempt_spec",
    "failure_label",
    "fire_after_spill",
    "fire_before_load",
    "is_retryable",
    "mark_worker_process",
    "rebuild_error",
    "run_job_outcome",
    "run_with_retry",
    "transient",
]
