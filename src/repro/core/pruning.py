"""Pruning of redirection and referrer groups (Section III-D).

Two benign phenomena create herds that pass correlation:

* **Redirection groups** — servers on one redirect chain share clients,
  IPs and often a redirector URI file;
* **Referrer groups** — servers embedded by one landing page share that
  page's audience.

Rather than dropping these herds (which could hide malicious servers
hiding inside a chain), every chain/referred member is **replaced by its
landing server**: "if a client visits the landing server, it
automatically visits other servers in the redirection chain or the
embedded servers".  ASHs that collapse to fewer than two distinct servers
afterwards are removed.

Redirect chains come from the :class:`~repro.synth.oracles.RedirectOracle`
(the stand-in for the paper's active probing); referrer relations come
from the trace's Referer headers.

The pipeline runs the interned core (:func:`prune_ashes_ids`): ASH
members are integer server ids, and landing servers outside the mined
namespace are appended to the interner, so campaigns downstream keep
working on ids until the results boundary.  Referer values repeat
enormously across a trace, so :func:`dominant_referrers` normalises each
distinct value once.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass
from operator import attrgetter
from urllib.parse import urlparse

from repro.config import PruningConfig
from repro.core.interning import Interner
from repro.core.results import CandidateAsh, PruneReport
from repro.domains.names import normalize_server_name
from repro.httplog.trace import HttpTrace
from repro.synth.oracles import RedirectOracle


def _referrer_netloc(referrer: str) -> str:
    """Network-location component of a Referer value.

    For the overwhelmingly common ``http(s)://`` form the netloc is
    sliced out directly (everything up to the first ``/``, ``?`` or
    ``#``), which is exactly what ``urlparse`` returns for those inputs;
    anything else takes the full parser.
    """
    if referrer.startswith("http://"):
        rest = referrer[7:]
    elif referrer.startswith("https://"):
        rest = referrer[8:]
    else:
        parsed = urlparse(referrer if "//" in referrer else f"http://{referrer}")
        return parsed.netloc
    end = len(rest)
    for stop in "/?#":
        position = rest.find(stop, 0, end)
        if position != -1:
            end = position
    return rest[:end]


def referrer_host(
    referrer: str, host_cache: dict[str, str | None] | None = None
) -> str | None:
    """Extract the aggregated server name from a Referer header value.

    ``host_cache`` memoises the normalisation per extracted host —
    :func:`dominant_referrers` passes one so a landing page referenced
    through thousands of distinct URLs is normalised once.
    """
    if not referrer:
        return None
    host = _referrer_netloc(referrer).split(":")[0]
    if not host:
        return None
    if host_cache is not None and host in host_cache:
        return host_cache[host]
    try:
        landing = normalize_server_name(host)
    except ValueError:
        landing = None
    if host_cache is not None:
        host_cache[host] = landing
    return landing


def dominant_referrers(trace: HttpTrace) -> dict[str, str]:
    """server -> the landing server referring most of its requests.

    Only referrers covering more than half of a server's referred requests
    (and distinct from the server itself) count; servers with no external
    referrer are absent.
    """
    referrers_of: dict[str, Counter[str]] = defaultdict(Counter)
    totals: Counter[str] = Counter(map(attrgetter("host"), trace.requests))
    # A trace carries a handful of distinct Referer values (and far fewer
    # distinct referrer hosts) repeated tens of thousands of times; each
    # distinct value is parsed once and each distinct host normalised
    # once, turning this pass into dict lookups per request.
    landing_of: dict[str, str | None] = {}
    host_cache: dict[str, str | None] = {}
    for request in trace:
        referrer = request.referrer
        if not referrer:
            continue
        if referrer in landing_of:
            landing = landing_of[referrer]
        else:
            landing = referrer_host(referrer, host_cache)
            landing_of[referrer] = landing
        server = request.host
        if landing is not None and landing != server:
            referrers_of[server][landing] += 1
    dominant: dict[str, str] = {}
    for server, counts in referrers_of.items():
        landing, hits = counts.most_common(1)[0]
        if hits * 2 > totals[server]:
            dominant[server] = landing
    return dominant


@dataclass(frozen=True)
class EncodedPruneReport:
    """Id-domain :class:`~repro.core.results.PruneReport` (server ids)."""

    redirection_replacements: dict[int, int]
    referrer_replacements: dict[int, int]
    dropped_ashes: int

    def decode(self, interner: Interner) -> PruneReport:
        label_of = interner.label_of
        return PruneReport(
            redirection_replacements={
                label_of(replaced): label_of(landing)
                for replaced, landing in self.redirection_replacements.items()
            },
            referrer_replacements={
                label_of(replaced): label_of(landing)
                for replaced, landing in self.referrer_replacements.items()
            },
            dropped_ashes=self.dropped_ashes,
        )


def prune_ashes_ids(
    ashes: tuple[tuple[int, str, int, frozenset[int]], ...],
    trace: HttpTrace,
    interner: Interner,
    redirects: RedirectOracle | None = None,
    config: PruningConfig | None = None,
    referrer_of: dict[str, str] | None = None,
) -> tuple[tuple[tuple[int, str, int, frozenset[int]], ...], EncodedPruneReport]:
    """Apply both pruning steps to id-domain candidate ASHs.

    Landing servers that are not part of the mined namespace are interned
    on first sight (appended ids), so replacement members stay ids.
    ``referrer_of`` overrides the :func:`dominant_referrers` computation —
    the pipeline derives it once per mined trace and reuses it across
    ``finish`` calls (threshold sweeps, the streaming engine's
    two-threshold day).
    """
    config = config or PruningConfig()
    config.validate()
    redirect_oracle = redirects or RedirectOracle()
    if referrer_of is None:
        referrer_of = (
            dominant_referrers(trace) if config.prune_referrer_groups else {}
        )

    redirection_replacements: dict[int, int] = {}
    referrer_replacements: dict[int, int] = {}
    kept: list[tuple[int, str, int, frozenset[int]]] = []
    dropped = 0
    label_of = interner.label_of
    intern = interner.intern
    prune_redirection = config.prune_redirection_groups

    for main_index, dimension, secondary_index, servers in ashes:
        members: set[int] = set()
        # Sorted so the replacement dicts fill in data order, not frozenset
        # hash order.
        for server_id in sorted(servers):
            server = label_of(server_id)
            replacement_id = server_id
            if prune_redirection:
                landing = redirect_oracle.landing_server(server)
                if landing is not None and landing != server:
                    replacement_id = intern(landing)
                    redirection_replacements[server_id] = replacement_id
            if replacement_id == server_id and server in referrer_of:
                replacement_id = intern(referrer_of[server])
                referrer_replacements[server_id] = replacement_id
            members.add(replacement_id)
        if len(members) >= 2:
            kept.append((main_index, dimension, secondary_index, frozenset(members)))
        else:
            dropped += 1

    report = EncodedPruneReport(
        redirection_replacements=redirection_replacements,
        referrer_replacements=referrer_replacements,
        dropped_ashes=dropped,
    )
    return tuple(kept), report


def prune_ashes(
    ashes: tuple[CandidateAsh, ...],
    trace: HttpTrace,
    redirects: RedirectOracle | None = None,
    config: PruningConfig | None = None,
) -> tuple[tuple[CandidateAsh, ...], PruneReport]:
    """Label-domain wrapper over :func:`prune_ashes_ids`."""
    interner = Interner(
        server for ash in ashes for server in ash.servers
    )
    encoded = tuple(
        (ash.main_index, ash.secondary_dimension, ash.secondary_index,
         interner.encode_set(ash.servers))
        for ash in ashes
    )
    kept, report = prune_ashes_ids(encoded, trace, interner, redirects, config)
    decoded = tuple(
        CandidateAsh(
            main_index=main_index,
            secondary_dimension=dimension,
            secondary_index=secondary_index,
            servers=interner.decode_set(members),
        )
        for main_index, dimension, secondary_index, members in kept
    )
    return decoded, report.decode(interner)
