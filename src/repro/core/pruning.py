"""Pruning of redirection and referrer groups (Section III-D).

Two benign phenomena create herds that pass correlation:

* **Redirection groups** — servers on one redirect chain share clients,
  IPs and often a redirector URI file;
* **Referrer groups** — servers embedded by one landing page share that
  page's audience.

Rather than dropping these herds (which could hide malicious servers
hiding inside a chain), every chain/referred member is **replaced by its
landing server**: "if a client visits the landing server, it
automatically visits other servers in the redirection chain or the
embedded servers".  ASHs that collapse to fewer than two distinct servers
afterwards are removed.

Redirect chains come from the :class:`~repro.synth.oracles.RedirectOracle`
(the stand-in for the paper's active probing); referrer relations come
from the trace's Referer headers.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from urllib.parse import urlparse

from repro.config import PruningConfig
from repro.core.results import CandidateAsh, PruneReport
from repro.domains.names import normalize_server_name
from repro.httplog.trace import HttpTrace
from repro.synth.oracles import RedirectOracle


def referrer_host(referrer: str) -> str | None:
    """Extract the aggregated server name from a Referer header value."""
    if not referrer:
        return None
    parsed = urlparse(referrer if "//" in referrer else f"http://{referrer}")
    host = parsed.netloc.split(":")[0]
    if not host:
        return None
    try:
        return normalize_server_name(host)
    except ValueError:
        return None


def dominant_referrers(trace: HttpTrace) -> dict[str, str]:
    """server -> the landing server referring most of its requests.

    Only referrers covering more than half of a server's referred requests
    (and distinct from the server itself) count; servers with no external
    referrer are absent.
    """
    referrers_of: dict[str, Counter[str]] = defaultdict(Counter)
    totals: Counter[str] = Counter()
    for request in trace:
        landing = referrer_host(request.referrer)
        server = request.host
        totals[server] += 1
        if landing is not None and landing != server:
            referrers_of[server][landing] += 1
    dominant: dict[str, str] = {}
    for server, counts in referrers_of.items():
        landing, hits = counts.most_common(1)[0]
        if hits * 2 > totals[server]:
            dominant[server] = landing
    return dominant


def prune_ashes(
    ashes: tuple[CandidateAsh, ...],
    trace: HttpTrace,
    redirects: RedirectOracle | None = None,
    config: PruningConfig | None = None,
) -> tuple[tuple[CandidateAsh, ...], PruneReport]:
    """Apply both pruning steps to the candidate ASHs."""
    config = config or PruningConfig()
    config.validate()
    redirect_oracle = redirects or RedirectOracle()
    referrer_of = dominant_referrers(trace) if config.prune_referrer_groups else {}

    redirection_replacements: dict[str, str] = {}
    referrer_replacements: dict[str, str] = {}
    kept: list[CandidateAsh] = []
    dropped = 0

    for ash in ashes:
        members: set[str] = set()
        # Sorted so the replacement dicts fill in data order, not frozenset
        # hash order.
        for server in sorted(ash.servers):
            replacement = server
            if config.prune_redirection_groups:
                landing = redirect_oracle.landing_server(server)
                if landing is not None and landing != server:
                    redirection_replacements[server] = landing
                    replacement = landing
            if replacement == server and server in referrer_of:
                landing = referrer_of[server]
                referrer_replacements[server] = landing
                replacement = landing
            members.add(replacement)
        if len(members) >= 2:
            kept.append(
                CandidateAsh(
                    main_index=ash.main_index,
                    secondary_dimension=ash.secondary_dimension,
                    secondary_index=ash.secondary_index,
                    servers=frozenset(members),
                )
            )
        else:
            dropped += 1

    report = PruneReport(
        redirection_replacements=redirection_replacements,
        referrer_replacements=referrer_replacements,
        dropped_ashes=dropped,
    )
    return tuple(kept), report
