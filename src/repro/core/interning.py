"""Dense integer interning of the server namespace.

The mining core used to push string server labels through every layer:
candidate generation hashed and sorted label tuples, graphs were keyed by
labels, and Louvain re-indexed the whole namespace on every call.  This
module is the substrate of the interned rewrite:

* :class:`Interner` assigns each label a dense integer id **in canonical
  ``node_sort_key`` order**, so ascending-id iteration is exactly the
  canonical label iteration the deterministic core already used — outputs
  stay byte-identical while every hot set operation moves from strings to
  small ints;
* :func:`accumulate_pair_counts` turns the per-sharing-group
  ``itertools.combinations`` pattern into inverted-index pair-weight
  accumulation: co-occurrence counts are accumulated directly into a flat
  ``packed-pair -> count`` map (C-speed ``Counter.update``), producing the
  identical edge set without materialising per-group candidate tuples.

Heavy-hitter groups (a popular shared IP, a common URI filename) still
cost O(group**2) co-occurrences; the ``cap`` argument — wired to
``DimensionConfig.max_group_size`` and **off by default** — skips groups
above a fixed size deterministically, trading bounded recall for bounded
cost exactly like the existing ubiquity/posting-list rules.
"""

from __future__ import annotations

import hashlib

from collections import Counter
from collections.abc import Hashable, Iterable, Iterator, Mapping, Sequence
from dataclasses import dataclass

from repro.errors import PipelineError
from repro.graph.csr import np as _np
from repro.graph.wgraph import node_sort_key

Label = Hashable


class Interner:
    """Bidirectional label <-> dense-int mapping in canonical order.

    The constructor namespace is sorted with
    :func:`~repro.graph.wgraph.node_sort_key` (the order every
    deterministic iteration in the mining core already uses), so for ids
    ``i < j`` the labels satisfy ``node_sort_key(label_of(i)) <
    node_sort_key(label_of(j))`` — ``sorted(ids)`` decodes to the same
    sequence as the label-path's ``canonical_nodes``.  Labels interned
    *after* construction (e.g. a pruning landing server outside the
    mined namespace) are appended in first-seen order and sort after the
    base namespace; they decode correctly but carry no order guarantee.
    """

    __slots__ = ("_labels", "_ids", "_base")

    def __init__(self, labels: Iterable[Label] = ()) -> None:
        self._labels: list[Label] = sorted(set(labels), key=node_sort_key)
        self._ids: dict[Label, int] = {label: i for i, label in enumerate(self._labels)}
        self._base = len(self._labels)

    def __len__(self) -> int:
        return len(self._labels)

    def __contains__(self, label: Label) -> bool:
        return label in self._ids

    @property
    def labels(self) -> tuple[Label, ...]:
        """All known labels, id order (canonical base, then appended)."""
        return tuple(self._labels)

    @property
    def base_size(self) -> int:
        """Size of the canonical constructor namespace (appended ids excluded)."""
        return self._base

    def id_of(self, label: Label) -> int:
        """Id of a known label; raises ``KeyError`` for unknown labels."""
        return self._ids[label]

    def label_of(self, index: int) -> Label:
        return self._labels[index]

    def intern(self, label: Label) -> int:
        """Id of *label*, appending a fresh id if it is unknown."""
        index = self._ids.get(label)
        if index is None:
            index = len(self._labels)
            self._ids[label] = index
            self._labels.append(label)
        return index

    # -- bulk helpers ---------------------------------------------------------------

    def encode(self, labels: Iterable[Label]) -> list[int]:
        ids = self._ids
        return [ids[label] for label in labels]

    def encode_set(self, labels: Iterable[Label]) -> frozenset[int]:
        ids = self._ids
        return frozenset(ids[label] for label in labels)

    def decode_set(self, ids: Iterable[int]) -> frozenset[Label]:
        labels = self._labels
        return frozenset(labels[index] for index in ids)

    def decode_sorted(self, ids: Iterable[int]) -> list[Label]:
        """Decode *ids* in ascending-id (canonical) order."""
        labels = self._labels
        return [labels[index] for index in sorted(ids)]


#: Bits of the content-derived stable id.  63 keeps ids positive in a
#: signed 64-bit word; at 10**6 servers the birthday-bound collision
#: probability is ~5e-8, and a collision is *detected* (never silent).
_STABLE_ID_BITS = 63


def stable_label_id(label: str) -> int:
    """Content-derived 63-bit id of a server label.

    A pure function of the label bytes (blake2b), so every shard worker
    assigns the same id to the same server without any coordination or
    global pass — the namespace-stable property sharded mining needs.
    Independent of ``PYTHONHASHSEED`` by construction.
    """
    digest = hashlib.blake2b(label.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big") >> (64 - _STABLE_ID_BITS)


def stable_shard_of(label: str, shards: int) -> int:
    """Hash-partition of the server namespace: which of *shards* owns *label*."""
    return stable_label_id(label) % shards


class StableInterner:
    """Label <-> id mapping whose ids are stable across processes.

    Unlike :class:`Interner`, whose dense ids depend on the full sorted
    namespace (a global pass), a ``StableInterner`` id is a pure content
    hash of the label (:func:`stable_label_id`): shard workers interning
    disjoint or overlapping slices of the namespace independently agree
    on every id, so their inverted-index partials merge by plain key
    union.  The ids are sparse and carry **no order guarantee** — before
    pair accumulation the merged namespace is re-keyed once into a dense
    canonical :class:`Interner` (a namespace-sized pass, not a trace
    pass).

    Hash collisions (two labels, one id) are detected on ``intern`` and
    on ``merge`` and raise :class:`~repro.errors.PipelineError` — the
    probability is negligible (~5e-8 at a million servers) but the
    failure mode must be loud, not a silently corrupted index.
    """

    __slots__ = ("_label_of",)

    def __init__(self, labels: Iterable[str] = ()) -> None:
        self._label_of: dict[int, str] = {}
        for label in labels:
            self.intern(label)

    def __len__(self) -> int:
        return len(self._label_of)

    def __contains__(self, label: str) -> bool:
        return self._label_of.get(stable_label_id(label)) == label

    def intern(self, label: str) -> int:
        """The stable id of *label*, registering it in the vocabulary."""
        stable = stable_label_id(label)
        known = self._label_of.get(stable)
        if known is None:
            self._label_of[stable] = label
        elif known != label:
            raise PipelineError(
                f"stable-id collision: {known!r} and {label!r} both hash to "
                f"{stable}; the sharded namespace cannot be merged"
            )
        return stable

    def label_of(self, stable: int) -> str:
        return self._label_of[stable]

    def merge(self, vocabulary: Mapping[int, str]) -> None:
        """Union another shard's ``{stable id: label}`` vocabulary in.

        Raises :class:`~repro.errors.PipelineError` on any id mapped to
        two different labels (a cross-shard hash collision).
        """
        label_of = self._label_of
        for stable, label in vocabulary.items():
            known = label_of.get(stable)
            if known is None:
                label_of[stable] = label
            elif known != label:
                raise PipelineError(
                    f"stable-id collision while merging shard vocabularies: "
                    f"{known!r} and {label!r} both map to id {stable}"
                )

    def to_dict(self) -> dict[int, str]:
        """The ``{stable id: label}`` vocabulary (shard-partial payload)."""
        return dict(self._label_of)

    def to_interner(self) -> "Interner":
        """Re-key the vocabulary into a dense canonical :class:`Interner`."""
        return Interner(self._label_of.values())


@dataclass
class PairStats:
    """Accounting of one :func:`accumulate_pair_counts` run.

    ``enumerated_pairs`` counts pair co-occurrences actually walked (the
    quadratic cost the cap bounds); ``candidate_pairs`` the distinct
    pairs that came out.  The benchmark reads these off the built graphs
    (``WeightedGraph.build_stats``) to show pair counts are measured,
    not asserted.
    """

    groups: int = 0
    skipped_groups: int = 0
    largest_group: int = 0
    enumerated_pairs: int = 0
    candidate_pairs: int = 0
    #: Group-size cap engaged by the ``auto_cap_pairs`` budget for this
    #: build (0 = auto-capping off or the uncapped work fit the budget).
    auto_cap: int = 0

    def to_dict(self) -> dict[str, int]:
        return {
            "groups": self.groups,
            "skipped_groups": self.skipped_groups,
            "largest_group": self.largest_group,
            "enumerated_pairs": self.enumerated_pairs,
            "candidate_pairs": self.candidate_pairs,
            "auto_cap": self.auto_cap,
        }


def pack_pair(first: int, second: int, width: int) -> int:
    """Pack an ordered id pair into one int key (``first < second < width``)."""
    return first * width + second


def unpack_pair(key: int, width: int) -> tuple[int, int]:
    return divmod(key, width)


def resolve_auto_cap(sizes: Iterable[int], cap: int, auto_cap: int) -> int:
    """Group-size cap implied by an enumerated-pair budget.

    *sizes* is the full group-size distribution of one accumulation run;
    *auto_cap* the budget on walked pair co-occurrences (``sum C(s, 2)``
    over admitted groups).  A pure function of the distribution, so the
    single-pass and sharded accumulators — which both see every group —
    reach the identical decision and stay byte-identical.

    Returns *cap* unchanged when an explicit cap is already set, when
    auto-capping is off, or when the uncapped work fits the budget.
    Otherwise returns the largest cap ``C >= 2`` whose admitted groups
    (``size <= C``) fit; when even the size-2 groups blow the budget the
    floor of 2 is returned — the gate bounds heavy hitters, it never
    disables a dimension outright.
    """
    if cap or auto_cap <= 0:
        return cap
    per_size: Counter[int] = Counter()
    for size in sizes:
        if size >= 2:
            per_size[size] += 1
    total = sum(size * (size - 1) // 2 * count for size, count in per_size.items())
    if total <= auto_cap:
        return cap
    budget = auto_cap
    resolved = 2
    for size in sorted(per_size):
        budget -= size * (size - 1) // 2 * per_size[size]
        if budget < 0:
            break
        resolved = size
    return max(resolved, 2)


def accumulate_pair_counts(
    groups: Iterable[Sequence[int]],
    width: int,
    cap: int = 0,
    stats: PairStats | None = None,
    auto_cap: int = 0,
) -> Counter[int]:
    """Accumulate co-occurrence counts over id *groups*.

    Each group is an **ascending-sorted** sequence of server ids sharing
    one artefact (a client, an IP, a filename, ...).  The result maps
    ``pack_pair(i, j, width)`` (``i < j``) to the number of groups
    containing both — for overlap-ratio dimensions this *is*
    ``|A_i ∩ A_j|``, so edge weights fall out arithmetically instead of
    via per-pair set intersections.

    ``cap`` > 0 skips groups with more than ``cap`` members (the
    deterministic heavy-hitter gate, off by default); groups with fewer
    than two members contribute nothing by construction.  ``auto_cap``
    > 0 (and no explicit cap) engages the load-adaptive gate: the group
    stream is materialised once and :func:`resolve_auto_cap` picks the
    cap from its size distribution; the engaged cap is recorded in
    ``stats.auto_cap``.
    """
    if auto_cap > 0 and not cap:
        groups = groups if isinstance(groups, (list, tuple)) else list(groups)
        cap = resolve_auto_cap(map(len, groups), cap, auto_cap)
        if stats is not None:
            stats.auto_cap = cap
    counts: Counter[int] = Counter()
    update = counts.update
    record = stats is not None
    for group in groups:
        size = len(group)
        if record:
            stats.groups += 1
            if size > stats.largest_group:
                stats.largest_group = size
        if size < 2:
            continue
        if cap and size > cap:
            if record:
                stats.skipped_groups += 1
            continue
        if record:
            stats.enumerated_pairs += size * (size - 1) // 2
        for position in range(size - 1):
            base = group[position] * width
            update(map(base.__add__, group[position + 1 :]))
    if record:
        stats.candidate_pairs = len(counts)
    return counts


_NO_HEAVY: frozenset[int] = frozenset()


def overlap_ratio_edges(
    pair_common: Mapping[int, int],
    width: int,
    sizes: Mapping[int, int] | Sequence[int],
    floor: float,
    heavy_sets: Mapping[int, frozenset[int]] | None = None,
) -> Iterator[tuple[int, int, float]]:
    """Edges for the overlap-ratio dimensions (eq. 1 / eq. 8 form).

    For every accumulated pair, the weight is ``(common / |A_i|) *
    (common / |A_j|)``; pairs below *floor* are dropped.  *heavy_sets*
    (server id -> its artefacts whose posting lists were too ubiquitous
    to generate candidates) adds those artefacts' per-pair overlap back,
    so the weight sees the full-set intersection.  Pairs are yielded in
    ascending packed order — exactly the precondition of
    ``WeightedGraph.add_sorted_edges``.
    """
    for key in sorted(pair_common):
        first, second = divmod(key, width)
        common = pair_common[key]
        if heavy_sets is not None:
            common += len(
                heavy_sets.get(first, _NO_HEAVY) & heavy_sets.get(second, _NO_HEAVY)
            )
        weight = (common / sizes[first]) * (common / sizes[second])
        if weight >= floor:
            yield first, second, weight


def overlap_ratio_edge_arrays(
    pair_common: Mapping[int, int],
    width: int,
    sizes: Mapping[int, int] | Sequence[int],
    floor: float,
    heavy_sets: Mapping[int, frozenset[int]] | None = None,
):
    """Array form of :func:`overlap_ratio_edges` (numpy required).

    Returns ``(us, vs, ws)`` int64/int64/float64 arrays holding exactly
    the triples :func:`overlap_ratio_edges` would yield, in the same
    ascending packed-pair order, with bit-identical weights: int64 true
    division is the same correctly-rounded float64 operation as python
    ``int / int`` for counts far below 2**53, and the product is a
    single elementwise multiply either way.  Only the heavy-set overlap
    correction — a set intersection per affected pair — stays a python
    loop, masked down to pairs where both endpoints carry heavy sets.
    """
    count = len(pair_common)
    keys = _np.fromiter(pair_common.keys(), dtype=_np.int64, count=count)
    common = _np.fromiter(pair_common.values(), dtype=_np.int64, count=count)
    order = _np.argsort(keys)
    keys = keys[order]
    common = common[order]
    firsts, seconds = _np.divmod(keys, width)
    if heavy_sets is not None and heavy_sets:
        heavy_ids = _np.fromiter(
            heavy_sets.keys(), dtype=_np.int64, count=len(heavy_sets)
        )
        affected = _np.isin(firsts, heavy_ids) & _np.isin(seconds, heavy_ids)
        for position in _np.nonzero(affected)[0].tolist():
            common[position] += len(
                heavy_sets[int(firsts[position])] & heavy_sets[int(seconds[position])]
            )
    if isinstance(sizes, Mapping):
        size_arr = _np.ones(width, dtype=_np.int64)
        for index, size in sizes.items():
            size_arr[index] = size
    else:
        size_arr = _np.asarray(sizes, dtype=_np.int64)
    ws = (common / size_arr[firsts]) * (common / size_arr[seconds])
    keep = ws >= floor
    return firsts[keep], seconds[keep], ws[keep]


def add_overlap_edges(
    graph,
    pair_common: Mapping[int, int],
    width: int,
    sizes: Mapping[int, int] | Sequence[int],
    floor: float,
    heavy_sets: Mapping[int, frozenset[int]] | None = None,
) -> None:
    """Add an overlap-ratio dimension's edges to *graph*, fastest way first.

    CSR-backed graphs expose ``add_sorted_edge_arrays`` and take the
    vectorised :func:`overlap_ratio_edge_arrays` route; the pure-python
    backend streams :func:`overlap_ratio_edges`.  Same edges, same
    order, same bits either way.
    """
    fast = getattr(graph, "add_sorted_edge_arrays", None)
    if fast is not None and _np is not None and pair_common:
        fast(*overlap_ratio_edge_arrays(pair_common, width, sizes, floor, heavy_sets))
    else:
        graph.add_sorted_edges(
            overlap_ratio_edges(pair_common, width, sizes, floor, heavy_sets)
        )
