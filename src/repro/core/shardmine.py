"""Sharded map-reduce mining over trace partitions.

One :meth:`~repro.core.pipeline.SmashPipeline.mine` call used to hold
the whole window's trace *and* every per-dimension index and pair
counter in memory at once, which caps mining at single-host window
size.  This module rebuilds the mine path as a deterministic two-level
map-reduce whose peak mining state is bounded by shard size plus merge
state:

**Map (phase A — index extraction).**  The trace is cut into contiguous
shards (day-partition-aligned when the streaming window provides
boundaries).  Each shard job makes one pass over its requests, applying
the same SLD aggregation as :func:`~repro.core.preprocess.preprocess`,
and emits inverted-index partials (clients / IPs / URI files / optional
parameter patterns and time windows, per server) keyed by the
**namespace-stable** ids of :class:`~repro.core.interning.StableInterner`
— a pure content hash of the server label, so shard workers agree on
every id with no global pass and no coordination.  Partials are spilled
to a digest-verified :class:`~repro.stream.store.PartialStore`
immediately, so even a serial map phase never holds more than one
shard's indexes.

**Reduce (merge).**  Partials are merged one at a time in canonical
shard order: vocabularies union with collision detection, index sets
union, request counts add.  The IDF/min-clients filter runs on the
merged client sets, the :class:`~repro.core.preprocess.PreprocessReport`
falls out of the merged accounting, and the preprocessed trace is
assembled exactly as ``preprocess()`` builds it — with the merged
indexes injected into its cache slots, so no downstream consumer
re-scans the window to rebuild what the shards already extracted.
After the merge the surviving namespace is re-keyed once into the dense
canonical :class:`~repro.core.interning.Interner` order (a
namespace-sized pass, not a trace pass); everything downstream runs in
exactly the id domain the single-shard mine uses.

**Map (phase C — pair partials).**  Candidate-pair accumulation — the
quadratic heart of every dimension — runs partition-parallel: each
dimension's sharing groups are hash-partitioned into buckets by group
content, each bucket becomes an
:func:`~repro.core.interning.accumulate_pair_counts` job on the shared
:class:`~repro.util.parallel.JobPool`, and the per-bucket counters are
spilled and merged in bucket order.  Because every group lands in
exactly one bucket and counter addition is commutative, the merged
counts — and therefore the built graphs, the Louvain herds, and the
final campaigns — are **byte-identical to the single-shard mine under
any ``PYTHONHASHSEED``** (test-enforced in subprocesses).  Louvain then
fans out per dimension on the same pool.

The splice point is :meth:`SmashPipeline.mine(shards=N)
<repro.core.pipeline.SmashPipeline.mine>` /
:class:`~repro.config.SmashConfig` ``shards``; the
:class:`~repro.core.pipeline.DimensionCache` contract is preserved
(signatures are computed on the assembled prepared trace, so sharded
and single-shard mines hit the same cache entries).

**Out-of-core mode** (``SmashConfig.out_of_core``, forced when the mine
is given partition references instead of a trace) removes the two
remaining places the coordinator held raw requests:

* **Store-direct map jobs.**  Each shard job is a small JSON *spec*
  naming its inputs by ``(day, digest)`` partition references into the
  :class:`~repro.stream.store.TraceStore`; the worker loads (and digest-
  verifies) its own day partitions, extracts, spills, and reports back
  nothing but the partial's ``(name, digest)``.  Shard cuts fall on day
  boundaries exactly like the in-memory boundary split
  (:func:`_segment_groups` mirrors :func:`shard_ranges`), so the
  per-shard request slices — and therefore the spilled partials — are
  byte-identical to the in-memory path's.
* **Hollow reduce.**  The merge builds an :class:`IndexOnlyTrace` — the
  prepared trace's indexes and scalars without its requests.  Reduce-side
  consumers that genuinely need window-wide request facts get them from
  small per-shard summaries instead: request counts ride in the partials
  and the dominant-referrer map (the one ``finish``-stage request scan)
  is folded from per-shard referrer counters and pre-seeded into
  ``MinedDimensions.stage_cache``.  Any code path that would actually
  touch raw requests on the hollow trace raises loudly.

**Dispatch seam.**  How map jobs execute is delegated to a
:class:`~repro.core.dispatch.ShardDispatcher` (``SmashConfig.dispatch``):
inline on the shared pool (the default), serially in the coordinator, or
one subprocess per shard speaking the store-paths + digests contract a
remote worker would use.  Reduce, pair accumulation and Louvain always
run on the coordinator's pool; dispatch only moves the map phase.
"""

from __future__ import annotations

import hashlib
import tempfile
import time

from collections import Counter, defaultdict
from functools import partial
from pathlib import Path

from repro.config import SmashConfig
from repro.core.ashmining import MiningOutcome, mine_herds
from repro.core.dimensions.client import build_client_graph_from_indices
from repro.core.dispatch import make_dispatcher
from repro.core.faults import RetryPolicy, fire_after_spill, fire_before_load
from repro.core.dimensions.ipset import build_ipset_graph
from repro.core.dimensions.timedim import DEFAULT_WINDOW_SECONDS, build_time_graph
from repro.core.dimensions.urifile import build_urifile_graph
from repro.core.dimensions.urlparam import build_urlparam_graph
from repro.core.dimensions.whoisdim import build_whois_graph
from repro.core.interning import (
    Interner,
    PairStats,
    StableInterner,
    accumulate_pair_counts,
    resolve_auto_cap,
)
from repro.core.preprocess import PreprocessReport, aggregate_trace
from repro.core.pruning import referrer_host
from repro.core.results import MAIN_DIMENSION
from repro.domains.names import normalize_server_name
from repro.errors import PipelineError
from repro.httplog.records import HttpRequest
from repro.httplog.trace import HttpTrace
from repro.stream.store import PartialStore, TraceStore
from repro.util.parallel import JobPool

__all__ = [
    "mine_sharded",
    "run_shard_job",
    "IndexOnlyTrace",
    "ShardedAccumulator",
    "shard_ranges",
]


# -- shard planning -----------------------------------------------------------------


def shard_ranges(
    total: int, shards: int, boundaries: tuple[int, ...] | None = None
) -> list[tuple[int, int]]:
    """Contiguous ``[start, stop)`` request ranges for the map phase.

    Without *boundaries* the requests are split evenly.  With
    *boundaries* (per-day request counts from the streaming window, in
    trace order) shard cuts only fall on day-partition edges, so each
    shard job corresponds to whole stored partitions — the
    partition-scoped load path.  Fewer days than shards simply yields
    fewer (day-sized) shards.
    """
    if total <= 0:
        return []
    shards = max(1, min(shards, total))
    if boundaries and len(boundaries) > 1 and sum(boundaries) == total:
        segments = len(boundaries)
        groups = min(shards, segments)
        offsets = [0]
        for length in boundaries:
            offsets.append(offsets[-1] + length)
        ranges = []
        for group in range(groups):
            first = group * segments // groups
            last = (group + 1) * segments // groups
            if offsets[first] < offsets[last]:
                ranges.append((offsets[first], offsets[last]))
        return ranges
    return [
        (index * total // shards, (index + 1) * total // shards)
        for index in range(shards)
        if index * total // shards < (index + 1) * total // shards
    ]


def _segment_groups(
    boundaries: tuple[int, ...], shards: int
) -> list[tuple[int, int]]:
    """Partition-index spans ``[first, last)`` mirroring :func:`shard_ranges`.

    For the store-direct map phase: group *g* of the boundary-aligned
    split covers exactly ``partitions[first:last]``, so loading and
    concatenating those day partitions reproduces the in-memory shard's
    request slice byte for byte.  Same group arithmetic (and the same
    empty-group skipping) as the boundary path of :func:`shard_ranges`,
    so the group count — and hence shard numbering — matches too.
    """
    total = sum(boundaries)
    if total <= 0:
        return []
    shards = max(1, min(shards, total))
    segments = len(boundaries)
    groups = min(shards, segments)
    offsets = [0]
    for length in boundaries:
        offsets.append(offsets[-1] + length)
    spans: list[tuple[int, int]] = []
    for group in range(groups):
        first = group * segments // groups
        last = (group + 1) * segments // groups
        if offsets[first] < offsets[last]:
            spans.append((first, last))
    return spans


# -- phase A: per-shard index extraction --------------------------------------------


def _resolve_source(spec: dict) -> HttpTrace:
    """Materialise one shard job's input trace from its source spec.

    ``inline`` carries a live :class:`HttpTrace` (same-address-space
    dispatchers only); ``store`` names whole day partitions by
    ``(day, digest)`` in a :class:`~repro.stream.store.TraceStore`, with
    an optional ``slice [k, n]`` applying the even :func:`shard_ranges`
    cut after concatenation; ``spill`` names a coordinator-spilled
    request partial by ``(name, digest)``.  Every store/spill load is
    digest-verified, so a corrupt input fails the job with a
    :class:`~repro.errors.StreamError` instead of skewing the merge.
    """
    source = spec["source"]
    kind = source.get("kind")
    if kind == "inline":
        return source["trace"]
    if kind == "store":
        store = TraceStore(source["root"])
        traces = [
            store.get(int(day), digest=str(digest)).trace
            for day, digest in source["partitions"]
        ]
        trace = (
            traces[0]
            if len(traces) == 1
            else HttpTrace.concat(traces, name=traces[0].name)
        )
        cut = source.get("slice")
        if cut is not None:
            index, count = int(cut[0]), int(cut[1])
            start, stop = shard_ranges(len(trace), count)[index]
            trace = HttpTrace(trace.requests[start:stop], name=trace.name)
        return trace
    if kind == "spill":
        payload = PartialStore(source["root"]).load(source["name"], source["digest"])
        return HttpTrace(
            (HttpRequest.from_dict(entry) for entry in payload["requests"]),
            name=str(source.get("trace_name", "shard")),
        )
    raise PipelineError(f"unknown shard-job source kind {kind!r}")


def run_shard_job(spec: dict) -> dict:
    """One map job: extract a shard's inverted-index partial and spill it.

    *spec* is JSON-compatible apart from an ``inline`` source's trace
    (see :func:`_resolve_source`), so the same function serves the
    in-process dispatchers and the subprocess worker
    (:mod:`repro.core.shardworker`).  The heavy payload travels through
    the digest-verified :class:`PartialStore`; the returned dict carries
    only the partial's identity plus small accounting.

    A retrying dispatcher overrides the spill name per attempt via
    ``spec["spill_name"]`` (fresh names keep a dead attempt's bytes from
    shadowing a later good one), and ``spec["fault"]`` — set only by an
    explicit :class:`~repro.core.faults.FaultPlan` — triggers the
    deterministic injection hooks at job entry and after the spill.
    """
    tick = time.perf_counter()
    shard = int(spec["shard"])
    fault = spec.get("fault")
    fire_before_load(fault, shard)
    trace = _resolve_source(spec)
    aggregate = bool(spec["aggregate"])
    want_patterns = bool(spec["want_patterns"])
    want_windows = bool(spec["want_windows"])
    want_referrers = bool(spec.get("want_referrers", False))
    window_seconds = float(spec["window_seconds"])

    sid_of_host: dict[str, tuple[int, str]] = {}
    vocab = StableInterner()
    clients: dict[int, set[str]] = defaultdict(set)
    ips: dict[int, set[str]] = defaultdict(set)
    files: dict[int, set[str]] = defaultdict(set)
    patterns: dict[int, set[tuple[str, ...]]] = defaultdict(set)
    windows: dict[int, set[int]] = defaultdict(set)
    counts: Counter[int] = Counter()
    file_of_uri: dict[str, str] = {}
    raw_hosts: set[str] = set()
    # Referrer summaries mirror pruning.dominant_referrers: per server
    # (aggregated label), count requests per external landing server, in
    # first-seen order — contiguous shards merged in shard order then
    # reproduce the whole-trace first-seen order, so the reduce-side
    # dominant pick matches Counter.most_common's tie-break exactly.
    referrers: dict[int, dict[str, int]] = {}
    landing_of: dict[str, str | None] = {}
    host_cache: dict[str, str | None] = {}
    for request in trace.requests:
        host = request.host
        cached = sid_of_host.get(host)
        if cached is None:
            raw_hosts.add(host)
            label = normalize_server_name(host) if aggregate else host
            cached = (vocab.intern(label), label)
            sid_of_host[host] = cached
        sid = cached[0]
        clients[sid].add(request.client)
        ips[sid].add(request.server_ip)
        uri = request.uri
        filename = file_of_uri.get(uri)
        if filename is None:
            filename = request.uri_file
            file_of_uri[uri] = filename
        files[sid].add(filename)
        counts[sid] += 1
        if want_patterns:
            names = request.parameter_names
            if names:
                patterns[sid].add(names)
        if want_windows:
            windows[sid].add(int(request.timestamp // window_seconds))
        if want_referrers:
            referrer = request.referrer
            if referrer:
                if referrer in landing_of:
                    landing = landing_of[referrer]
                else:
                    landing = referrer_host(referrer, host_cache)
                    landing_of[referrer] = landing
                if landing is not None and landing != cached[1]:
                    entries = referrers.get(sid)
                    if entries is None:
                        entries = referrers[sid] = {}
                    entries[landing] = entries.get(landing, 0) + 1

    payload: dict[str, object] = {
        "shard": shard,
        "requests": len(trace),
        "raw_hosts": sorted(raw_hosts),
        "vocab": {str(sid): label for sid, label in vocab.to_dict().items()},
        "clients": {str(sid): sorted(found) for sid, found in clients.items()},
        "ips": {str(sid): sorted(found) for sid, found in ips.items()},
        "files": {str(sid): sorted(found) for sid, found in files.items()},
        "counts": {str(sid): count for sid, count in counts.items()},
    }
    if want_patterns:
        payload["patterns"] = {
            str(sid): sorted(list(pattern) for pattern in found)
            for sid, found in patterns.items()
        }
    if want_windows:
        payload["windows"] = {str(sid): sorted(found) for sid, found in windows.items()}
    if want_referrers:
        # Insertion order is data, not cosmetics (see above); JSON
        # round-trips object key order, so it survives the spill.
        payload["referrers"] = {
            str(sid): [[landing, count] for landing, count in entries.items()]
            for sid, entries in referrers.items()
        }
    name = str(spec.get("spill_name") or f"index-{shard:04d}")
    spill = PartialStore(spec["spill_root"])
    digest, spilled = spill.put(name, payload)
    fire_after_spill(fault, spill.path_of(name), shard)
    return {
        "shard": shard,
        "name": name,
        "digest": digest,
        "spilled": spilled,
        "requests": len(trace),
        "seconds": time.perf_counter() - tick,
    }


class _MergedIndexes:
    """Reduce-side accumulator for phase-A partials (one shard at a time)."""

    def __init__(self) -> None:
        self.vocab = StableInterner()
        self.clients: dict[int, set[str]] = defaultdict(set)
        self.ips: dict[int, set[str]] = defaultdict(set)
        self.files: dict[int, set[str]] = defaultdict(set)
        self.patterns: dict[int, set[tuple[str, ...]]] = defaultdict(set)
        self.windows: dict[int, set[int]] = defaultdict(set)
        self.counts: Counter[int] = Counter()
        self.raw_hosts: set[str] = set()
        self.requests = 0
        #: server id -> landing server -> referred-request count, in
        #: global first-seen order (shards merge in canonical order and
        #: cover contiguous trace slices, so appending each shard's
        #: first-seen entries reproduces the whole-trace order).
        self.referrers: dict[int, dict[str, int]] = {}

    def merge(self, payload: dict) -> None:
        self.requests += int(payload["requests"])
        self.raw_hosts.update(payload["raw_hosts"])
        self.vocab.merge({int(sid): label for sid, label in payload["vocab"].items()})
        for attribute in ("clients", "ips", "files"):
            target = getattr(self, attribute)
            for sid, found in payload[attribute].items():
                target[int(sid)].update(found)
        for sid, count in payload["counts"].items():
            self.counts[int(sid)] += count
        for sid, found in payload.get("patterns", {}).items():
            self.patterns[int(sid)].update(tuple(pattern) for pattern in found)
        for sid, found in payload.get("windows", {}).items():
            self.windows[int(sid)].update(found)
        for sid, entries in payload.get("referrers", {}).items():
            target_entries = self.referrers.setdefault(int(sid), {})
            for landing, count in entries:
                target_entries[landing] = target_entries.get(landing, 0) + int(count)


# -- phase C: partition-parallel pair accumulation ----------------------------------


def _bucket_of(group: list[int], buckets: int) -> int:
    """Deterministic, hash-seed-independent bucket of one sharing group."""
    digest = hashlib.blake2b(",".join(map(str, group)).encode("ascii"), digest_size=8).digest()
    return int.from_bytes(digest, "big") % buckets


def _pair_chunk_job(
    groups: list[list[int]],
    width: int,
    cap: int,
    spill_root: str,
    name: str,
) -> tuple[str, str, int, dict[str, int], float]:
    """One reduce-input job: accumulate one bucket's pair counts and spill.

    Returns ``(name, digest, spill bytes, stats, seconds)``; the counter
    itself travels through the :class:`PartialStore`.
    """
    tick = time.perf_counter()
    stats = PairStats()
    counts = accumulate_pair_counts(groups, width, cap=cap, stats=stats)
    payload = {
        "counts": sorted(counts.items()),
        "stats": stats.to_dict(),
    }
    digest, spilled = PartialStore(spill_root).put(name, payload)
    return name, digest, spilled, stats.to_dict(), time.perf_counter() - tick


class ShardedAccumulator:
    """Drop-in for :func:`~repro.core.interning.accumulate_pair_counts`
    that fans the quadratic work out over the shared pool.

    Groups are hash-partitioned by content into ``buckets`` chunks; each
    chunk runs the real accumulator (same cap, its own
    :class:`~repro.core.interning.PairStats`) and spills its counter;
    the chunks merge in bucket order.  Every group lands in exactly one
    bucket and counter addition is commutative, so the merged counts
    equal the single-pass counts for any bucket assignment — and the
    folded stats match too (``candidate_pairs`` is recomputed as the
    merged counter's size, since one pair can surface in several
    buckets).
    """

    def __init__(
        self,
        pool: JobPool,
        buckets: int,
        spill_root: str | Path,
        dimension: str,
        recorder=None,
    ) -> None:
        self.pool = pool
        self.buckets = max(1, buckets)
        self.spill_root = str(spill_root)
        self.dimension = dimension
        self.recorder = recorder

    def __call__(
        self,
        groups,
        width: int,
        cap: int = 0,
        stats: PairStats | None = None,
        auto_cap: int = 0,
    ) -> Counter[int]:
        chunks: list[list[list[int]]] = [[] for _ in range(self.buckets)]
        sizes: list[int] = []
        for group in groups:
            members = list(group)
            sizes.append(len(members))
            chunks[_bucket_of(members, self.buckets)].append(members)
        if auto_cap > 0 and not cap:
            # Same pure function of the full group-size distribution the
            # single-pass accumulator applies, so the sharded mine makes
            # the identical capping decision and stays byte-identical.
            cap = resolve_auto_cap(sizes, cap, auto_cap)
            if stats is not None:
                stats.auto_cap = cap
        jobs = []
        for bucket, chunk in enumerate(chunks):
            if not chunk:
                continue
            name = f"pairs-{self.dimension}-{bucket:04d}"
            jobs.append(partial(_pair_chunk_job, chunk, width, cap, self.spill_root, name))
        results = self.pool.run(jobs)

        merged: Counter[int] = Counter()
        store = PartialStore(self.spill_root)
        recorder = self.recorder
        for name, digest, spilled, chunk_stats, seconds in results:
            payload = store.load(name, digest)
            store.delete(name)
            merged.update(dict(payload["counts"]))
            if stats is not None:
                stats.groups += chunk_stats["groups"]
                stats.skipped_groups += chunk_stats["skipped_groups"]
                stats.enumerated_pairs += chunk_stats["enumerated_pairs"]
                if chunk_stats["largest_group"] > stats.largest_group:
                    stats.largest_group = chunk_stats["largest_group"]
            if recorder is not None and recorder.enabled:
                recorder.record_span(
                    "pipeline.mine.pair_partial",
                    seconds,
                    {
                        "dimension": self.dimension,
                        "partial": name,
                        "spill_bytes": spilled,
                        **chunk_stats,
                    },
                )
                recorder.counter(
                    "smash_shard_pair_partials_total",
                    "Pair-count partials accumulated by the sharded mine.",
                    labels=("dimension",),
                ).labels(dimension=self.dimension).inc()
                recorder.counter(
                    "smash_shard_spill_bytes_total",
                    "Bytes of sharded-mine partials spilled, by kind.",
                    labels=("kind",),
                ).labels(kind="pairs").inc(spilled)
        if stats is not None:
            stats.candidate_pairs = len(merged)
        return merged


# -- Louvain jobs (module-level for pickling) ---------------------------------------


def _louvain_secondary_job(graph, dimension: str, config: SmashConfig) -> MiningOutcome:
    return mine_herds(graph, dimension, config.louvain)


def _louvain_main_job(
    graph,
    single_client_servers: set[str],
    clients_by_server: dict[str, frozenset[str]],
    config: SmashConfig,
) -> MiningOutcome:
    from repro.core.pipeline import _append_single_client_herds

    main = mine_herds(graph, MAIN_DIMENSION, config.louvain)
    return _append_single_client_herds(main, single_client_servers, clients_by_server)


# -- the sharded mine ---------------------------------------------------------------


class IndexOnlyTrace(HttpTrace):
    """A prepared trace holding inverted indexes but no raw requests.

    The out-of-core reduce builds every per-dimension graph (and every
    content signature) from the merged shard indexes; the scalar facts
    consumers legitimately need — request count, server namespace — are
    injected.  Any path that would actually read raw requests raises a
    :class:`~repro.errors.PipelineError`: silently iterating an empty
    request tuple would corrupt results, failing loudly turns a missed
    consumer into a test failure instead.
    """

    def __init__(self, name: str, num_requests: int) -> None:
        super().__init__((), name=name)
        self._num_requests = num_requests

    def _no_requests(self) -> PipelineError:
        return PipelineError(
            f"trace {self.name!r} is index-only (out-of-core mine): raw "
            "requests were never assembled in the coordinator"
        )

    def __len__(self) -> int:
        return self._num_requests

    def __iter__(self):
        raise self._no_requests()

    @property
    def requests(self):
        raise self._no_requests()

    @property
    def requests_by_server(self):
        raise self._no_requests()


def _assemble_hollow(
    merged: _MergedIndexes,
    config: SmashConfig,
    trace_name: str,
    want_patterns: bool,
    want_windows: bool,
    want_referrers: bool,
) -> tuple[HttpTrace, PreprocessReport, dict[int, str], dict[str, str]]:
    """Finish preprocessing without ever materialising the window trace.

    The out-of-core counterpart of :func:`_assemble_prepared`: identical
    IDF/min-clients filtering on the merged client sets and identical
    injected indexes, but the prepared trace is an
    :class:`IndexOnlyTrace` — no request is ever resident in the
    coordinator.  Also folds the per-shard referrer summaries into the
    ``dominant_referrers`` map the finish stage would otherwise derive
    by scanning the prepared trace (same majority rule, same
    ``most_common`` tie-break via first-seen insertion order).
    """
    pre = config.preprocess
    label_of = merged.vocab.to_dict()
    popular = {sid for sid, clients in merged.clients.items() if len(clients) > pre.idf_threshold}
    too_rare = {sid for sid, clients in merged.clients.items() if len(clients) < pre.min_clients}
    kept = {
        sid: label
        for sid, label in label_of.items()
        if sid not in popular and sid not in too_rare
    }

    kept_requests = sum(merged.counts[sid] for sid in kept)
    prepared = IndexOnlyTrace(f"{trace_name}:preprocessed", kept_requests)
    order = sorted(kept, key=lambda sid: kept[sid])
    clients_by_server = {kept[sid]: frozenset(merged.clients[sid]) for sid in order}
    servers_of: dict[str, set[str]] = defaultdict(set)
    for label, clients in clients_by_server.items():
        for client in clients:
            servers_of[client].add(label)
    prepared._clients_by_server = clients_by_server
    prepared._ips_by_server = {kept[sid]: frozenset(merged.ips[sid]) for sid in order}
    prepared._files_by_server = {kept[sid]: frozenset(merged.files[sid]) for sid in order}
    prepared._servers_by_client = {
        client: frozenset(found) for client, found in servers_of.items()
    }
    prepared._servers = frozenset(clients_by_server)
    if want_patterns:
        # Only servers with >= 1 parameterised request, matching
        # parameter_patterns_by_server's scan output on the kept trace.
        prepared._patterns_by_server = {
            kept[sid]: frozenset(merged.patterns[sid])
            for sid in order
            if merged.patterns.get(sid)
        }
    if want_windows:
        # Every kept server has >= 1 request, hence >= 1 active window.
        prepared._windows_by_server = {
            kept[sid]: frozenset(merged.windows[sid]) for sid in order
        }

    referrer_of: dict[str, str] = {}
    if want_referrers:
        for sid in order:
            entries = merged.referrers.get(sid)
            if not entries:
                continue
            landing, hits = max(entries.items(), key=lambda item: item[1])
            if hits * 2 > merged.counts[sid]:
                referrer_of[kept[sid]] = landing

    report = PreprocessReport(
        raw_servers=len(merged.raw_hosts),
        aggregated_servers=len(label_of),
        popular_servers_removed=len(popular),
        kept_servers=len(kept),
        raw_requests=merged.requests,
        kept_requests=kept_requests,
    )
    return prepared, report, kept, referrer_of


def _store_specs(
    partitions,
    store_root,
    boundaries: tuple[int, ...],
    shards: int,
    common: dict,
) -> list[dict]:
    """Store-direct shard-job specs over ``(day, digest)`` partition refs.

    Multiple partitions are grouped on day boundaries exactly like the
    in-memory boundary split (:func:`_segment_groups`); a single
    partition is split evenly worker-side via a ``slice`` spec applying
    :func:`shard_ranges`.  Either way the request content per shard
    number is identical to the in-memory path's, so the spilled partials
    — and everything merged from them — stay byte-identical.
    """
    refs = [[int(day), str(digest)] for day, digest in partitions]
    if len(refs) != len(boundaries):
        raise PipelineError(
            f"store-direct mining got {len(refs)} partitions but "
            f"{len(boundaries)} shard boundaries; they must correspond 1:1"
        )
    specs: list[dict] = []
    if len(refs) > 1:
        for index, (first, last) in enumerate(_segment_groups(boundaries, shards)):
            source = {
                "kind": "store",
                "root": str(store_root),
                "partitions": refs[first:last],
            }
            specs.append({"shard": index, "source": source, **common})
    else:
        count = len(shard_ranges(sum(boundaries), shards))
        for index in range(count):
            source = {
                "kind": "store",
                "root": str(store_root),
                "partitions": refs,
                "slice": [index, count],
            }
            specs.append({"shard": index, "source": source, **common})
    return specs


def _assemble_prepared(
    trace: HttpTrace,
    merged: _MergedIndexes,
    config: SmashConfig,
) -> tuple[HttpTrace, PreprocessReport, dict[int, str]]:
    """Finish preprocessing from the merged indexes.

    Builds the same filtered trace ``preprocess()`` builds (identical
    requests, identical name) and injects the merged inverted indexes
    into its cache slots, so every downstream consumer reads the
    shard-extracted data instead of re-scanning the window.  Returns the
    prepared trace, the report, and the kept ``{stable id: label}``
    namespace.
    """
    pre = config.preprocess
    label_of = merged.vocab.to_dict()
    popular = {sid for sid, clients in merged.clients.items() if len(clients) > pre.idf_threshold}
    too_rare = {sid for sid, clients in merged.clients.items() if len(clients) < pre.min_clients}
    removed_labels = {label_of[sid] for sid in popular | too_rare}
    kept = {
        sid: label
        for sid, label in label_of.items()
        if sid not in popular and sid not in too_rare
    }

    aggregated = aggregate_trace(trace) if pre.aggregate_second_level else trace
    prepared = aggregated.filter_servers(
        lambda server: server not in removed_labels,
        name=f"{trace.name}:preprocessed",
    )

    # Inject the merged indexes into the prepared trace's cache slots.
    # Iteration order of these dicts never reaches an output (every
    # consumer sorts), but keep it canonical anyway.
    order = sorted(kept, key=lambda sid: kept[sid])
    clients_by_server = {kept[sid]: frozenset(merged.clients[sid]) for sid in order}
    servers_of: dict[str, set[str]] = defaultdict(set)
    for label, clients in clients_by_server.items():
        for client in clients:
            servers_of[client].add(label)
    prepared._clients_by_server = clients_by_server
    prepared._ips_by_server = {kept[sid]: frozenset(merged.ips[sid]) for sid in order}
    prepared._files_by_server = {kept[sid]: frozenset(merged.files[sid]) for sid in order}
    prepared._servers_by_client = {
        client: frozenset(found) for client, found in servers_of.items()
    }
    prepared._servers = frozenset(clients_by_server)

    report = PreprocessReport(
        raw_servers=len(merged.raw_hosts),
        aggregated_servers=len(label_of),
        popular_servers_removed=len(popular),
        kept_servers=len(kept),
        raw_requests=merged.requests,
        kept_requests=sum(merged.counts[sid] for sid in kept),
    )
    return prepared, report, kept


def _build_secondary_graph(
    dimension: str,
    prepared: HttpTrace,
    whois,
    config: SmashConfig,
    accumulate: ShardedAccumulator,
    merged: _MergedIndexes,
    kept: dict[int, str],
):
    """Build one secondary dimension's graph with sharded accumulation."""
    if dimension == "urifile":
        return build_urifile_graph(prepared, config.dimensions, accumulate)
    if dimension == "ipset":
        return build_ipset_graph(prepared, config.dimensions, accumulate)
    if dimension == "whois":
        if whois is None:
            return None
        return build_whois_graph(prepared, whois, config.dimensions, accumulate)
    if dimension == "urlparam":
        patterns_of = {
            kept[sid]: frozenset(merged.patterns[sid])
            for sid in kept
            if merged.patterns.get(sid)
        }
        return build_urlparam_graph(
            prepared, config.dimensions, accumulate, patterns_of=patterns_of
        )
    if dimension == "time":
        windows_of = {
            kept[sid]: frozenset(merged.windows[sid])
            for sid in kept
            if merged.windows.get(sid)
        }
        return build_time_graph(
            prepared,
            config.dimensions,
            accumulate=accumulate,
            windows_of=windows_of,
        )
    # Extension dimensions registered only in SECONDARY_GRAPH_BUILDERS:
    # fall back to the un-sharded builder (correct, just not fanned out).
    from repro.core.pipeline import SECONDARY_GRAPH_BUILDERS

    try:
        builder = SECONDARY_GRAPH_BUILDERS[dimension]
    except KeyError:  # pragma: no cover - guarded by SmashConfig.validate
        raise PipelineError(f"unknown dimension {dimension!r}") from None
    return builder(prepared, whois, config)


def mine_sharded(
    pipeline,
    trace: HttpTrace | None,
    whois,
    config: SmashConfig,
    cache,
    span,
    pool: JobPool,
    boundaries: tuple[int, ...] | None = None,
    spill_dir: str | Path | None = None,
    partitions=None,
    store_root: str | Path | None = None,
    trace_name: str | None = None,
):
    """The sharded mine path; see the module docstring.

    Returns a :class:`~repro.core.pipeline.MinedDimensions` byte-for-byte
    equal (in every output-reachable field) to what
    ``SmashPipeline._mine`` produces on the same inputs.

    With *partitions* (``(day, digest)`` references into the store at
    *store_root*) instead of *trace*, map jobs load their own day
    partitions — the coordinator never holds a raw request — and the
    reduce is forced out-of-core (*boundaries* must then be the per-
    partition request counts, from the partition manifests).  With a
    *trace*, ``config.out_of_core`` selects the hollow reduce and
    ``config.dispatch`` selects how map jobs execute either way.
    """
    from repro.core.pipeline import (
        DIMENSION_SIGNATURES,
        MinedDimensions,
        _record_dimension,
        _timed_job,
    )

    recorder = pipeline.metrics
    shards = config.shards
    out_of_core = config.out_of_core or trace is None
    if trace is None and (not partitions or store_root is None or not boundaries):
        raise PipelineError(
            "store-direct mining needs partitions, store_root and "
            "shard_boundaries when no trace is given"
        )
    window_name = trace.name if trace is not None else (trace_name or "trace")
    want_patterns = "urlparam" in config.enabled_secondary_dimensions
    want_windows = "time" in config.enabled_secondary_dimensions
    want_referrers = out_of_core and config.pruning.prune_referrer_groups

    if spill_dir is not None:
        parent = Path(spill_dir)
        parent.mkdir(parents=True, exist_ok=True)
        # A crashed coordinator leaks its spill dir; collect stale ones
        # (age- and ownership-checked) before adding our own.
        PartialStore.gc_orphans(parent)
        spill_root = tempfile.mkdtemp(prefix="mine-", dir=str(parent))
    else:
        spill_root = tempfile.mkdtemp(prefix="repro-shardmine-")
    spill = PartialStore(spill_root)
    spill.claim()
    dispatcher = make_dispatcher(
        config.dispatch,
        pool=pool,
        workers=config.workers,
        policy=RetryPolicy.from_config(config),
        plan=config.fault_plan,
        recorder=recorder,
    )
    try:
        # -- phase A + reduce: sharded preprocess ---------------------------------
        with recorder.span("pipeline.mine.preprocess") as pre_span:
            common = {
                "aggregate": config.preprocess.aggregate_second_level,
                "want_patterns": want_patterns,
                "want_windows": want_windows,
                "want_referrers": want_referrers,
                "window_seconds": DEFAULT_WINDOW_SECONDS,
                "spill_root": spill_root,
            }
            input_partials: list[str] = []
            if partitions is not None:
                specs = _store_specs(partitions, store_root, boundaries, shards, common)
            else:
                requests = trace.requests
                specs = []
                for index, (start, stop) in enumerate(
                    shard_ranges(len(trace), shards, boundaries)
                ):
                    shard_trace = HttpTrace(
                        requests[start:stop], name=f"{trace.name}:shard{index}"
                    )
                    if dispatcher.inline_traces:
                        source: dict[str, object] = {
                            "kind": "inline",
                            "trace": shard_trace,
                        }
                    else:
                        # The dispatcher can't share our address space:
                        # spill the shard's requests and hand over a
                        # digest-verified reference instead.
                        input_name = f"input-{index:04d}"
                        digest, _ = spill.put(
                            input_name,
                            {
                                "requests": [
                                    request.to_dict()
                                    for request in shard_trace.requests
                                ]
                            },
                        )
                        input_partials.append(input_name)
                        source = {
                            "kind": "spill",
                            "root": spill_root,
                            "name": input_name,
                            "digest": digest,
                            "trace_name": shard_trace.name,
                        }
                    specs.append({"shard": index, "source": source, **common})
            num_shards = len(specs)
            results = dispatcher.run(specs)
            for input_name in input_partials:
                spill.delete(input_name)

            merged = _MergedIndexes()
            with recorder.span("pipeline.mine.shard_merge") as merge_span:
                for result in sorted(results, key=lambda entry: entry["shard"]):
                    merged.merge(spill.load(result["name"], result["digest"]))
                    spill.delete(result["name"])
                    if recorder.enabled:
                        attributes = {
                            "shard": result["shard"],
                            "requests": result["requests"],
                            "spill_bytes": result["spilled"],
                        }
                        if "peak_rss_kb" in result:
                            attributes["worker_peak_rss_kb"] = result["peak_rss_kb"]
                        recorder.record_span(
                            "pipeline.mine.shard_index",
                            result["seconds"],
                            attributes,
                        )
                        recorder.counter(
                            "smash_shard_index_partials_total",
                            "Per-shard index partials produced by the map phase.",
                        ).inc()
                        recorder.counter(
                            "smash_shard_spill_bytes_total",
                            "Bytes of sharded-mine partials spilled, by kind.",
                            labels=("kind",),
                        ).labels(kind="index").inc(result["spilled"])
            referrer_of: dict[str, str] | None = None
            if out_of_core:
                prepared, report, kept, referrer_of = _assemble_hollow(
                    merged,
                    config,
                    window_name,
                    want_patterns,
                    want_windows,
                    want_referrers,
                )
            else:
                prepared, report, kept = _assemble_prepared(trace, merged, config)
            if recorder.enabled:
                merge_span.set(
                    shards=num_shards,
                    servers=len(merged.vocab),
                    kept_servers=len(kept),
                )
                pre_span.set(
                    raw_requests=report.raw_requests,
                    kept_requests=report.kept_requests,
                    raw_servers=report.raw_servers,
                    kept_servers=report.kept_servers,
                    popular_servers_removed=report.popular_servers_removed,
                    shards=num_shards,
                    dispatch=dispatcher.kind,
                    out_of_core=out_of_core,
                )

        # -- cache lookup (same contract as the single-shard mine) ----------------
        clients_by_server = prepared.clients_by_server
        single_client_servers = {
            server
            for server, clients in clients_by_server.items()
            if len(clients) == 1
        }
        multi_clients_by_server = {
            server: clients
            for server, clients in clients_by_server.items()
            if server not in single_client_servers
        }
        multi_servers_by_client: dict[str, frozenset[str]] = {}
        for client, servers in prepared.servers_by_client.items():
            surviving = servers - single_client_servers
            if surviving:
                multi_servers_by_client[client] = (
                    servers if len(surviving) == len(servers) else surviving
                )

        dimensions = (MAIN_DIMENSION, *config.enabled_secondary_dimensions)
        signatures: dict[str, str] = {}
        reused: dict[str, MiningOutcome | None] = {}
        to_mine: list[str] = []
        if cache is None:
            to_mine = list(dimensions)
        else:
            for dimension in dimensions:
                try:
                    signer = DIMENSION_SIGNATURES[dimension]
                except KeyError:
                    raise PipelineError(
                        f"dimension {dimension!r} has no entry in "
                        f"DIMENSION_SIGNATURES; register one to make it cacheable"
                    ) from None
                signatures[dimension] = signer(prepared, whois, config)
                hit, outcome = cache.lookup(dimension, signatures[dimension])
                if hit:
                    reused[dimension] = outcome
                else:
                    to_mine.append(dimension)

        # -- phase C: graphs with partition-parallel pair counting ----------------
        job_config = config if config.metrics is None else config.replace(metrics=None)
        graphs: dict[str, object] = {}
        build_seconds: dict[str, float] = {}
        for dimension in to_mine:
            accumulate = ShardedAccumulator(
                pool, num_shards or 1, spill_root, dimension, recorder=recorder
            )
            tick = time.perf_counter()
            if dimension == MAIN_DIMENSION:
                graphs[dimension] = build_client_graph_from_indices(
                    multi_clients_by_server,
                    multi_servers_by_client,
                    config.dimensions,
                    accumulate,
                )
            else:
                graphs[dimension] = _build_secondary_graph(
                    dimension, prepared, whois, job_config, accumulate, merged, kept
                )
            build_seconds[dimension] = time.perf_counter() - tick

        # -- Louvain fan-out on the same pool -------------------------------------
        louvain_jobs = []
        louvain_dimensions = []
        for dimension in to_mine:
            graph = graphs[dimension]
            if graph is None:
                continue
            louvain_dimensions.append(dimension)
            if dimension == MAIN_DIMENSION:
                job = partial(
                    _louvain_main_job,
                    graph,
                    single_client_servers,
                    clients_by_server,
                    job_config,
                )
            else:
                job = partial(_louvain_secondary_job, graph, dimension, job_config)
            louvain_jobs.append(partial(_timed_job, job))
        timed = pool.run(louvain_jobs)

        mined_now: dict[str, MiningOutcome | None] = {dimension: None for dimension in to_mine}
        for dimension, (outcome, seconds) in zip(louvain_dimensions, timed):
            mined_now[dimension] = outcome
            if recorder.enabled:
                _record_dimension(recorder, dimension, outcome, build_seconds[dimension] + seconds)
        if recorder.enabled:
            for dimension in to_mine:
                if dimension not in louvain_dimensions:
                    _record_dimension(recorder, dimension, None, build_seconds[dimension])

        if cache is not None:
            for dimension in to_mine:
                cache.update(dimension, signatures[dimension], mined_now[dimension])
            cache.last_reused = tuple(d for d in dimensions if d in reused)
            cache.last_mined = tuple(to_mine)

        main = reused[MAIN_DIMENSION] if MAIN_DIMENSION in reused else mined_now[MAIN_DIMENSION]
        assert main is not None  # the main-dimension job never returns None
        secondary: dict[str, MiningOutcome] = {}
        for dimension in config.enabled_secondary_dimensions:
            outcome = reused[dimension] if dimension in reused else mined_now[dimension]
            if outcome is not None:
                secondary[dimension] = outcome
        if recorder.enabled:
            span.set(
                requests=report.kept_requests,
                servers=report.kept_servers,
                shards=num_shards,
                dispatch=dispatcher.kind,
                out_of_core=out_of_core,
                mined_dimensions=list(to_mine),
                reused_dimensions=[d for d in dimensions if d in reused],
            )
        return MinedDimensions(
            trace=prepared,
            preprocess_report=report,
            main=main,
            secondary=secondary,
            interner=Interner(clients_by_server),
            stage_cache=(
                {"dominant_referrers": referrer_of} if referrer_of is not None else {}
            ),
        )
    finally:
        dispatcher.close()
        spill.cleanup()
