"""ASH mining (Section III-B3).

Run Louvain community detection on one dimension's similarity graph; the
communities that still hold at least two connected servers become that
dimension's Associated Server Herds.  Nodes that end up alone (no edges,
or singleton communities) are "dropped" by the dimension — for the main
dimension the paper reports these as servers that "can not be correlated
with other servers in client similarity" (Section V-C1).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import LouvainConfig
from repro.core.results import Herd
from repro.graph.louvain import louvain_communities
from repro.graph.wgraph import WeightedGraph


@dataclass(frozen=True)
class MiningOutcome:
    """Herds plus the servers the dimension could not correlate.

    ``graph`` is the similarity graph the herds were mined from; the
    correlation stage measures intersection-ASH densities on it (eq. 9).
    The ``louvain_*`` fields aggregate the work done by the top-level
    Louvain run plus every refinement re-run — observability metadata,
    never consumed by later stages.
    """

    herds: tuple[Herd, ...]
    dropped: frozenset[str]
    modularity: float
    graph: WeightedGraph
    louvain_runs: int = 0
    louvain_levels: int = 0
    louvain_moves: int = 0
    louvain_sweeps: int = 0

    def herd_of(self) -> dict[str, Herd]:
        """server -> its herd (each server is in at most one herd)."""
        mapping: dict[str, Herd] = {}
        for herd in self.herds:
            for server in herd.servers:
                mapping[server] = herd
        return mapping


def _tally(tally: list[int], result) -> None:
    """Fold one Louvain run's work counters into a ``[runs, levels, moves, sweeps]`` tally."""
    tally[0] += 1
    tally[1] += result.levels
    tally[2] += result.moves
    tally[3] += result.sweeps


def _refine_community(
    graph: WeightedGraph,
    community: frozenset,
    config: LouvainConfig,
    depth: int,
    tally: list[int],
) -> list[frozenset]:
    """Recursively split *community* by re-running Louvain on its subgraph.

    Splitting stops when the local run keeps everything together (the
    community is cohesive — e.g. a clique) or the depth/size floors hit.
    """
    if depth >= config.max_refine_depth or len(community) <= config.min_refine_size:
        return [community]
    if graph.density_of(community) >= config.refine_density_stop:
        # Already a tight herd; splitting a quasi-clique only shreds it.
        # (density_of == subgraph().density(), minus the subgraph build.)
        return [community]
    subgraph = graph.subgraph(community)
    local = louvain_communities(subgraph, config)
    _tally(tally, local)
    non_trivial = [c for c in local.communities if len(c) >= 1]
    if len(non_trivial) <= 1 or local.modularity <= config.refine_min_modularity:
        return [community]
    refined: list[frozenset] = []
    for part in non_trivial:
        refined.extend(_refine_community(graph, part, config, depth + 1, tally))
    return refined


def mine_herds(
    graph: WeightedGraph,
    dimension: str,
    config: LouvainConfig | None = None,
) -> MiningOutcome:
    """Extract the ASHs of *dimension* from its similarity graph."""
    config = config or LouvainConfig()
    result = louvain_communities(graph, config)
    tally = [0, 0, 0, 0]  # runs, levels, moves, sweeps
    _tally(tally, result)
    communities: list[frozenset] = list(result.communities)
    if config.refine:
        refined: list[frozenset] = []
        for community in communities:
            refined.extend(_refine_community(graph, community, config, 0, tally))
        communities = refined
    herds: list[Herd] = []
    dropped: list[str] = []
    index = 0
    for community in communities:
        # A community is a herd only if its members are actually connected
        # to each other (isolated nodes form singleton communities).
        if len(community) < 2:
            dropped.extend(community)  # type: ignore[arg-type]
            continue
        herds.append(
            Herd(
                dimension=dimension,
                index=index,
                servers=frozenset(community),  # type: ignore[arg-type]
                density=graph.density_of(community),
            )
        )
        index += 1
    return MiningOutcome(
        herds=tuple(herds),
        dropped=frozenset(dropped),
        modularity=result.modularity,
        graph=graph,
        louvain_runs=tally[0],
        louvain_levels=tally[1],
        louvain_moves=tally[2],
        louvain_sweeps=tally[3],
    )
