"""Result types produced by the SMASH pipeline stages."""

from __future__ import annotations

from dataclasses import dataclass, field

MAIN_DIMENSION = "client"
"""Name of the main dimension (client-set similarity, Section III-B1)."""


@dataclass(frozen=True)
class Herd:
    """An Associated Server Herd mined from one dimension.

    ``density`` is the paper's ASH weight ``w``: the edge density
    ``2|e|/(|v|(|v|-1))`` of the herd's subgraph in that dimension's
    similarity graph (Section III-C).
    """

    dimension: str
    index: int
    servers: frozenset[str]
    density: float

    def __post_init__(self) -> None:
        if len(self.servers) < 2:
            raise ValueError("a herd needs at least two servers")
        if not 0.0 <= self.density <= 1.0:
            raise ValueError(f"density must be in [0, 1], got {self.density}")

    def __len__(self) -> int:
        return len(self.servers)


@dataclass(frozen=True)
class CandidateAsh:
    """A correlated ASH: the intersection of a main herd and a secondary
    herd, restricted to servers that survived the score threshold."""

    main_index: int
    secondary_dimension: str
    secondary_index: int
    servers: frozenset[str]


@dataclass(frozen=True)
class Campaign:
    """An inferred malicious campaign (Section III-E).

    Built by merging all surviving ASHs whose servers share a main
    dimension herd; ``main_index`` identifies that herd.
    """

    campaign_id: int
    main_index: int
    servers: frozenset[str]
    clients: frozenset[str]
    #: Suspiciousness score of each member server (eq. 9).
    server_scores: dict[str, float] = field(default_factory=dict)
    #: server -> {secondary dimension -> score contribution}; the Figure-8
    #: decomposition reads which dimensions detected each server.
    contributions: dict[str, dict[str, float]] = field(default_factory=dict)
    #: Servers that were replaced by a landing server during pruning,
    #: mapped to that landing server.
    replaced_servers: dict[str, str] = field(default_factory=dict)

    @property
    def num_servers(self) -> int:
        return len(self.servers)

    @property
    def num_clients(self) -> int:
        return len(self.clients)

    def dimensions_of(self, server: str) -> frozenset[str]:
        """Secondary dimensions with a positive contribution for *server*."""
        return frozenset(
            dim
            for dim, value in self.contributions.get(server, {}).items()
            if value > 0.0
        )


@dataclass(frozen=True)
class PruneReport:
    """What the pruning stage did (Section III-D)."""

    redirection_replacements: dict[str, str] = field(default_factory=dict)
    referrer_replacements: dict[str, str] = field(default_factory=dict)
    dropped_ashes: int = 0


@dataclass(frozen=True)
class SmashResult:
    """Full output of one SMASH run."""

    herds_by_dimension: dict[str, tuple[Herd, ...]]
    scores: dict[str, float]
    contributions: dict[str, dict[str, float]]
    candidate_ashes: tuple[CandidateAsh, ...]
    campaigns: tuple[Campaign, ...]
    prune_report: PruneReport
    #: Servers present after preprocessing but dropped by the main
    #: dimension (not correlated with any other server) — Section V-C1.
    main_dimension_dropped: frozenset[str]

    @property
    def detected_servers(self) -> frozenset[str]:
        """All servers appearing in any inferred campaign."""
        servers: set[str] = set()
        for campaign in self.campaigns:
            servers |= campaign.servers
        return frozenset(servers)

    def campaigns_with_clients(
        self, minimum: int, maximum: int | None = None
    ) -> tuple[Campaign, ...]:
        """Campaigns whose client count is within ``[minimum, maximum]``.

        The paper reports campaigns with >= 2 clients in the main track
        (Section V-A1) and single-client campaigns separately (Appendix C).
        """
        return tuple(
            campaign
            for campaign in self.campaigns
            if campaign.num_clients >= minimum
            and (maximum is None or campaign.num_clients <= maximum)
        )
