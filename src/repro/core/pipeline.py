"""The end-to-end SMASH pipeline (Figure 2).

    pipeline = SmashPipeline(config)
    result = pipeline.run(trace, whois=registry, redirects=oracle)

``run`` executes preprocessing, per-dimension ASH mining, correlation at
the configured threshold, pruning and campaign inference.  ``run_sweep``
re-correlates the mined herds at several thresholds without redoing the
expensive graph work — how the Table II/III threshold sweeps are produced.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import SmashConfig
from repro.core.ashmining import MiningOutcome, mine_herds
from repro.core.correlation import correlate
from repro.core.dimensions.client import build_client_graph
from repro.core.dimensions.ipset import build_ipset_graph
from repro.core.dimensions.timedim import build_time_graph
from repro.core.dimensions.urifile import build_urifile_graph
from repro.core.dimensions.urlparam import build_urlparam_graph
from repro.core.dimensions.whoisdim import build_whois_graph
from repro.core.inference import infer_campaigns
from repro.core.preprocess import PreprocessReport, preprocess
from repro.core.pruning import prune_ashes
from repro.core.results import MAIN_DIMENSION, SmashResult
from repro.errors import PipelineError
from repro.httplog.trace import HttpTrace
from repro.synth.oracles import RedirectOracle
from repro.whois.registry import WhoisRegistry


def _append_single_client_herds(
    main: MiningOutcome,
    single_client_servers: set[str],
    clients_by_server: dict[str, frozenset[str]],
) -> MiningOutcome:
    """Add one main-dimension herd per client owning >= 2 exclusive servers."""
    from collections import defaultdict

    from repro.core.results import Herd

    by_client: dict[str, set[str]] = defaultdict(set)
    for server in single_client_servers:
        (client,) = clients_by_server[server]
        by_client[client].add(server)

    herds = list(main.herds)
    dropped = set(main.dropped)
    next_index = len(herds)
    for client in sorted(by_client):
        servers = by_client[client]
        if len(servers) >= 2:
            herds.append(
                Herd(
                    dimension=MAIN_DIMENSION,
                    index=next_index,
                    servers=frozenset(servers),
                    density=1.0,
                )
            )
            next_index += 1
        else:
            dropped |= servers
    # Single-client herds are complete under eq. 1 (every pair scores 1.0
    # through their one shared client); add those edges to the main graph
    # so intersection densities see them.
    graph = main.graph
    for herd in herds[len(main.herds):]:
        members = sorted(herd.servers)
        for i, first in enumerate(members):
            for second in members[i + 1:]:
                if not graph.has_edge(first, second):
                    graph.add_edge(first, second, 1.0)
    return MiningOutcome(
        herds=tuple(herds),
        dropped=frozenset(dropped),
        modularity=main.modularity,
        graph=graph,
    )


@dataclass(frozen=True)
class MinedDimensions:
    """Intermediate state: preprocessed trace plus per-dimension herds."""

    trace: HttpTrace
    preprocess_report: PreprocessReport
    main: MiningOutcome
    secondary: dict[str, MiningOutcome]


class SmashPipeline:
    """Run SMASH over an HTTP trace.

    The pipeline is stateless between ``run`` calls; all tunables live in
    the :class:`~repro.config.SmashConfig` given at construction.
    """

    def __init__(self, config: SmashConfig | None = None) -> None:
        self.config = config or SmashConfig()
        self.config.validate()

    # -- stage 1+2: preprocess and mine --------------------------------------------

    def mine(
        self,
        trace: HttpTrace,
        whois: WhoisRegistry | None = None,
    ) -> MinedDimensions:
        """Preprocess *trace* and mine ASHs on every enabled dimension.

        Servers visited by exactly one client are handled the way the
        paper handles them (Appendix C, footnote 10): "all the servers
        that were visited by only one client form an ASH based on our main
        dimension" — one herd per client, complete by construction under
        eq. 1 (every pair scores 1.0), hence density 1.0.  They are kept
        out of the multi-client similarity graph, where their degenerate
        1.0-weight cliques would chain unrelated client neighbourhoods
        together.
        """
        if len(trace) == 0:
            raise PipelineError("cannot run SMASH on an empty trace")
        config = self.config
        prepared, report = preprocess(trace, config.preprocess)

        clients_by_server = prepared.clients_by_server
        single_client_servers = {
            server
            for server, clients in clients_by_server.items()
            if len(clients) == 1
        }
        multi_trace = prepared.filter_servers(
            lambda server: server not in single_client_servers
        )
        main_graph = build_client_graph(multi_trace, config.dimensions)
        main = mine_herds(main_graph, MAIN_DIMENSION, config.louvain)
        main = _append_single_client_herds(
            main, single_client_servers, clients_by_server
        )

        secondary: dict[str, MiningOutcome] = {}
        for dimension in config.enabled_secondary_dimensions:
            if dimension == "urifile":
                graph = build_urifile_graph(prepared, config.dimensions)
            elif dimension == "ipset":
                graph = build_ipset_graph(prepared, config.dimensions)
            elif dimension == "whois":
                if whois is None:
                    # No registry available: the dimension contributes no
                    # herds (equivalent to all lookups failing).
                    continue
                graph = build_whois_graph(prepared, whois, config.dimensions)
            elif dimension == "urlparam":
                graph = build_urlparam_graph(prepared, config.dimensions)
            elif dimension == "time":
                graph = build_time_graph(prepared, config.dimensions)
            else:  # pragma: no cover - guarded by SmashConfig.validate
                raise PipelineError(f"unknown dimension {dimension!r}")
            secondary[dimension] = mine_herds(graph, dimension, config.louvain)
        return MinedDimensions(
            trace=prepared,
            preprocess_report=report,
            main=main,
            secondary=secondary,
        )

    # -- stages 3-5: correlate, prune, infer ----------------------------------------

    def finish(
        self,
        mined: MinedDimensions,
        redirects: RedirectOracle | None = None,
        thresh: float | None = None,
    ) -> SmashResult:
        """Correlation, pruning and campaign inference on mined herds."""
        config = self.config
        outcome = correlate(
            mined.main, mined.secondary, config.correlation, thresh=thresh
        )
        pruned, prune_report = prune_ashes(
            outcome.candidate_ashes, mined.trace, redirects, config.pruning
        )
        campaigns = infer_campaigns(
            pruned,
            mined.main,
            mined.trace,
            outcome.scores,
            outcome.contributions,
            prune_report,
        )
        herds_by_dimension = {MAIN_DIMENSION: mined.main.herds}
        for dimension, mining in mined.secondary.items():
            herds_by_dimension[dimension] = mining.herds
        return SmashResult(
            herds_by_dimension=herds_by_dimension,
            scores=outcome.scores,
            contributions=outcome.contributions,
            candidate_ashes=pruned,
            campaigns=campaigns,
            prune_report=prune_report,
            main_dimension_dropped=mined.main.dropped,
        )

    # -- one-shot and sweep APIs -------------------------------------------------------

    def run(
        self,
        trace: HttpTrace,
        whois: WhoisRegistry | None = None,
        redirects: RedirectOracle | None = None,
        thresh: float | None = None,
    ) -> SmashResult:
        """Full pipeline at one threshold (default: the configured one)."""
        mined = self.mine(trace, whois)
        return self.finish(mined, redirects, thresh=thresh)

    def run_sweep(
        self,
        trace: HttpTrace,
        thresholds: tuple[float, ...],
        whois: WhoisRegistry | None = None,
        redirects: RedirectOracle | None = None,
    ) -> dict[float, SmashResult]:
        """Run the pipeline once, then re-correlate at each threshold.

        Mining dominates the cost and is threshold-independent, so the
        Table II/III sweeps reuse it.
        """
        mined = self.mine(trace, whois)
        return {
            threshold: self.finish(mined, redirects, thresh=threshold)
            for threshold in thresholds
        }
