"""The end-to-end SMASH pipeline (Figure 2).

    pipeline = SmashPipeline(config)
    result = pipeline.run(trace, whois=registry, redirects=oracle)

``run`` executes preprocessing, per-dimension ASH mining, correlation at
the configured threshold, pruning and campaign inference.  ``run_sweep``
re-correlates the mined herds at several thresholds without redoing the
expensive graph work — how the Table II/III threshold sweeps are produced.

Per-dimension mining is dispatched through ``SECONDARY_GRAPH_BUILDERS``
(a registry, so extensions can add dimensions without touching ``mine``)
and can fan out over a thread or process pool via
``SmashConfig(workers=..., executor=...)`` or ``mine(workers=N)``; the
mining core is deterministic by construction, so parallel and serial runs
produce identical results.

``mine(cache=DimensionCache())`` makes repeated runs over overlapping
inputs incremental: each dimension's mining outcome is cached under a
content signature of exactly the inputs its graph builder reads (the
``DIMENSION_SIGNATURES`` registry), so a re-run only rebuilds dimensions
whose inputs actually changed — the seam the streaming engine uses to
advance a multi-day window without re-mining untouched dimensions.
Because a signature hit proves the builder's inputs are byte-identical
and mining is deterministic, the cached outcome *is* the outcome a cold
rebuild would produce, under any ``PYTHONHASHSEED``.
"""

from __future__ import annotations

import hashlib
import time

from collections.abc import Callable
from dataclasses import dataclass, field
from functools import partial

from repro.config import SmashConfig
from repro.core.ashmining import MiningOutcome, mine_herds
from repro.core.correlation import correlate_ids
from repro.core.dimensions.client import build_client_graph_from_indices
from repro.core.dimensions.ipset import build_ipset_graph
from repro.core.dimensions.timedim import build_time_graph
from repro.core.dimensions.urifile import build_urifile_graph
from repro.core.dimensions.urlparam import build_urlparam_graph
from repro.core.dimensions.whoisdim import build_whois_graph
from repro.core.inference import infer_campaigns_ids
from repro.core.interning import Interner
from repro.core.preprocess import PreprocessReport, preprocess
from repro.core.pruning import dominant_referrers, prune_ashes_ids
from repro.core.results import MAIN_DIMENSION, CandidateAsh, SmashResult
from repro.errors import PipelineError
from repro.graph.wgraph import WeightedGraph
from repro.obs.metrics import NULL_RECORDER
from repro.httplog.trace import HttpTrace
from repro.synth.oracles import RedirectOracle
from repro.util.parallel import JobPool, resolve_workers
from repro.whois.registry import WhoisRegistry

#: A secondary-dimension graph builder: ``(trace, whois, config) -> graph``.
#: Returning ``None`` means the dimension cannot run (e.g. no Whois
#: registry available) and contributes no herds.
SecondaryGraphBuilder = Callable[
    [HttpTrace, "WhoisRegistry | None", SmashConfig], "WeightedGraph | None"
]


def _build_urifile(
    trace: HttpTrace, whois: WhoisRegistry | None, config: SmashConfig
) -> WeightedGraph:
    return build_urifile_graph(trace, config.dimensions)


def _build_ipset(
    trace: HttpTrace, whois: WhoisRegistry | None, config: SmashConfig
) -> WeightedGraph:
    return build_ipset_graph(trace, config.dimensions)


def _build_whois(
    trace: HttpTrace, whois: WhoisRegistry | None, config: SmashConfig
) -> WeightedGraph | None:
    if whois is None:
        # No registry available: the dimension contributes no herds
        # (equivalent to all lookups failing).
        return None
    return build_whois_graph(trace, whois, config.dimensions)


def _build_urlparam(
    trace: HttpTrace, whois: WhoisRegistry | None, config: SmashConfig
) -> WeightedGraph:
    return build_urlparam_graph(trace, config.dimensions)


def _build_time(
    trace: HttpTrace, whois: WhoisRegistry | None, config: SmashConfig
) -> WeightedGraph:
    return build_time_graph(trace, config.dimensions)


#: Registry of secondary-dimension builders, replacing the old if/elif
#: dispatch in ``SmashPipeline.mine``.  Extensions can register additional
#: dimensions here (and add them to ``SmashConfig.validate``'s known set).
SECONDARY_GRAPH_BUILDERS: dict[str, SecondaryGraphBuilder] = {
    "urifile": _build_urifile,
    "ipset": _build_ipset,
    "whois": _build_whois,
    "urlparam": _build_urlparam,
    "time": _build_time,
}


#: A dimension's input signature: a stable string covering *exactly* the
#: data its graph builder reads from the (preprocessed) trace and
#: sidecars.  Two calls with equal signatures are guaranteed to mine
#: identical outcomes, which is what lets ``DimensionCache`` reuse them.
DimensionSignature = Callable[
    [HttpTrace, "WhoisRegistry | None", SmashConfig], str
]


def _digest(*parts: object) -> str:
    payload = "\x1f".join(repr(part) for part in parts)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def _mapping_payload(mapping: dict[str, frozenset[str]]) -> list[tuple[str, tuple[str, ...]]]:
    return sorted(
        (key, tuple(sorted(values))) for key, values in mapping.items()
    )


def _mapping_signature(dimension: str, attribute: str) -> DimensionSignature:
    """Signature for builders that read one server -> set mapping.

    The main dimension qualifies too: the client graph, the
    single-client herds and the multi/single server split are all
    functions of ``clients_by_server`` alone.
    """

    def signer(
        trace: HttpTrace, whois: WhoisRegistry | None, config: SmashConfig
    ) -> str:
        return _digest(
            dimension,
            repr(config.dimensions),
            repr(config.louvain),
            _mapping_payload(getattr(trace, attribute)),
        )

    return signer


def _signature_whois(
    trace: HttpTrace, whois: WhoisRegistry | None, config: SmashConfig
) -> str:
    if whois is None:
        records: object = None
    else:
        records = [
            (server, None if record is None else sorted(record.to_dict().items()))
            for server in sorted(trace.servers)
            for record in (whois.lookup(server),)
        ]
    return _digest(
        "whois", repr(config.dimensions), repr(config.louvain), records
    )


def _signature_urlparam(
    trace: HttpTrace, whois: WhoisRegistry | None, config: SmashConfig
) -> str:
    from repro.core.dimensions.urlparam import parameter_patterns_by_server

    patterns = sorted(
        (server, tuple(sorted(found)))
        for server, found in parameter_patterns_by_server(trace).items()
    )
    return _digest(
        "urlparam",
        repr(config.dimensions),
        repr(config.louvain),
        sorted(trace.servers),
        patterns,
    )


def _signature_time(
    trace: HttpTrace, whois: WhoisRegistry | None, config: SmashConfig
) -> str:
    from repro.core.dimensions.timedim import active_windows_by_server

    windows = sorted(
        (server, tuple(sorted(found)))
        for server, found in active_windows_by_server(trace).items()
    )
    return _digest(
        "time",
        repr(config.dimensions),
        repr(config.louvain),
        sorted(trace.servers),
        windows,
    )


#: Signature functions per dimension, parallel to
#: ``SECONDARY_GRAPH_BUILDERS`` (plus the main dimension).  Computing a
#: signature is one linear pass over the trace — orders of magnitude
#: cheaper than candidate-pair enumeration plus Louvain — so checking
#: the cache is always worth it.  A dimension registered here without a
#: builder (or vice versa) fails loudly in ``mine``.
DIMENSION_SIGNATURES: dict[str, DimensionSignature] = {
    MAIN_DIMENSION: _mapping_signature(MAIN_DIMENSION, "clients_by_server"),
    "urifile": _mapping_signature("urifile", "files_by_server"),
    "ipset": _mapping_signature("ipset", "ips_by_server"),
    "whois": _signature_whois,
    "urlparam": _signature_urlparam,
    "time": _signature_time,
}


class DimensionCache:
    """Content-addressed cache of per-dimension mining outcomes.

    Keyed by dimension name; an entry is reused only when the current
    input signature matches the cached one, so a hit is provably
    equivalent to re-mining (the ISSUE's "incremental == full re-mine"
    invariant).  The streaming engine keeps one of these per stream and
    passes it to every :meth:`SmashPipeline.mine` as the window slides;
    dimensions untouched by the entering/leaving days keep their
    signatures and are spliced back in, dirtied dimensions re-mine.
    """

    def __init__(self) -> None:
        self._entries: dict[str, tuple[str, MiningOutcome | None]] = {}
        self.hits = 0
        self.misses = 0
        #: Dimensions reused / re-mined by the most recent ``mine`` call.
        self.last_reused: tuple[str, ...] = ()
        self.last_mined: tuple[str, ...] = ()

    def __len__(self) -> int:
        return len(self._entries)

    def lookup(self, dimension: str, signature: str) -> tuple[bool, "MiningOutcome | None"]:
        entry = self._entries.get(dimension)
        if entry is not None and entry[0] == signature:
            self.hits += 1
            return True, entry[1]
        self.misses += 1
        return False, None

    def update(
        self, dimension: str, signature: str, outcome: "MiningOutcome | None"
    ) -> None:
        self._entries[dimension] = (signature, outcome)

    def clear(self) -> None:
        self._entries.clear()
        self.last_reused = ()
        self.last_mined = ()


def _mine_secondary_dimension(
    dimension: str,
    trace: HttpTrace,
    whois: WhoisRegistry | None,
    config: SmashConfig,
) -> MiningOutcome | None:
    """One secondary-dimension job: build the graph, then mine herds.

    Module-level (not a closure) so the process executor can pickle it.
    """
    try:
        builder = SECONDARY_GRAPH_BUILDERS[dimension]
    except KeyError:  # pragma: no cover - guarded by SmashConfig.validate
        raise PipelineError(f"unknown dimension {dimension!r}") from None
    graph = builder(trace, whois, config)
    if graph is None:
        return None
    return mine_herds(graph, dimension, config.louvain)


def _mine_main_dimension(
    multi_clients_by_server: dict[str, frozenset[str]],
    multi_servers_by_client: dict[str, frozenset[str]],
    single_client_servers: set[str],
    clients_by_server: dict[str, frozenset[str]],
    config: SmashConfig,
) -> MiningOutcome:
    """The main-dimension job: client graph, Louvain, single-client herds.

    Receives the multi-client restriction of the preprocessed indices
    directly — no filtered trace is materialised (or shipped to process
    workers) just to re-derive the same two dictionaries.
    """
    graph = build_client_graph_from_indices(
        multi_clients_by_server, multi_servers_by_client, config.dimensions
    )
    main = mine_herds(graph, MAIN_DIMENSION, config.louvain)
    return _append_single_client_herds(main, single_client_servers, clients_by_server)


def _append_single_client_herds(
    main: MiningOutcome,
    single_client_servers: set[str],
    clients_by_server: dict[str, frozenset[str]],
) -> MiningOutcome:
    """Add one main-dimension herd per client owning >= 2 exclusive servers."""
    from collections import defaultdict

    from repro.core.results import Herd

    by_client: dict[str, set[str]] = defaultdict(set)
    for server in single_client_servers:
        (client,) = clients_by_server[server]
        by_client[client].add(server)

    herds = list(main.herds)
    dropped = set(main.dropped)
    next_index = len(herds)
    for client in sorted(by_client):
        servers = by_client[client]
        if len(servers) >= 2:
            herds.append(
                Herd(
                    dimension=MAIN_DIMENSION,
                    index=next_index,
                    servers=frozenset(servers),
                    density=1.0,
                )
            )
            next_index += 1
        else:
            dropped |= servers
    # Single-client herds are complete under eq. 1 (every pair scores 1.0
    # through their one shared client); add those edges to the main graph
    # so intersection densities see them.
    graph = main.graph
    for herd in herds[len(main.herds):]:
        members = sorted(herd.servers)
        for i, first in enumerate(members):
            for second in members[i + 1:]:
                if not graph.has_edge(first, second):
                    graph.add_edge(first, second, 1.0)
    return MiningOutcome(
        herds=tuple(herds),
        dropped=frozenset(dropped),
        modularity=main.modularity,
        graph=graph,
        louvain_runs=main.louvain_runs,
        louvain_levels=main.louvain_levels,
        louvain_moves=main.louvain_moves,
        louvain_sweeps=main.louvain_sweeps,
    )


def _timed_job(job: Callable[[], object]) -> tuple[object, float]:
    """Run one mining job and measure it in the worker that executes it.

    Module-level so the process executor can pickle the wrapper; the
    elapsed time rides back with the outcome instead of being recorded
    from the coordinating thread (which would fold queueing delay into
    the dimension's build time).
    """
    tick = time.perf_counter()
    outcome = job()
    return outcome, time.perf_counter() - tick


def dimension_build_stats(mined: "MinedDimensions") -> dict[str, dict[str, object]]:
    """Per-dimension candidate-pair accounting, keyed by dimension name.

    Reads the ``build_stats`` dict each graph builder attaches (group
    counts, enumerated vs candidate pairs, heavy-hitter cap skips).
    Dimensions whose graph carries no stats are omitted.
    """
    stats: dict[str, dict[str, object]] = {}
    for dimension, outcome in ((MAIN_DIMENSION, mined.main), *mined.secondary.items()):
        build_stats = dict(getattr(outcome.graph, "build_stats", {}) or {})
        build_stats.pop("dimension", None)
        if build_stats:
            stats[dimension] = build_stats
    return stats


def _record_dimension(recorder, dimension: str, outcome, seconds: float) -> None:
    """Record one freshly mined dimension: span, latency, pair counters."""
    attributes: dict[str, object] = {"dimension": dimension}
    if outcome is None:
        attributes["skipped"] = True
        recorder.record_span("pipeline.mine.dimension", seconds, attributes)
        return
    stats = dict(getattr(outcome.graph, "build_stats", {}) or {})
    stats.pop("dimension", None)
    attributes.update(stats)
    attributes["herds"] = len(outcome.herds)
    attributes["dropped"] = len(outcome.dropped)
    attributes["louvain_runs"] = outcome.louvain_runs
    attributes["louvain_levels"] = outcome.louvain_levels
    attributes["louvain_moves"] = outcome.louvain_moves
    recorder.record_span("pipeline.mine.dimension", seconds, attributes)
    recorder.histogram(
        "smash_dimension_build_seconds",
        "Wall time of one dimension's build-graph + Louvain job.",
        labels=("dimension",),
    ).labels(dimension=dimension).observe(seconds)
    pairs = recorder.counter(
        "smash_dimension_pairs_total",
        "Candidate-generation pair accounting per dimension.",
        labels=("dimension", "kind"),
    )
    for kind, key in (("enumerated", "enumerated_pairs"), ("candidate", "candidate_pairs")):
        if key in stats:
            pairs.labels(dimension=dimension, kind=kind).inc(stats[key])
    if stats.get("skipped_groups"):
        recorder.counter(
            "smash_dimension_capped_groups_total",
            "Sharing groups skipped by the max_group_size heavy-hitter cap.",
            labels=("dimension",),
        ).labels(dimension=dimension).inc(stats["skipped_groups"])
    recorder.counter(
        "smash_louvain_levels_total",
        "Louvain coarsening levels executed (top-level runs + refinement).",
        labels=("dimension",),
    ).labels(dimension=dimension).inc(outcome.louvain_levels)
    recorder.counter(
        "smash_louvain_moves_total",
        "Accepted Louvain node moves (top-level runs + refinement).",
        labels=("dimension",),
    ).labels(dimension=dimension).inc(outcome.louvain_moves)


@dataclass(frozen=True)
class MinedDimensions:
    """Intermediate state: preprocessed trace plus per-dimension herds.

    ``interner`` maps the post-preprocess server namespace to dense
    integer ids in canonical order; ``finish`` runs correlation, pruning
    and inference on those ids and decodes back to labels only when
    assembling the :class:`~repro.core.results.SmashResult`.  It is
    ``None`` only for instances built by code that predates interning
    (``finish`` then derives one from the trace).
    """

    trace: HttpTrace
    preprocess_report: PreprocessReport
    main: MiningOutcome
    secondary: dict[str, MiningOutcome]
    interner: Interner | None = None
    #: Cross-``finish`` memo (e.g. the trace's dominant-referrer map):
    #: ``finish`` is called once per threshold in a sweep and twice per
    #: streamed day, over the same mined trace.
    stage_cache: dict = field(default_factory=dict, compare=False, repr=False)


class SmashPipeline:
    """Run SMASH over an HTTP trace.

    The pipeline is stateless between ``run`` calls; all tunables live in
    the :class:`~repro.config.SmashConfig` given at construction.
    """

    def __init__(self, config: SmashConfig | None = None) -> None:
        self.config = config or SmashConfig()
        self.config.validate()
        #: The metrics recorder every stage records into; the shared
        #: no-op :data:`~repro.obs.NULL_RECORDER` unless the config
        #: carries a live :class:`~repro.obs.MetricsRegistry`.
        self.metrics = self.config.metrics or NULL_RECORDER

    # -- stage 1+2: preprocess and mine --------------------------------------------

    def mine(
        self,
        trace: HttpTrace | None,
        whois: WhoisRegistry | None = None,
        workers: int | None = None,
        executor: str | None = None,
        cache: DimensionCache | None = None,
        shards: int | None = None,
        shard_boundaries: tuple[int, ...] | None = None,
        spill_dir: object | None = None,
        dispatch: str | None = None,
        out_of_core: bool | None = None,
        partitions: object | None = None,
        store_root: object | None = None,
        trace_name: str | None = None,
    ) -> MinedDimensions:
        """Preprocess *trace* and mine ASHs on every enabled dimension.

        The main dimension and each enabled secondary dimension are
        independent build-graph + Louvain jobs; with ``workers > 1`` they
        run concurrently on the configured executor (*workers* and
        *executor* override :class:`~repro.config.SmashConfig`'s
        ``workers`` / ``executor`` fields).  Mining is deterministic by
        construction, so every worker count and executor kind returns an
        identical :class:`MinedDimensions`.

        With *shards* > 1 (overriding ``SmashConfig.shards``) the whole
        mine runs as the map-reduce of :mod:`repro.core.shardmine`:
        per-shard index extraction with spill-to-store, merged
        preprocessing, and partition-parallel pair counting — byte-
        identical to the single-shard path under any ``PYTHONHASHSEED``.
        *shard_boundaries* (per-day request counts, as the streaming
        engine supplies) aligns shard cuts with stored partitions;
        *spill_dir* hosts the partial spill files (a private temporary
        directory is used when ``None``).

        *dispatch* picks how map jobs execute (``serial`` / ``pool`` /
        ``subprocess``) and *out_of_core* selects the streaming reduce
        that never assembles the full prepared trace in the coordinator
        (both override the :class:`~repro.config.SmashConfig` fields of
        the same names).  With *partitions* (``(day, digest)`` references
        into the :class:`~repro.stream.store.TraceStore` at *store_root*)
        instead of a *trace*, map jobs load their day partitions straight
        from the store — pass ``trace=None``, the per-partition request
        counts as *shard_boundaries*, and optionally *trace_name* for the
        result's trace label.  Every combination returns byte-identical
        mining results.

        With *cache* (a :class:`DimensionCache`), dimensions whose input
        signature matches a cached entry are spliced in from the cache
        instead of re-mined; only dirtied dimensions become jobs.  The
        result is structurally identical either way — a signature hit
        proves the dimension's inputs did not change.

        Servers visited by exactly one client are handled the way the
        paper handles them (Appendix C, footnote 10): "all the servers
        that were visited by only one client form an ASH based on our main
        dimension" — one herd per client, complete by construction under
        eq. 1 (every pair scores 1.0), hence density 1.0.  They are kept
        out of the multi-client similarity graph, where their degenerate
        1.0-weight cliques would chain unrelated client neighbourhoods
        together.
        """
        with self.metrics.span("pipeline.mine", metric="smash_mine_seconds") as span:
            return self._mine(
                trace,
                whois,
                workers,
                executor,
                cache,
                span,
                shards,
                shard_boundaries,
                spill_dir,
                dispatch,
                out_of_core,
                partitions,
                store_root,
                trace_name,
            )

    def _mine(
        self,
        trace: HttpTrace | None,
        whois: WhoisRegistry | None,
        workers: int | None,
        executor: str | None,
        cache: DimensionCache | None,
        span,
        shards: int | None = None,
        shard_boundaries: tuple[int, ...] | None = None,
        spill_dir: object | None = None,
        dispatch: str | None = None,
        out_of_core: bool | None = None,
        partitions: object | None = None,
        store_root: object | None = None,
        trace_name: str | None = None,
    ) -> MinedDimensions:
        if trace is None:
            if partitions is None or store_root is None or shard_boundaries is None:
                raise PipelineError(
                    "mine(trace=None) is the store-direct mode: it needs "
                    "partitions, store_root and shard_boundaries"
                )
            if sum(shard_boundaries) == 0:
                raise PipelineError("cannot run SMASH on an empty trace")
        elif len(trace) == 0:
            raise PipelineError("cannot run SMASH on an empty trace")
        config = self.config
        if (
            workers is not None
            or executor is not None
            or shards is not None
            or dispatch is not None
            or out_of_core is not None
        ):
            # Fold the overrides into the config and re-validate, so a bad
            # value fails fast with a ConfigError instead of surfacing as
            # a ValueError after the preprocessing pass.
            config = config.replace(
                workers=config.workers if workers is None else workers,
                executor=config.executor if executor is None else executor,
                shards=config.shards if shards is None else shards,
                dispatch=config.dispatch if dispatch is None else dispatch,
                out_of_core=(
                    config.out_of_core if out_of_core is None else out_of_core
                ),
            )
            config.validate()
        workers = config.workers
        executor = config.executor
        recorder = self.metrics
        use_sharded = (
            config.shards > 1
            or config.out_of_core
            or config.dispatch != "pool"
            or partitions is not None
        )
        if use_sharded:
            from repro.core.shardmine import mine_sharded

            # One pool serves every fan-out of the sharded mine (shard
            # indexing, per-dimension pair partials, Louvain), so the
            # process executor pays its spawn cost once per mine.
            with JobPool(workers=workers, executor=executor) as pool:
                return mine_sharded(
                    self,
                    trace,
                    whois,
                    config,
                    cache,
                    span,
                    pool,
                    boundaries=shard_boundaries,
                    spill_dir=spill_dir,
                    partitions=partitions,
                    store_root=store_root,
                    trace_name=trace_name,
                )
        with recorder.span("pipeline.mine.preprocess") as pre_span:
            prepared, report = preprocess(trace, config.preprocess)
        if recorder.enabled:
            pre_span.set(
                raw_requests=report.raw_requests,
                kept_requests=report.kept_requests,
                raw_servers=report.raw_servers,
                kept_servers=report.kept_servers,
                popular_servers_removed=report.popular_servers_removed,
            )

        clients_by_server = prepared.clients_by_server
        single_client_servers = {
            server
            for server, clients in clients_by_server.items()
            if len(clients) == 1
        }
        # Multi-client restriction of the two main-dimension indices,
        # derived by dropping the single-client servers: a server-level
        # filter cannot change a surviving server's client set, so this
        # equals (and replaces) materialising a filtered trace.
        multi_clients_by_server = {
            server: clients
            for server, clients in clients_by_server.items()
            if server not in single_client_servers
        }
        multi_servers_by_client: dict[str, frozenset[str]] = {}
        for client, servers in prepared.servers_by_client.items():
            surviving = servers - single_client_servers
            if surviving:
                multi_servers_by_client[client] = (
                    servers if len(surviving) == len(servers) else surviving
                )
        # Under the thread executor, materialise the shared indices before
        # fanning out so workers read (not race to build) the cached
        # dicts.  Serial and process runs skip this: serial builds lazily
        # in order, and process workers re-derive the indices anyway
        # because HttpTrace pickles without its caches.  (`prepared`'s
        # set-valued indices were already built by `clients_by_server`
        # above; the file index is built separately because it is the
        # only one that parses URIs.)
        if executor == "thread" and resolve_workers(workers) > 1:
            _ = prepared.files_by_server

        dimensions = (MAIN_DIMENSION, *config.enabled_secondary_dimensions)
        signatures: dict[str, str] = {}
        reused: dict[str, MiningOutcome | None] = {}
        to_mine: list[str] = []
        if cache is None:
            to_mine = list(dimensions)
        else:
            for dimension in dimensions:
                try:
                    signer = DIMENSION_SIGNATURES[dimension]
                except KeyError:
                    raise PipelineError(
                        f"dimension {dimension!r} has no entry in "
                        f"DIMENSION_SIGNATURES; register one to make it cacheable"
                    ) from None
                signatures[dimension] = signer(prepared, whois, config)
                hit, outcome = cache.lookup(dimension, signatures[dimension])
                if hit:
                    reused[dimension] = outcome
                else:
                    to_mine.append(dimension)

        # The recorder never ships to workers: it may not survive process
        # pickling, and worker-side recordings would be lost anyway.  Jobs
        # measure their own wall time instead (``_timed_job``).
        job_config = config if config.metrics is None else config.replace(metrics=None)
        jobs = []
        for dimension in to_mine:
            if dimension == MAIN_DIMENSION:
                jobs.append(
                    partial(
                        _mine_main_dimension,
                        multi_clients_by_server,
                        multi_servers_by_client,
                        single_client_servers,
                        clients_by_server,
                        job_config,
                    )
                )
            else:
                jobs.append(
                    partial(
                        _mine_secondary_dimension, dimension, prepared, whois, job_config
                    )
                )
        with JobPool(workers=workers, executor=executor) as pool:
            if recorder.enabled and jobs:
                timed = pool.run([partial(_timed_job, job) for job in jobs])
                outcomes = [outcome for outcome, _ in timed]
                for dimension, (outcome, seconds) in zip(to_mine, timed):
                    _record_dimension(recorder, dimension, outcome, seconds)
            else:
                outcomes = pool.run(jobs) if jobs else []
        mined_now: dict[str, MiningOutcome | None] = dict(zip(to_mine, outcomes))

        if cache is not None:
            for dimension in to_mine:
                cache.update(dimension, signatures[dimension], mined_now[dimension])
            cache.last_reused = tuple(d for d in dimensions if d in reused)
            cache.last_mined = tuple(to_mine)

        main = (
            reused[MAIN_DIMENSION]
            if MAIN_DIMENSION in reused
            else mined_now[MAIN_DIMENSION]
        )
        assert main is not None  # the main-dimension job never returns None
        secondary: dict[str, MiningOutcome] = {}
        for dimension in config.enabled_secondary_dimensions:
            outcome = (
                reused[dimension] if dimension in reused else mined_now[dimension]
            )
            if outcome is not None:
                secondary[dimension] = outcome
        if recorder.enabled:
            span.set(
                requests=report.kept_requests,
                servers=report.kept_servers,
                mined_dimensions=list(to_mine),
                reused_dimensions=[d for d in dimensions if d in reused],
            )
        return MinedDimensions(
            trace=prepared,
            preprocess_report=report,
            main=main,
            secondary=secondary,
            # One interning of the namespace serves every finish() call
            # (run_sweep re-correlates at several thresholds).
            interner=Interner(clients_by_server),
        )

    # -- stages 3-5: correlate, prune, infer ----------------------------------------

    def finish(
        self,
        mined: MinedDimensions,
        redirects: RedirectOracle | None = None,
        thresh: float | None = None,
    ) -> SmashResult:
        """Correlation, pruning and campaign inference on mined herds.

        The three stages run on interned server ids; labels reappear only
        here, when the :class:`~repro.core.results.SmashResult` is
        assembled (the results boundary).
        """
        with self.metrics.span("pipeline.finish", metric="smash_finish_seconds") as span:
            return self._finish(mined, redirects, thresh, span)

    def _finish(
        self,
        mined: MinedDimensions,
        redirects: RedirectOracle | None,
        thresh: float | None,
        span,
    ) -> SmashResult:
        config = self.config
        recorder = self.metrics
        interner = mined.interner or Interner(mined.trace.clients_by_server)
        with recorder.span("pipeline.finish.correlate") as correlate_span:
            encoded = correlate_ids(
                mined.main, mined.secondary, interner, config.correlation, thresh=thresh
            )
        if config.pruning.prune_referrer_groups:
            referrer_of = mined.stage_cache.get("dominant_referrers")
            if referrer_of is None:
                referrer_of = dominant_referrers(mined.trace)
                mined.stage_cache["dominant_referrers"] = referrer_of
        else:
            referrer_of = {}
        with recorder.span("pipeline.finish.prune") as prune_span:
            pruned, encoded_report = prune_ashes_ids(
                encoded.candidate_ashes,
                mined.trace,
                interner,
                redirects,
                config.pruning,
                referrer_of=referrer_of,
            )
        with recorder.span("pipeline.finish.infer") as infer_span:
            campaigns = infer_campaigns_ids(
                pruned,
                mined.trace,
                encoded.scores,
                encoded.contributions,
                interner,
                encoded_report,
            )
        if recorder.enabled:
            correlate_span.set(candidate_ashes=len(encoded.candidate_ashes))
            prune_span.set(pruned_ashes=len(pruned))
            infer_span.set(campaigns=len(campaigns))
            span.set(campaigns=len(campaigns))
        herds_by_dimension = {MAIN_DIMENSION: mined.main.herds}
        for dimension, mining in mined.secondary.items():
            herds_by_dimension[dimension] = mining.herds
        label_of = interner.label_of
        return SmashResult(
            herds_by_dimension=herds_by_dimension,
            scores={
                label_of(server_id): score
                for server_id, score in encoded.scores.items()
            },
            contributions={
                label_of(server_id): dict(per_dim)
                for server_id, per_dim in encoded.contributions.items()
            },
            candidate_ashes=tuple(
                CandidateAsh(
                    main_index=main_index,
                    secondary_dimension=dimension,
                    secondary_index=secondary_index,
                    servers=interner.decode_set(members),
                )
                for main_index, dimension, secondary_index, members in pruned
            ),
            campaigns=campaigns,
            prune_report=encoded_report.decode(interner),
            main_dimension_dropped=mined.main.dropped,
        )

    # -- one-shot and sweep APIs -------------------------------------------------------

    def run(
        self,
        trace: HttpTrace,
        whois: WhoisRegistry | None = None,
        redirects: RedirectOracle | None = None,
        thresh: float | None = None,
    ) -> SmashResult:
        """Full pipeline at one threshold (default: the configured one)."""
        mined = self.mine(trace, whois)
        return self.finish(mined, redirects, thresh=thresh)

    def run_sweep(
        self,
        trace: HttpTrace,
        thresholds: tuple[float, ...],
        whois: WhoisRegistry | None = None,
        redirects: RedirectOracle | None = None,
    ) -> dict[float, SmashResult]:
        """Run the pipeline once, then re-correlate at each threshold.

        Mining dominates the cost and is threshold-independent, so the
        Table II/III sweeps reuse it.
        """
        mined = self.mine(trace, whois)
        return {
            threshold: self.finish(mined, redirects, thresh=threshold)
            for threshold in thresholds
        }
