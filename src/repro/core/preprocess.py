"""Traffic preprocessing (Section III-A).

Two reductions:

1. **Second-level-domain aggregation** — all FQDNs sharing a registrable
   domain become one server ("a.xyz.com and b.xyz.com both belong to
   xyz.com"); IP-literal servers pass through unchanged.
2. **IDF popularity filter** — servers contacted by more clients than the
   IDF threshold (Appendix A: 200) are globally popular and removed.
   Popularity is measured *after* aggregation, so a CDN's combined client
   base counts against its one aggregated name.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import PreprocessConfig
from repro.domains.names import normalize_server_name
from repro.domains.publicsuffix import PublicSuffixList
from repro.httplog.trace import HttpTrace


@dataclass(frozen=True)
class PreprocessReport:
    """Volume accounting of the two reduction steps."""

    raw_servers: int
    aggregated_servers: int
    popular_servers_removed: int
    kept_servers: int
    raw_requests: int
    kept_requests: int

    @property
    def aggregation_reduction(self) -> float:
        """Fraction of servers removed by SLD aggregation (paper: ~60%)."""
        if self.raw_servers == 0:
            return 0.0
        return 1.0 - self.aggregated_servers / self.raw_servers

    @property
    def traffic_reduction(self) -> float:
        """Fraction of requests removed overall (paper: ~58.6%)."""
        if self.raw_requests == 0:
            return 0.0
        return 1.0 - self.kept_requests / self.raw_requests


def aggregate_trace(trace: HttpTrace, psl: PublicSuffixList | None = None) -> HttpTrace:
    """Rename every host in *trace* to its aggregated server name.

    Equivalent to ``trace.map_hosts(normalize_server_name)`` with a
    per-distinct-host cache, inlined because this runs once per request
    of every ingested day.
    """
    cache: dict[str, str] = {}
    renamed = []
    append = renamed.append
    for request in trace.requests:
        host = request.host
        new_host = cache.get(host)
        if new_host is None:
            new_host = normalize_server_name(host, psl)
            cache[host] = new_host
        append(request if new_host == host else request.with_host(new_host))
    return HttpTrace(renamed, name=f"{trace.name}:aggregated")


def preprocess(
    trace: HttpTrace,
    config: PreprocessConfig | None = None,
    psl: PublicSuffixList | None = None,
) -> tuple[HttpTrace, PreprocessReport]:
    """Apply both preprocessing steps; returns the reduced trace + report."""
    config = config or PreprocessConfig()
    config.validate()

    raw_servers = len(trace.servers)
    raw_requests = len(trace)
    aggregated = aggregate_trace(trace, psl) if config.aggregate_second_level else trace
    aggregated_servers = len(aggregated.servers)

    counts = aggregated.client_counts()
    popular = {
        server
        for server, count in counts.items()
        if count > config.idf_threshold
    }
    too_rare = {
        server
        for server, count in counts.items()
        if count < config.min_clients
    }
    removed = popular | too_rare
    kept = aggregated.filter_servers(
        lambda server: server not in removed,
        name=f"{trace.name}:preprocessed",
    )
    report = PreprocessReport(
        raw_servers=raw_servers,
        aggregated_servers=aggregated_servers,
        popular_servers_removed=len(popular),
        kept_servers=len(kept.servers),
        raw_requests=raw_requests,
        kept_requests=len(kept),
    )
    return kept, report


def idf_distribution(trace: HttpTrace) -> dict[str, int]:
    """Server -> client count, the Figure-9 (Appendix A) distribution.

    Computed on the aggregated trace so the threshold discussion matches
    what the filter actually sees.
    """
    return trace.client_counts()
