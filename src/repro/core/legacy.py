"""Frozen pre-interning (PR 1-4 era) label-path mining core.

This module is a verbatim snapshot of the mining core as it stood before
the interned-ID rewrite: string server labels flow through candidate
generation (``itertools.combinations`` per sharing group), graph
construction, the Louvain bridge (re-index + re-sort on every call),
correlation (subgraph materialisation per density), pruning (uncached
referrer normalisation) and inference.

It exists for two reasons, both load-bearing:

* **equivalence tests** — the interned core must produce byte-identical
  results; ``tests/test_interned_equivalence.py`` runs both cores on the
  same traces and compares the full result documents;
* **the scaling benchmark** — ``repro.eval.bench.mine_scaling`` times
  :class:`LegacyPipeline` against :class:`~repro.core.pipeline.SmashPipeline`
  on the same machine, so the before/after speedup in ``BENCH_mine.json``
  is measured, not asserted.

Nothing in the live pipeline imports this module.  Do not "fix" or
optimise it: its value is that it stays exactly what the pre-refactor
core computed.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from itertools import combinations
from urllib.parse import urlparse

from repro.config import DimensionConfig, LouvainConfig, PreprocessConfig, SmashConfig
from repro.core.ashmining import MiningOutcome
from repro.core.pipeline import (
    MAIN_DIMENSION,
    MinedDimensions,
    _append_single_client_herds,
)
from repro.core.preprocess import PreprocessReport
from repro.core.results import Campaign, CandidateAsh, Herd, PruneReport, SmashResult
from repro.errors import PipelineError
from repro.httplog.records import HttpRequest
from repro.graph.louvain import LouvainResult
from repro.graph.modularity import modularity
from repro.graph.wgraph import WeightedGraph, canonical_nodes
from repro.httplog.trace import HttpTrace
from repro.synth.oracles import RedirectOracle
from repro.util.rng import make_rng
from repro.util.text import charset_cosine, overlap_ratio_product
from repro.whois.record import WhoisRecord
from repro.whois.registry import WhoisRegistry

#: Pre-refactor Whois posting-list cap (see whoisdim._MAX_POSTING_LIST).
_MAX_POSTING_LIST = 150


# -- pre-refactor Louvain (re-index + re-sort bridge, original local move) ---------


class _LegacyLevel:
    """One coarsening level, exactly as the pre-interning implementation."""

    def __init__(self, adjacency: list[dict[int, float]], loops: list[float]) -> None:
        self.adjacency = adjacency
        self.loops = loops
        self.n = len(adjacency)
        self.degree = [
            sum(neigh.values()) + 2.0 * loops[i] for i, neigh in enumerate(adjacency)
        ]
        self.total_weight = (
            sum(sum(neigh.values()) for neigh in adjacency) / 2.0 + sum(loops)
        )
        self.community = list(range(self.n))
        self.community_degree = list(self.degree)

    def neighbor_community_weights(self, node: int) -> dict[int, float]:
        weights: dict[int, float] = defaultdict(float)
        for neighbor, weight in self.adjacency[node].items():
            weights[self.community[neighbor]] += weight
        return weights


def _legacy_local_move(level: _LegacyLevel, config: LouvainConfig, rng) -> bool:
    m2 = 2.0 * level.total_weight
    if m2 == 0.0:
        return False
    moved_any = False
    order = list(range(level.n))
    for _ in range(config.max_sweeps):
        rng.shuffle(order)
        moved_this_sweep = False
        for node in order:
            current = level.community[node]
            degree = level.degree[node]
            neighbor_weights = level.neighbor_community_weights(node)
            level.community_degree[current] -= degree
            weight_to_current = neighbor_weights.get(current, 0.0)
            best_community = current
            best_gain = 0.0
            for community, weight_to in neighbor_weights.items():
                if community == current:
                    gain = 0.0
                else:
                    gain = (weight_to - weight_to_current) / level.total_weight - (
                        degree
                        * (
                            level.community_degree[community]
                            - level.community_degree[current]
                        )
                    ) / (m2 * level.total_weight)
                if gain > best_gain + config.min_modularity_gain:
                    best_gain = gain
                    best_community = community
            level.community[node] = best_community
            level.community_degree[best_community] += degree
            if best_community != current:
                moved_this_sweep = True
                moved_any = True
        if not moved_this_sweep:
            break
    return moved_any


def _legacy_aggregate(level: _LegacyLevel) -> tuple[_LegacyLevel, list[int]]:
    labels = sorted(set(level.community))
    relabel = {label: index for index, label in enumerate(labels)}
    mapping = [relabel[c] for c in level.community]
    n_coarse = len(labels)
    adjacency: list[dict[int, float]] = [defaultdict(float) for _ in range(n_coarse)]
    loops = [0.0] * n_coarse
    for node in range(level.n):
        cu = mapping[node]
        loops[cu] += level.loops[node]
        for neighbor, weight in level.adjacency[node].items():
            cv = mapping[neighbor]
            if cu == cv:
                if node < neighbor:
                    loops[cu] += weight
            else:
                adjacency[cu][cv] += weight
    coarse = _LegacyLevel([dict(sorted(neigh.items())) for neigh in adjacency], loops)
    return coarse, mapping


def legacy_louvain(
    graph: WeightedGraph, config: LouvainConfig | None = None
) -> LouvainResult:
    """Louvain exactly as the pre-interning core ran it.

    Always takes the original bridge: canonical node re-sort, edge
    re-accumulation, and a per-level adjacency sort — the work the
    integer-indexed backend now avoids — with the original (unhoisted)
    local-move loop.
    """
    config = config or LouvainConfig()
    config.validate()
    rng = make_rng(config.seed)

    nodes = canonical_nodes(graph.nodes)
    if not nodes:
        return LouvainResult(communities=(), partition={}, modularity=0.0, levels=0)
    index_of = {node: i for i, node in enumerate(nodes)}

    adjacency: list[dict[int, float]] = [{} for _ in nodes]
    loops = [0.0] * len(nodes)
    for u, v, weight in graph.edges():
        if weight <= 0.0:
            continue
        if u == v:
            loops[index_of[u]] += weight
        else:
            iu, iv = index_of[u], index_of[v]
            adjacency[iu][iv] = adjacency[iu].get(iv, 0.0) + weight
            adjacency[iv][iu] = adjacency[iv].get(iu, 0.0) + weight
    adjacency = [dict(sorted(neigh.items())) for neigh in adjacency]

    level = _LegacyLevel(adjacency, loops)
    membership = list(range(len(nodes)))

    levels_run = 0
    for _ in range(config.max_levels):
        moved = _legacy_local_move(level, config, rng)
        levels_run += 1
        coarse, mapping = _legacy_aggregate(level)
        membership = [mapping[m] for m in membership]
        if not moved or coarse.n == level.n:
            level = coarse
            break
        level = coarse

    groups: dict[int, list] = defaultdict(list)
    for original_index, community in enumerate(membership):
        groups[community].append(nodes[original_index])
    community_sets = sorted(
        (frozenset(members) for members in groups.values()),
        key=lambda s: (-len(s), min(repr(x) for x in s)),
    )
    partition = {
        node: index
        for index, community in enumerate(community_sets)
        for node in community
    }
    q = modularity(graph, partition)
    return LouvainResult(
        communities=tuple(community_sets),
        partition=partition,
        modularity=q,
        levels=levels_run,
    )


# -- pre-refactor trace indexing and preprocessing ---------------------------------
#
# The interned rewrite also touched the substrate: HttpTrace now builds
# its indices in segments with a distinct-URI parse cache, filtered
# traces derive their indices from the parent's, and normalisation
# screens IP literals cheaply.  The pre-refactor core paid for none of
# that, so the legacy pipeline reproduces the old behaviour — one
# monolithic index pass per trace (URI parse per request), a fresh
# index build after every filter, and exception-driven IP detection —
# by injecting old-style-built indices into the traces it creates.
# The injected values are identical to what lazy builds would produce;
# only the cost is the pre-refactor cost.


def _legacy_build_all_indices(trace: HttpTrace) -> None:
    from collections import defaultdict as dd

    clients: dict[str, set[str]] = dd(set)
    files: dict[str, set[str]] = dd(set)
    ips: dict[str, set[str]] = dd(set)
    per_server: dict[str, list[HttpRequest]] = dd(list)
    servers_of: dict[str, set[str]] = dd(set)
    for request in trace.requests:
        clients[request.host].add(request.client)
        files[request.host].add(request.uri_file)
        ips[request.host].add(request.server_ip)
        per_server[request.host].append(request)
        servers_of[request.client].add(request.host)
    trace._clients_by_server = {s: frozenset(v) for s, v in clients.items()}
    trace._files_by_server = {s: frozenset(v) for s, v in files.items()}
    trace._ips_by_server = {s: frozenset(v) for s, v in ips.items()}
    trace._requests_by_server = {s: tuple(v) for s, v in per_server.items()}
    trace._servers_by_client = {c: frozenset(v) for c, v in servers_of.items()}
    trace._servers = frozenset(trace._clients_by_server)


def _legacy_aggregate_trace(trace: HttpTrace) -> HttpTrace:
    cache: dict[str, str] = {}

    def rename(host: str) -> str:
        if host not in cache:
            cache[host] = _legacy_normalize_server_name(host)
        return cache[host]

    renamed = []
    for request in trace.requests:
        new_host = rename(request.host)
        if new_host == request.host:
            renamed.append(request)
        else:
            renamed.append(
                HttpRequest(
                    timestamp=request.timestamp,
                    client=request.client,
                    host=new_host,
                    server_ip=request.server_ip,
                    uri=request.uri,
                    user_agent=request.user_agent,
                    referrer=request.referrer,
                    status=request.status,
                    method=request.method,
                )
            )
    return HttpTrace(renamed, name=f"{trace.name}:aggregated")


def _legacy_filter_servers(trace: HttpTrace, keep, name: str) -> HttpTrace:
    filtered = HttpTrace(
        [request for request in trace.requests if keep(request.host)], name=name
    )
    _legacy_build_all_indices(filtered)
    return filtered


def legacy_preprocess(
    trace: HttpTrace, config: PreprocessConfig | None = None
) -> tuple[HttpTrace, PreprocessReport]:
    config = config or PreprocessConfig()
    config.validate()

    _legacy_build_all_indices(trace)
    raw_servers = len(trace.servers)
    raw_requests = len(trace)
    aggregated = (
        _legacy_aggregate_trace(trace) if config.aggregate_second_level else trace
    )
    if config.aggregate_second_level:
        _legacy_build_all_indices(aggregated)
    aggregated_servers = len(aggregated.servers)

    counts = aggregated.client_counts()
    popular = {
        server for server, count in counts.items() if count > config.idf_threshold
    }
    too_rare = {
        server for server, count in counts.items() if count < config.min_clients
    }
    removed = popular | too_rare
    kept = _legacy_filter_servers(
        aggregated,
        lambda server: server not in removed,
        name=f"{trace.name}:preprocessed",
    )
    report = PreprocessReport(
        raw_servers=raw_servers,
        aggregated_servers=aggregated_servers,
        popular_servers_removed=len(popular),
        kept_servers=len(kept.servers),
        raw_requests=raw_requests,
        kept_requests=len(kept),
    )
    return kept, report


# -- pre-refactor dimension builders -----------------------------------------------


def legacy_build_client_graph(
    trace: HttpTrace, config: DimensionConfig | None = None
) -> WeightedGraph:
    config = config or DimensionConfig()
    clients_by_server = trace.clients_by_server
    graph = WeightedGraph()
    for server in sorted(clients_by_server):
        graph.add_node(server)

    pair_common: Counter[tuple[str, str]] = Counter()
    for servers in trace.servers_by_client.values():
        members = sorted(servers)
        for i, first in enumerate(members):
            for second in members[i + 1 :]:
                pair_common[(first, second)] += 1

    floor = max(config.min_edge_weight, config.client_min_edge_weight)
    for (first, second), common in sorted(pair_common.items()):
        weight = (common / len(clients_by_server[first])) * (
            common / len(clients_by_server[second])
        )
        if weight >= floor:
            graph.add_edge(first, second, weight)
    return graph


def legacy_build_ipset_graph(
    trace: HttpTrace, config: DimensionConfig | None = None
) -> WeightedGraph:
    config = config or DimensionConfig()
    ips_by_server = trace.ips_by_server
    graph = WeightedGraph()
    for server in sorted(ips_by_server):
        graph.add_node(server)

    servers_by_ip: dict[str, set[str]] = defaultdict(set)
    for server, ips in ips_by_server.items():
        for ip in ips:
            servers_by_ip[ip].add(server)

    candidates: set[tuple[str, str]] = set()
    for servers in servers_by_ip.values():
        if len(servers) < 2:
            continue
        candidates.update(combinations(sorted(servers), 2))

    for first, second in sorted(candidates):
        weight = overlap_ratio_product(ips_by_server[first], ips_by_server[second])
        if weight >= config.min_edge_weight:
            graph.add_edge(first, second, weight)
    return graph


def legacy_build_urifile_graph(
    trace: HttpTrace, config: DimensionConfig | None = None
) -> WeightedGraph:
    from repro.core.dimensions.urifile import file_similarity

    config = config or DimensionConfig()
    files_by_server = trace.files_by_server
    num_servers = len(files_by_server)
    graph = WeightedGraph()
    for server in sorted(files_by_server):
        graph.add_node(server)
    if num_servers < 2:
        return graph

    server_count_of_file: dict[str, int] = defaultdict(int)
    for files in files_by_server.values():
        for filename in files:
            server_count_of_file[filename] += 1
    max_servers = config.max_file_server_fraction * num_servers
    ubiquitous = {
        filename for filename, count in server_count_of_file.items() if count > max_servers
    }

    effective: dict[str, frozenset[str]] = {
        server: frozenset(f for f in files if f not in ubiquitous)
        for server, files in files_by_server.items()
    }

    cutoff = config.filename_length_cutoff
    servers_by_file: dict[str, set[str]] = defaultdict(set)
    for server, files in effective.items():
        for filename in files:
            if len(filename) <= cutoff:
                servers_by_file[filename].add(server)

    candidates: set[tuple[str, str]] = set()
    for servers in servers_by_file.values():
        if len(servers) < 2:
            continue
        for pair in combinations(sorted(servers), 2):
            candidates.add(pair)

    long_names: dict[str, set[str]] = defaultdict(set)
    for server, files in effective.items():
        for filename in files:
            if len(filename) > cutoff:
                long_names[filename].add(server)
    names = sorted(long_names)
    parent = {name: name for name in names}

    def find(name: str) -> str:
        while parent[name] != name:
            parent[name] = parent[parent[name]]
            name = parent[name]
        return name

    for first, second in combinations(names, 2):
        if charset_cosine(first, second) > config.filename_cosine_threshold:
            parent[find(first)] = find(second)
    families: dict[str, set[str]] = defaultdict(set)
    for name in names:
        families[find(name)] |= long_names[name]
    for servers in families.values():
        if len(servers) < 2:
            continue
        for pair in combinations(sorted(servers), 2):
            candidates.add(pair)

    for first, second in sorted(candidates):
        weight = file_similarity(effective[first], effective[second], config)
        if weight >= config.min_edge_weight:
            graph.add_edge(first, second, weight)
    return graph


def legacy_build_whois_graph(
    trace: HttpTrace,
    whois: WhoisRegistry,
    config: DimensionConfig | None = None,
) -> WeightedGraph:
    from repro.core.dimensions.whoisdim import comparable_fields, whois_similarity

    config = config or DimensionConfig()
    graph = WeightedGraph()
    records: dict[str, WhoisRecord] = {}
    for server in sorted(trace.servers):
        graph.add_node(server)
        record = whois.lookup(server)
        if record is not None:
            records[server] = record

    postings: dict[tuple[str, object], set[str]] = defaultdict(set)
    for server, record in records.items():
        for field_name, value in comparable_fields(record).items():
            postings[(field_name, value)].add(server)

    candidates: set[tuple[str, str]] = set()
    for servers in postings.values():
        if len(servers) < 2 or len(servers) > _MAX_POSTING_LIST:
            continue
        for pair in combinations(sorted(servers), 2):
            candidates.add(pair)

    for first, second in sorted(candidates):
        weight = whois_similarity(records[first], records[second], config)
        if weight >= max(config.min_edge_weight, 1e-12):
            graph.add_edge(first, second, weight)
    return graph


def legacy_build_urlparam_graph(
    trace: HttpTrace, config: DimensionConfig | None = None
) -> WeightedGraph:
    from repro.core.dimensions.urlparam import parameter_patterns_by_server

    config = config or DimensionConfig()
    patterns_of = parameter_patterns_by_server(trace)
    graph = WeightedGraph()
    for server in sorted(trace.servers):
        graph.add_node(server)
    num_servers = len(trace.servers)
    if num_servers < 2:
        return graph

    servers_by_pattern: dict[tuple[str, ...], set[str]] = defaultdict(set)
    for server, patterns in patterns_of.items():
        for pattern in patterns:
            servers_by_pattern[pattern].add(server)

    max_servers = config.max_file_server_fraction * num_servers
    candidates: set[tuple[str, str]] = set()
    for servers in servers_by_pattern.values():
        if len(servers) < 2 or len(servers) > max_servers:
            continue
        for pair in combinations(sorted(servers), 2):
            candidates.add(pair)

    for first, second in sorted(candidates):
        weight = overlap_ratio_product(patterns_of[first], patterns_of[second])
        if weight >= config.min_edge_weight:
            graph.add_edge(first, second, weight)
    return graph


def legacy_build_time_graph(
    trace: HttpTrace,
    config: DimensionConfig | None = None,
) -> WeightedGraph:
    from repro.core.dimensions.timedim import active_windows_by_server

    config = config or DimensionConfig()
    windows_of = active_windows_by_server(trace)
    graph = WeightedGraph()
    for server in sorted(trace.servers):
        graph.add_node(server)
    num_servers = len(trace.servers)
    if num_servers < 2:
        return graph

    servers_by_window: dict[int, set[str]] = defaultdict(set)
    for server, windows in windows_of.items():
        for window in windows:
            servers_by_window[window].add(server)

    max_servers = config.max_file_server_fraction * num_servers
    candidates: set[tuple[str, str]] = set()
    for servers in servers_by_window.values():
        if len(servers) < 2 or len(servers) > max_servers:
            continue
        for pair in combinations(sorted(servers), 2):
            candidates.add(pair)

    for first, second in sorted(candidates):
        weight = overlap_ratio_product(windows_of[first], windows_of[second])
        if weight >= config.min_edge_weight:
            graph.add_edge(first, second, weight)
    return graph


# -- pre-refactor ASH mining (subgraph-per-herd densities) -------------------------


def _legacy_refine_community(
    graph: WeightedGraph,
    community: frozenset,
    config: LouvainConfig,
    depth: int,
) -> list[frozenset]:
    if depth >= config.max_refine_depth or len(community) <= config.min_refine_size:
        return [community]
    subgraph = graph.subgraph(community)
    if subgraph.density() >= config.refine_density_stop:
        return [community]
    local = legacy_louvain(subgraph, config)
    non_trivial = [c for c in local.communities if len(c) >= 1]
    if len(non_trivial) <= 1 or local.modularity <= config.refine_min_modularity:
        return [community]
    refined: list[frozenset] = []
    for part in non_trivial:
        refined.extend(_legacy_refine_community(graph, part, config, depth + 1))
    return refined


def legacy_mine_herds(
    graph: WeightedGraph,
    dimension: str,
    config: LouvainConfig | None = None,
) -> MiningOutcome:
    config = config or LouvainConfig()
    result = legacy_louvain(graph, config)
    communities: list[frozenset] = list(result.communities)
    if config.refine:
        refined: list[frozenset] = []
        for community in communities:
            refined.extend(_legacy_refine_community(graph, community, config, 0))
        communities = refined
    herds: list[Herd] = []
    dropped: list[str] = []
    index = 0
    for community in communities:
        if len(community) < 2:
            dropped.extend(community)
            continue
        subgraph = graph.subgraph(community)
        herds.append(
            Herd(
                dimension=dimension,
                index=index,
                servers=frozenset(community),
                density=subgraph.density(),
            )
        )
        index += 1
    return MiningOutcome(
        herds=tuple(herds),
        dropped=frozenset(dropped),
        modularity=result.modularity,
        graph=graph,
    )


# -- pre-refactor correlation ------------------------------------------------------


def legacy_correlate(
    main: MiningOutcome,
    secondary: dict[str, MiningOutcome],
    config,
    thresh: float | None = None,
):
    from repro.core.correlation import CorrelationOutcome, phi

    config.validate()
    threshold = config.thresh if thresh is None else thresh

    secondary_herd_of = {
        dimension: outcome.herd_of() for dimension, outcome in secondary.items()
    }

    scores: dict[str, float] = {}
    contributions: dict[str, dict[str, float]] = {}
    intersections: dict[tuple[int, str, int], set[str]] = {}
    density_cache: dict[tuple[int, str, int], tuple[float, float]] = {}

    def intersection_densities(key, overlap, dimension):
        if key not in density_cache:
            if len(overlap) == 1:
                density_cache[key] = (1.0, 1.0)
            else:
                sec_density = secondary[dimension].graph.subgraph(overlap).density()
                main_density = main.graph.subgraph(overlap).density()
                density_cache[key] = (sec_density, main_density)
        return density_cache[key]

    for main_herd in main.herds:
        for server in sorted(main_herd.servers):
            per_dim: dict[str, float] = {}
            for dimension, herd_of in secondary_herd_of.items():
                sec_herd = herd_of.get(server)
                if sec_herd is None:
                    continue
                overlap = main_herd.servers & sec_herd.servers
                if not overlap:
                    continue
                key = (main_herd.index, dimension, sec_herd.index)
                sec_density, main_density = intersection_densities(
                    key, frozenset(overlap), dimension
                )
                contribution = (
                    sec_density * main_density * phi(len(overlap), config.mu, config.sigma)
                )
                if contribution <= 0.0:
                    continue
                per_dim[dimension] = contribution
                intersections.setdefault(key, set()).update(overlap)
            if per_dim:
                scores[server] = sum(per_dim.values())
                contributions[server] = per_dim

    surviving = {server for server, score in scores.items() if score >= threshold}

    ashes: list[CandidateAsh] = []
    for (main_index, dimension, secondary_index), servers in sorted(intersections.items()):
        kept = frozenset(servers & surviving)
        if len(kept) >= 2:
            ashes.append(
                CandidateAsh(
                    main_index=main_index,
                    secondary_dimension=dimension,
                    secondary_index=secondary_index,
                    servers=kept,
                )
            )
    return CorrelationOutcome(
        scores=scores,
        contributions=contributions,
        candidate_ashes=tuple(ashes),
    )


# -- pre-refactor pruning (uncached referrer normalisation) ------------------------


def _legacy_is_ip_address(server: str) -> bool:
    """Pre-refactor IP check: let ``ipaddress`` raise on every domain."""
    import ipaddress

    try:
        ipaddress.ip_address(server)
    except ValueError:
        return False
    return True


def _legacy_normalize_server_name(server: str) -> str:
    """Pre-refactor normalisation (slow-path IP detection included)."""
    from repro.domains.names import second_level_domain

    cleaned = server.strip().lower()
    if not cleaned:
        raise ValueError("empty server name")
    if _legacy_is_ip_address(cleaned):
        return cleaned
    return second_level_domain(cleaned)


def _legacy_referrer_host(referrer: str) -> str | None:
    if not referrer:
        return None
    parsed = urlparse(referrer if "//" in referrer else f"http://{referrer}")
    host = parsed.netloc.split(":")[0]
    if not host:
        return None
    try:
        return _legacy_normalize_server_name(host)
    except ValueError:
        return None


def _legacy_dominant_referrers(trace: HttpTrace) -> dict[str, str]:
    referrers_of: dict[str, Counter[str]] = defaultdict(Counter)
    totals: Counter[str] = Counter()
    for request in trace:
        landing = _legacy_referrer_host(request.referrer)
        server = request.host
        totals[server] += 1
        if landing is not None and landing != server:
            referrers_of[server][landing] += 1
    dominant: dict[str, str] = {}
    for server, counts in referrers_of.items():
        landing, hits = counts.most_common(1)[0]
        if hits * 2 > totals[server]:
            dominant[server] = landing
    return dominant


def legacy_prune_ashes(
    ashes: tuple[CandidateAsh, ...],
    trace: HttpTrace,
    redirects: RedirectOracle | None = None,
    config=None,
) -> tuple[tuple[CandidateAsh, ...], PruneReport]:
    from repro.config import PruningConfig

    config = config or PruningConfig()
    config.validate()
    redirect_oracle = redirects or RedirectOracle()
    referrer_of = _legacy_dominant_referrers(trace) if config.prune_referrer_groups else {}

    redirection_replacements: dict[str, str] = {}
    referrer_replacements: dict[str, str] = {}
    kept: list[CandidateAsh] = []
    dropped = 0

    for ash in ashes:
        members: set[str] = set()
        for server in sorted(ash.servers):
            replacement = server
            if config.prune_redirection_groups:
                landing = redirect_oracle.landing_server(server)
                if landing is not None and landing != server:
                    redirection_replacements[server] = landing
                    replacement = landing
            if replacement == server and server in referrer_of:
                landing = referrer_of[server]
                referrer_replacements[server] = landing
                replacement = landing
            members.add(replacement)
        if len(members) >= 2:
            kept.append(
                CandidateAsh(
                    main_index=ash.main_index,
                    secondary_dimension=ash.secondary_dimension,
                    secondary_index=ash.secondary_index,
                    servers=frozenset(members),
                )
            )
        else:
            dropped += 1

    report = PruneReport(
        redirection_replacements=redirection_replacements,
        referrer_replacements=referrer_replacements,
        dropped_ashes=dropped,
    )
    return tuple(kept), report


# -- pre-refactor inference --------------------------------------------------------


def legacy_infer_campaigns(
    ashes: tuple[CandidateAsh, ...],
    main: MiningOutcome,
    trace: HttpTrace,
    scores: dict[str, float],
    contributions: dict[str, dict[str, float]],
    prune_report: PruneReport | None = None,
) -> tuple[Campaign, ...]:
    by_main: dict[int, set[str]] = defaultdict(set)
    for ash in ashes:
        by_main[ash.main_index].update(ash.servers)

    replacements: dict[str, str] = {}
    if prune_report is not None:
        replacements.update(prune_report.redirection_replacements)
        replacements.update(prune_report.referrer_replacements)

    clients_by_server = trace.clients_by_server
    campaigns: list[Campaign] = []
    for campaign_id, main_index in enumerate(sorted(by_main)):
        servers = frozenset(by_main[main_index])
        clients: set[str] = set()
        for server in servers:
            clients |= clients_by_server.get(server, frozenset())
        campaigns.append(
            Campaign(
                campaign_id=campaign_id,
                main_index=main_index,
                servers=servers,
                clients=frozenset(clients),
                server_scores={
                    server: scores[server] for server in sorted(servers) if server in scores
                },
                contributions={
                    server: dict(contributions[server])
                    for server in sorted(servers)
                    if server in contributions
                },
                replaced_servers={
                    replaced: landing
                    for replaced, landing in replacements.items()
                    if landing in servers
                },
            )
        )
    return tuple(campaigns)


# -- the frozen pipeline -----------------------------------------------------------


class LegacyPipeline:
    """Serial pre-refactor pipeline with the signatures of ``SmashPipeline``.

    ``workers`` / ``executor`` / ``cache`` arguments are accepted so the
    streaming engine can drive a :class:`LegacyPipeline` unmodified in
    equivalence tests, but they are ignored: the legacy core always mines
    serially and cold, which by the incremental-cache invariant produces
    the same results anyway.
    """

    def __init__(self, config: SmashConfig | None = None) -> None:
        self.config = config or SmashConfig()
        self.config.validate()

    def mine(
        self,
        trace: HttpTrace,
        whois: WhoisRegistry | None = None,
        workers: int | None = None,
        executor: str | None = None,
        cache=None,
    ) -> MinedDimensions:
        if len(trace) == 0:
            raise PipelineError("cannot run SMASH on an empty trace")
        config = self.config
        prepared, report = legacy_preprocess(trace, config.preprocess)

        clients_by_server = prepared.clients_by_server
        single_client_servers = {
            server for server, clients in clients_by_server.items() if len(clients) == 1
        }
        multi_trace = _legacy_filter_servers(
            prepared,
            lambda server: server not in single_client_servers,
            name=prepared.name,
        )

        graph = legacy_build_client_graph(multi_trace, config.dimensions)
        main = legacy_mine_herds(graph, MAIN_DIMENSION, config.louvain)
        main = _append_single_client_herds(main, single_client_servers, clients_by_server)

        secondary: dict[str, MiningOutcome] = {}
        for dimension in config.enabled_secondary_dimensions:
            if dimension == "urifile":
                built = legacy_build_urifile_graph(prepared, config.dimensions)
            elif dimension == "ipset":
                built = legacy_build_ipset_graph(prepared, config.dimensions)
            elif dimension == "whois":
                built = (
                    None
                    if whois is None
                    else legacy_build_whois_graph(prepared, whois, config.dimensions)
                )
            elif dimension == "urlparam":
                built = legacy_build_urlparam_graph(prepared, config.dimensions)
            elif dimension == "time":
                built = legacy_build_time_graph(prepared, config.dimensions)
            else:  # pragma: no cover - guarded by SmashConfig.validate
                raise PipelineError(f"unknown dimension {dimension!r}")
            if built is not None:
                secondary[dimension] = legacy_mine_herds(
                    built, dimension, config.louvain
                )
        return MinedDimensions(
            trace=prepared,
            preprocess_report=report,
            main=main,
            secondary=secondary,
        )

    def finish(
        self,
        mined: MinedDimensions,
        redirects: RedirectOracle | None = None,
        thresh: float | None = None,
    ) -> SmashResult:
        config = self.config
        outcome = legacy_correlate(
            mined.main, mined.secondary, config.correlation, thresh=thresh
        )
        pruned, prune_report = legacy_prune_ashes(
            outcome.candidate_ashes, mined.trace, redirects, config.pruning
        )
        campaigns = legacy_infer_campaigns(
            pruned,
            mined.main,
            mined.trace,
            outcome.scores,
            outcome.contributions,
            prune_report,
        )
        herds_by_dimension = {MAIN_DIMENSION: mined.main.herds}
        for dimension, mining in mined.secondary.items():
            herds_by_dimension[dimension] = mining.herds
        return SmashResult(
            herds_by_dimension=herds_by_dimension,
            scores=outcome.scores,
            contributions=outcome.contributions,
            candidate_ashes=pruned,
            campaigns=campaigns,
            prune_report=prune_report,
            main_dimension_dropped=mined.main.dropped,
        )

    def run(
        self,
        trace: HttpTrace,
        whois: WhoisRegistry | None = None,
        redirects: RedirectOracle | None = None,
        thresh: float | None = None,
    ) -> SmashResult:
        mined = self.mine(trace, whois)
        return self.finish(mined, redirects, thresh=thresh)

    def run_sweep(
        self,
        trace: HttpTrace,
        thresholds: tuple[float, ...],
        whois: WhoisRegistry | None = None,
        redirects: RedirectOracle | None = None,
    ) -> dict[float, SmashResult]:
        mined = self.mine(trace, whois)
        return {
            threshold: self.finish(mined, redirects, thresh=threshold)
            for threshold in thresholds
        }
