"""Dispatch seam for the sharded mine's map phase.

The coordinator in :mod:`repro.core.shardmine` describes each map job as
a small JSON-compatible *spec* (shard number, input source, output spill
root — see :func:`~repro.core.shardmine.run_shard_job`) and hands the
batch to a :class:`ShardDispatcher`.  Where and how the jobs execute is
the dispatcher's business alone:

* :class:`SerialDispatcher` — a plain loop in the coordinator process;
* :class:`PoolDispatcher` — the mine's shared
  :class:`~repro.util.parallel.JobPool` (thread or process executor),
  the PR 7 behaviour;
* :class:`SubprocessDispatcher` — one fresh interpreter per shard,
  driven through ``python -m repro.core.shardworker`` with the spec on
  stdin and one JSON result line on stdout.

The subprocess dispatcher is deliberately the narrowest: specs it
receives reference inputs only by store paths and content digests
(``inline_traces`` is ``False``, so the coordinator never embeds live
request objects), and results travel back the same way — the exact
contract a remote worker over a network transport would need.  Because
shard jobs are deterministic and their outputs digest-verified, every
dispatcher produces byte-identical mining results; dispatch is an
execution strategy, like ``workers`` or ``shards``.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from concurrent.futures import ThreadPoolExecutor
from functools import partial

from repro.errors import PipelineError, StreamError
from repro.util.parallel import DISPATCH_KINDS, JobPool, resolve_workers

#: Fail a hung worker eventually rather than never; shard jobs at bench
#: scale finish in seconds.
_WORKER_TIMEOUT_SECONDS = 600.0


class ShardDispatcher:
    """How a batch of shard-job specs gets executed.

    Subclasses implement :meth:`run`; ``inline_traces`` advertises
    whether specs may carry live in-memory traces (only dispatchers that
    share the coordinator's address space can accept those — the
    subprocess dispatcher forces the coordinator to spill inputs to a
    store first).
    """

    #: Name under which :func:`make_dispatcher` builds this dispatcher.
    kind: str = "abstract"

    #: Whether job specs may reference in-memory traces directly.
    inline_traces: bool = False

    def run(self, specs: list[dict]) -> list[dict]:
        """Execute every spec; results in spec order."""
        raise NotImplementedError

    def close(self) -> None:
        """Release dispatcher resources (idempotent)."""

    def __enter__(self) -> "ShardDispatcher":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


class SerialDispatcher(ShardDispatcher):
    """Run shard jobs inline in the coordinator, one after another."""

    kind = "serial"
    inline_traces = True

    def run(self, specs: list[dict]) -> list[dict]:
        from repro.core.shardmine import run_shard_job

        return [run_shard_job(spec) for spec in specs]


class PoolDispatcher(ShardDispatcher):
    """Fan shard jobs out on the mine's shared :class:`JobPool`.

    The pool is owned by the caller (it also serves the pair-partial and
    Louvain fan-outs), so :meth:`close` leaves it alone.
    """

    kind = "pool"
    inline_traces = True

    def __init__(self, pool: JobPool) -> None:
        self.pool = pool

    def run(self, specs: list[dict]) -> list[dict]:
        from repro.core.shardmine import run_shard_job

        return self.pool.run([partial(run_shard_job, spec) for spec in specs])


class SubprocessDispatcher(ShardDispatcher):
    """One fresh interpreter per shard job, stdin spec / stdout result.

    The worker (:mod:`repro.core.shardworker`) receives nothing but the
    JSON spec: inputs are named by store paths + digests, outputs are
    spilled to the shared :class:`~repro.stream.store.PartialStore` and
    reported back as ``(name, digest)``.  Worker-side failures come back
    as a structured ``{"error": {...}}`` object and are re-raised here
    under the coordinator's own exception types, so a corrupt partition
    fails a subprocess-dispatched mine exactly like an in-process one.
    """

    kind = "subprocess"
    inline_traces = False

    def __init__(self, workers: int = 0) -> None:
        self.workers = resolve_workers(workers)
        self._pool: ThreadPoolExecutor | None = None

    def run(self, specs: list[dict]) -> list[dict]:
        if len(specs) <= 1 or self.workers <= 1:
            return [self._run_one(spec) for spec in specs]
        if self._pool is None:
            self._pool = ThreadPoolExecutor(max_workers=self.workers)
        futures = [self._pool.submit(self._run_one, spec) for spec in specs]
        return [future.result() for future in futures]

    @staticmethod
    def _worker_env() -> dict[str, str]:
        import repro

        env = dict(os.environ)
        package_root = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = (
            package_root if not existing else package_root + os.pathsep + existing
        )
        return env

    def _run_one(self, spec: dict) -> dict:
        shard = spec.get("shard")
        completed = subprocess.run(
            [sys.executable, "-m", "repro.core.shardworker"],
            input=json.dumps(spec),
            capture_output=True,
            text=True,
            env=self._worker_env(),
            timeout=_WORKER_TIMEOUT_SECONDS,
        )
        try:
            result = json.loads(completed.stdout)
        except (json.JSONDecodeError, ValueError):
            result = None
        if isinstance(result, dict) and "error" in result:
            error = result["error"]
            kind = str(error.get("kind", ""))
            message = str(error.get("message", ""))
            if kind == "StreamError":
                raise StreamError(message)
            raise PipelineError(f"shard {shard} worker failed: {kind}: {message}")
        if completed.returncode != 0 or not isinstance(result, dict):
            tail = completed.stderr.strip().splitlines()[-8:]
            raise PipelineError(
                f"shard {shard} worker exited with {completed.returncode}: "
                + " | ".join(tail)
            )
        return result

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


def make_dispatcher(
    kind: str, pool: JobPool | None = None, workers: int = 0
) -> ShardDispatcher:
    """Build the dispatcher for a configured ``dispatch`` kind.

    ``"pool"`` requires the caller's :class:`JobPool`; ``"subprocess"``
    takes a concurrent-worker budget (``0`` = one per CPU).
    """
    if kind == "serial":
        return SerialDispatcher()
    if kind == "pool":
        if pool is None:
            raise PipelineError("pool dispatch requires a JobPool")
        return PoolDispatcher(pool)
    if kind == "subprocess":
        return SubprocessDispatcher(workers=workers)
    raise PipelineError(
        f"unknown dispatch kind {kind!r}; expected one of {DISPATCH_KINDS}"
    )


__all__ = [
    "ShardDispatcher",
    "SerialDispatcher",
    "PoolDispatcher",
    "SubprocessDispatcher",
    "make_dispatcher",
]
