"""Dispatch seam for the sharded mine's map phase.

The coordinator in :mod:`repro.core.shardmine` describes each map job as
a small JSON-compatible *spec* (shard number, input source, output spill
root — see :func:`~repro.core.shardmine.run_shard_job`) and hands the
batch to a :class:`ShardDispatcher`.  Where and how the jobs execute is
the dispatcher's business alone:

* :class:`SerialDispatcher` — a plain loop in the coordinator process;
* :class:`PoolDispatcher` — the mine's shared
  :class:`~repro.util.parallel.JobPool` (thread or process executor),
  the PR 7 behaviour;
* :class:`SubprocessDispatcher` — one fresh interpreter per shard,
  driven through ``python -m repro.core.shardworker`` with the spec on
  stdin and one JSON result line on stdout.

Every dispatcher is retry-aware: each shard job runs under a
:class:`~repro.core.faults.RetryPolicy` via
:func:`~repro.core.faults.run_job_outcome`, so a crashed or hung worker,
a torn spill, or a transient store error costs one retry (on a fresh
spill name) instead of the whole mine.  A shard that exhausts its retry
budget is *reassigned* to inline serial execution in the coordinator —
a flaky environment degrades to the PR 7 path rather than failing — and
only non-retryable errors (a corrupt source partition fails on every
host) abort the batch, deterministically raising the lowest-numbered
shard's error.  Failed spill bytes are quarantined with a reason file
(:meth:`~repro.stream.store.PartialStore.quarantine`), and the retry /
failure / reassignment accounting flows through :mod:`repro.obs`
(``smash_shard_retries_total``, ``smash_shard_worker_failures_total``,
``smash_shard_reassigned_total`` plus per-attempt spans).

The subprocess dispatcher is deliberately the narrowest: specs it
receives reference inputs only by store paths and content digests
(``inline_traces`` is ``False``, so the coordinator never embeds live
request objects), and results travel back the same way — the exact
contract a remote worker over a network transport would need.  Because
shard jobs are deterministic and their outputs digest-verified, every
dispatcher produces byte-identical mining results; dispatch, like the
retry policy and any injected :class:`~repro.core.faults.FaultPlan`, is
an execution strategy, like ``workers`` or ``shards``.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from concurrent.futures import FIRST_COMPLETED, ThreadPoolExecutor, wait
from functools import partial

from repro.core.faults import (
    FaultPlan,
    RetryPolicy,
    rebuild_error,
    run_job_outcome,
)
from repro.errors import PipelineError, ShardTimeoutError, WorkerError
from repro.obs import NULL_RECORDER
from repro.util.parallel import DISPATCH_KINDS, JobPool, resolve_workers

#: Span recorded once per shard-job attempt that ran to a conclusion.
ATTEMPT_SPAN = "pipeline.mine.shard_attempt"


class ShardDispatcher:
    """How a batch of shard-job specs gets executed.

    Subclasses implement :meth:`_run_batch`, returning one *outcome*
    dict per spec (the :func:`~repro.core.faults.run_job_outcome`
    protocol); the shared :meth:`run` turns outcomes into results —
    reassigning exhausted shards inline, recording obs accounting, and
    raising the lowest-numbered shard's fatal error.  ``inline_traces``
    advertises whether specs may carry live in-memory traces (only
    dispatchers that share the coordinator's address space can accept
    those — the subprocess dispatcher forces the coordinator to spill
    inputs to a store first).
    """

    #: Name under which :func:`make_dispatcher` builds this dispatcher.
    kind: str = "abstract"

    #: Whether job specs may reference in-memory traces directly.
    inline_traces: bool = False

    def __init__(
        self,
        policy: RetryPolicy | None = None,
        plan: FaultPlan | None = None,
        recorder=None,
    ) -> None:
        self.policy = policy or RetryPolicy()
        self.plan = plan
        self.recorder = NULL_RECORDER if recorder is None else recorder

    def run(self, specs: list[dict]) -> list[dict]:
        """Execute every spec under the retry policy; results in spec order.

        A shard whose retry budget is exhausted by retryable failures is
        re-run inline (fault-free) in the coordinator; a non-retryable
        failure aborts the batch.  When several shards fail fatally the
        lowest shard number's error is raised, deterministically.
        """
        outcomes = self._run_batch(specs)
        results: list[dict] = []
        fatal: list[tuple[int, Exception]] = []
        for spec, outcome in zip(specs, outcomes):
            shard = int(spec["shard"])
            if "ok" in outcome:
                result = outcome["ok"]
                self._record(shard, result.get("failures", []), result.get("seconds"))
                self._count_retries(result.get("attempts", 1) - 1)
                results.append(result)
            elif "exhausted" in outcome:
                detail = outcome["exhausted"]
                self._record(shard, detail.get("failures", []), None)
                self._count_retries(len(detail.get("failures", [])))
                try:
                    results.append(self._reassign(spec))
                except Exception as error:  # noqa: BLE001 - collected, re-raised
                    fatal.append((shard, error))
            elif "error" in outcome:
                detail = outcome["error"]
                self._record(shard, outcome.get("failures", []), None)
                fatal.append(
                    (
                        shard,
                        rebuild_error(
                            detail.get("kind", "PipelineError"),
                            detail.get("message", ""),
                            bool(detail.get("retryable", False)),
                        ),
                    )
                )
            # Outcomes marked {"cancelled": True} were never started
            # (a sibling failed fatally first); nothing to record.
        if fatal:
            fatal.sort(key=lambda item: item[0])
            raise fatal[0][1]
        return results

    def _run_batch(self, specs: list[dict]) -> list[dict]:
        """One outcome dict per spec, in spec order."""
        raise NotImplementedError

    def _reassign(self, spec: dict) -> dict:
        """Graceful degradation: run an exhausted shard inline, fault-free.

        Subprocess retries failing repeatedly usually means the
        *environment* (spawning interpreters, the spill transport) is
        flaky, not the job — so the coordinator absorbs the job itself
        on a fresh spill name, exactly the PR 7 serial path.
        """
        from repro.core.shardmine import run_shard_job

        shard = int(spec["shard"])
        prepared = dict(spec)
        prepared.pop("fault", None)
        base = str(spec.get("spill_name") or f"index-{shard:04d}")
        prepared["spill_name"] = f"{base}.ra"
        result = run_shard_job(prepared)
        self.recorder.counter(
            "smash_shard_reassigned_total",
            "Shard jobs reassigned to inline execution after exhausting retries.",
        ).inc()
        self.recorder.record_span(
            ATTEMPT_SPAN,
            float(result.get("seconds", 0.0)),
            {"shard": shard, "attempt": "reassigned", "kind": "ok"},
        )
        return result

    def _count_retries(self, retries: int) -> None:
        if retries > 0:
            self.recorder.counter(
                "smash_shard_retries_total",
                "Shard-job attempts beyond the first (retries after failure).",
            ).inc(retries)

    def _record(self, shard: int, failures: list[dict], ok_seconds) -> None:
        """Account for one shard job's attempt history in obs."""
        worker_failures = self.recorder.counter(
            "smash_shard_worker_failures_total",
            "Shard-job attempts that failed, by failure classification.",
            labels=("kind",),
        )
        for entry in failures:
            worker_failures.labels(kind=entry.get("label", "error")).inc()
            self.recorder.record_span(
                ATTEMPT_SPAN,
                float(entry.get("seconds", 0.0)),
                {
                    "shard": shard,
                    "attempt": entry.get("attempt"),
                    "kind": entry.get("label", "error"),
                    "retryable": entry.get("retryable"),
                },
            )
        if ok_seconds is not None:
            self.recorder.record_span(
                ATTEMPT_SPAN,
                float(ok_seconds),
                {"shard": shard, "attempt": len(failures) + 1, "kind": "ok"},
            )

    def close(self) -> None:
        """Release dispatcher resources (idempotent)."""

    def __enter__(self) -> "ShardDispatcher":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


def _fail_fast_serial(specs: list[dict], run_outcome) -> list[dict]:
    """Run outcomes one by one, cancelling the rest after a fatal error."""
    outcomes: list[dict] = []
    for index, spec in enumerate(specs):
        outcome = run_outcome(spec)
        outcomes.append(outcome)
        if "error" in outcome:
            outcomes.extend({"cancelled": True} for _ in specs[index + 1 :])
            break
    return outcomes


class SerialDispatcher(ShardDispatcher):
    """Run shard jobs inline in the coordinator, one after another."""

    kind = "serial"
    inline_traces = True

    def _run_batch(self, specs: list[dict]) -> list[dict]:
        return _fail_fast_serial(
            specs,
            lambda spec: run_job_outcome(spec, self.policy, self.plan),
        )


class PoolDispatcher(ShardDispatcher):
    """Fan shard jobs out on the mine's shared :class:`JobPool`.

    The pool is owned by the caller (it also serves the pair-partial and
    Louvain fan-outs), so :meth:`close` leaves it alone.  Outcomes are
    plain dicts, so the retry loop runs inside pool workers even under a
    process executor; the pool offers no cancellation, so a fatal error
    surfaces only after the batch drains.
    """

    kind = "pool"
    inline_traces = True

    def __init__(
        self,
        pool: JobPool,
        policy: RetryPolicy | None = None,
        plan: FaultPlan | None = None,
        recorder=None,
    ) -> None:
        super().__init__(policy=policy, plan=plan, recorder=recorder)
        self.pool = pool

    def _run_batch(self, specs: list[dict]) -> list[dict]:
        return self.pool.run(
            [partial(run_job_outcome, spec, self.policy, self.plan) for spec in specs]
        )


class SubprocessDispatcher(ShardDispatcher):
    """One fresh interpreter per shard job, stdin spec / stdout result.

    The worker (:mod:`repro.core.shardworker`) receives nothing but the
    JSON spec: inputs are named by store paths + digests, outputs are
    spilled to the shared :class:`~repro.stream.store.PartialStore` and
    reported back as ``(name, digest)``.  Worker-side failures come back
    as a structured ``{"error": {...}}`` object and are re-raised here
    under the coordinator's own exception types, so a corrupt partition
    fails a subprocess-dispatched mine exactly like an in-process one.
    A worker that crashes or exceeds ``policy.timeout`` raises a
    retryable :class:`~repro.errors.WorkerError` instead, consumed by
    the retry loop.
    """

    kind = "subprocess"
    inline_traces = False

    def __init__(
        self,
        workers: int = 0,
        policy: RetryPolicy | None = None,
        plan: FaultPlan | None = None,
        recorder=None,
    ) -> None:
        super().__init__(policy=policy, plan=plan, recorder=recorder)
        self.workers = resolve_workers(workers)
        self._pool: ThreadPoolExecutor | None = None

    def _run_outcome(self, spec: dict) -> dict:
        return run_job_outcome(spec, self.policy, self.plan, attempt_call=self._run_one)

    def _run_batch(self, specs: list[dict]) -> list[dict]:
        if len(specs) <= 1 or self.workers <= 1:
            return _fail_fast_serial(specs, self._run_outcome)
        if self._pool is None:
            self._pool = ThreadPoolExecutor(max_workers=self.workers)
        # Collect every future's outcome rather than bailing on the
        # first exception: a fatal outcome cancels whatever has not
        # started yet, in-flight siblings are drained (never left
        # running detached), and ``run`` raises the lowest-numbered
        # shard's error from the assembled batch.
        futures = {
            self._pool.submit(self._run_outcome, spec): index
            for index, spec in enumerate(specs)
        }
        outcomes: list[dict] = [{"cancelled": True} for _ in specs]
        pending = set(futures)
        cancelling = False
        while pending:
            done, pending = wait(pending, return_when=FIRST_COMPLETED)
            for future in done:
                if future.cancelled():
                    continue
                outcome = future.result()
                outcomes[futures[future]] = outcome
                if "error" in outcome and not cancelling:
                    cancelling = True
                    for sibling in pending:
                        sibling.cancel()
        return outcomes

    @staticmethod
    def _worker_env() -> dict[str, str]:
        import repro

        env = dict(os.environ)
        package_root = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = (
            package_root if not existing else package_root + os.pathsep + existing
        )
        return env

    def _run_one(self, spec: dict) -> dict:
        shard = spec.get("shard")
        timeout = self.policy.timeout
        try:
            completed = subprocess.run(
                [sys.executable, "-m", "repro.core.shardworker"],
                input=json.dumps(spec),
                capture_output=True,
                text=True,
                env=self._worker_env(),
                timeout=timeout,
            )
        except subprocess.TimeoutExpired as error:
            # subprocess.run kills the child before re-raising, so the
            # worker is gone; surface a retryable timeout naming the
            # shard and the configured budget instead of the raw
            # TimeoutExpired.
            raise ShardTimeoutError(
                f"shard {shard} worker timed out after {timeout:.0f}s "
                "(config.shard_timeout)"
            ) from error
        try:
            result = json.loads(completed.stdout)
        except (json.JSONDecodeError, ValueError):
            result = None
        if isinstance(result, dict) and "error" in result:
            error = result["error"]
            kind = str(error.get("kind", ""))
            message = str(error.get("message", ""))
            retryable = bool(error.get("retryable", False))
            if kind in ("StreamError", "WorkerError", "ShardTimeoutError"):
                raise rebuild_error(kind, message, retryable)
            raise rebuild_error(
                "WorkerError" if retryable else "PipelineError",
                f"shard {shard} worker failed: {kind}: {message}",
                retryable,
            )
        if completed.returncode != 0 or not isinstance(result, dict):
            # No parseable reply: the interpreter died (crash, OOM kill,
            # injected os._exit).  Retryable — a fresh worker on a fresh
            # spill name sees none of this attempt's state.
            tail = completed.stderr.strip().splitlines()[-8:]
            raise WorkerError(
                f"shard {shard} worker exited with {completed.returncode}: "
                + " | ".join(tail)
            )
        return result

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


def make_dispatcher(
    kind: str,
    pool: JobPool | None = None,
    workers: int = 0,
    policy: RetryPolicy | None = None,
    plan: FaultPlan | None = None,
    recorder=None,
) -> ShardDispatcher:
    """Build the dispatcher for a configured ``dispatch`` kind.

    ``"pool"`` requires the caller's :class:`JobPool`; ``"subprocess"``
    takes a concurrent-worker budget (``0`` = one per CPU).  *policy*,
    *plan* and *recorder* configure retries, fault injection and obs
    accounting for any kind.
    """
    if kind == "serial":
        return SerialDispatcher(policy=policy, plan=plan, recorder=recorder)
    if kind == "pool":
        if pool is None:
            raise PipelineError("pool dispatch requires a JobPool")
        return PoolDispatcher(pool, policy=policy, plan=plan, recorder=recorder)
    if kind == "subprocess":
        return SubprocessDispatcher(
            workers=workers, policy=policy, plan=plan, recorder=recorder
        )
    raise PipelineError(
        f"unknown dispatch kind {kind!r}; expected one of {DISPATCH_KINDS}"
    )


__all__ = [
    "ATTEMPT_SPAN",
    "ShardDispatcher",
    "SerialDispatcher",
    "PoolDispatcher",
    "SubprocessDispatcher",
    "make_dispatcher",
]
