"""Malicious campaign inference (Section III-E).

Correlation captures specific activities (one ASH per shared artefact);
the full campaign may span several ASHs — e.g. a botnet's download tier
and C&C tier form different URI-file herds but share the infected
clients.  Two ASHs merge into one campaign when their servers sit in the
same **main-dimension** herd, i.e. they share a very similar client set.
"""

from __future__ import annotations

from collections import defaultdict

from repro.core.ashmining import MiningOutcome
from repro.core.results import Campaign, CandidateAsh, PruneReport
from repro.httplog.trace import HttpTrace


def infer_campaigns(
    ashes: tuple[CandidateAsh, ...],
    main: MiningOutcome,
    trace: HttpTrace,
    scores: dict[str, float],
    contributions: dict[str, dict[str, float]],
    prune_report: PruneReport | None = None,
) -> tuple[Campaign, ...]:
    """Merge surviving ASHs into campaigns keyed by main-dimension herd.

    Campaign clients are read back from the trace: every client that
    contacted any member server is "involved" in the campaign (this is
    what Tables II/V count as involved clients).
    """
    by_main: dict[int, set[str]] = defaultdict(set)
    for ash in ashes:
        by_main[ash.main_index].update(ash.servers)

    replacements: dict[str, str] = {}
    if prune_report is not None:
        replacements.update(prune_report.redirection_replacements)
        replacements.update(prune_report.referrer_replacements)

    clients_by_server = trace.clients_by_server
    campaigns: list[Campaign] = []
    for campaign_id, main_index in enumerate(sorted(by_main)):
        servers = frozenset(by_main[main_index])
        clients: set[str] = set()
        for server in servers:
            clients |= clients_by_server.get(server, frozenset())
        campaigns.append(
            Campaign(
                campaign_id=campaign_id,
                main_index=main_index,
                servers=servers,
                clients=frozenset(clients),
                server_scores={
                    server: scores[server]
                    for server in sorted(servers)
                    if server in scores
                },
                contributions={
                    server: dict(contributions[server])
                    for server in sorted(servers)
                    if server in contributions
                },
                replaced_servers={
                    replaced: landing
                    for replaced, landing in replacements.items()
                    if landing in servers
                },
            )
        )
    return tuple(campaigns)
