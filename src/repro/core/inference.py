"""Malicious campaign inference (Section III-E).

Correlation captures specific activities (one ASH per shared artefact);
the full campaign may span several ASHs — e.g. a botnet's download tier
and C&C tier form different URI-file herds but share the infected
clients.  Two ASHs merge into one campaign when their servers sit in the
same **main-dimension** herd, i.e. they share a very similar client set.

Inference is the results boundary of the interned pipeline: the id core
(:func:`infer_campaigns_ids`) merges id-domain ASHs and decodes server
ids back to labels exactly once, while constructing the
:class:`~repro.core.results.Campaign` objects every downstream consumer
(export, eval, streaming) reads.
"""

from __future__ import annotations

from collections import defaultdict

from repro.core.ashmining import MiningOutcome
from repro.core.interning import Interner
from repro.core.pruning import EncodedPruneReport
from repro.core.results import Campaign, CandidateAsh, PruneReport
from repro.httplog.trace import HttpTrace


def infer_campaigns_ids(
    ashes: tuple[tuple[int, str, int, frozenset[int]], ...],
    trace: HttpTrace,
    scores: dict[int, float],
    contributions: dict[int, dict[str, float]],
    interner: Interner,
    prune_report: EncodedPruneReport | None = None,
) -> tuple[Campaign, ...]:
    """Merge surviving id-domain ASHs into (label-domain) campaigns.

    Campaign clients are read back from the trace: every client that
    contacted any member server is "involved" in the campaign (this is
    what Tables II/V count as involved clients).
    """
    by_main: dict[int, set[int]] = defaultdict(set)
    for main_index, _dimension, _secondary_index, members in ashes:
        by_main[main_index].update(members)

    replacements: dict[int, int] = {}
    if prune_report is not None:
        replacements.update(prune_report.redirection_replacements)
        replacements.update(prune_report.referrer_replacements)

    clients_by_server = trace.clients_by_server
    label_of = interner.label_of
    campaigns: list[Campaign] = []
    for campaign_id, main_index in enumerate(sorted(by_main)):
        member_ids = by_main[main_index]
        ordered_ids = sorted(member_ids)
        servers = frozenset(label_of(server_id) for server_id in ordered_ids)
        clients: set[str] = set()
        for server in servers:
            clients |= clients_by_server.get(server, frozenset())
        campaigns.append(
            Campaign(
                campaign_id=campaign_id,
                main_index=main_index,
                servers=servers,
                clients=frozenset(clients),
                server_scores={
                    label_of(server_id): scores[server_id]
                    for server_id in ordered_ids
                    if server_id in scores
                },
                contributions={
                    label_of(server_id): dict(contributions[server_id])
                    for server_id in ordered_ids
                    if server_id in contributions
                },
                replaced_servers={
                    label_of(replaced): label_of(landing)
                    for replaced, landing in replacements.items()
                    if landing in member_ids
                },
            )
        )
    return tuple(campaigns)


def infer_campaigns(
    ashes: tuple[CandidateAsh, ...],
    main: MiningOutcome,
    trace: HttpTrace,
    scores: dict[str, float],
    contributions: dict[str, dict[str, float]],
    prune_report: PruneReport | None = None,
) -> tuple[Campaign, ...]:
    """Label-domain wrapper over :func:`infer_campaigns_ids`.

    ``main`` is accepted for signature compatibility (campaign grouping
    is fully determined by the ASHs' main-herd indices).
    """
    del main  # grouping needs only the ASHs' main_index fields
    interner = Interner(
        set(server for ash in ashes for server in ash.servers)
        | set(scores)
        | set(contributions)
    )
    if prune_report is not None:
        encoded_report = EncodedPruneReport(
            redirection_replacements={
                interner.intern(replaced): interner.intern(landing)
                for replaced, landing in prune_report.redirection_replacements.items()
            },
            referrer_replacements={
                interner.intern(replaced): interner.intern(landing)
                for replaced, landing in prune_report.referrer_replacements.items()
            },
            dropped_ashes=prune_report.dropped_ashes,
        )
    else:
        encoded_report = None
    encoded_ashes = tuple(
        (
            ash.main_index,
            ash.secondary_dimension,
            ash.secondary_index,
            interner.encode_set(ash.servers),
        )
        for ash in ashes
    )
    id_of = interner.id_of
    return infer_campaigns_ids(
        encoded_ashes,
        trace,
        {id_of(server): score for server, score in scores.items()},
        {
            id_of(server): dict(per_dim)
            for server, per_dim in contributions.items()
        },
        interner,
        encoded_report,
    )
