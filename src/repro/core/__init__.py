"""SMASH core: the paper's primary contribution.

The pipeline (Figure 2) is::

    trace -> preprocess -> ASH mining (per dimension) -> ASH correlation
          -> pruning -> malicious campaign inference

Entry point: :class:`repro.core.pipeline.SmashPipeline`.
"""

from repro.core.results import Campaign, CandidateAsh, Herd, SmashResult
from repro.core.interning import Interner
from repro.core.pipeline import SmashPipeline
from repro.core.preprocess import PreprocessReport, preprocess

__all__ = [
    "Campaign",
    "CandidateAsh",
    "Herd",
    "Interner",
    "PreprocessReport",
    "SmashPipeline",
    "SmashResult",
    "preprocess",
]
