"""IP-address-set similarity (Section III-B2, eq. 8).

    IP(Si, Sj) = |Ii ∩ Ij| / |Ii|  ×  |Ij ∩ Ii| / |Ij|

Captures domain fluxing: many malicious domains resolving into one small
IP pool (the paper's skolewcho.com / switcho81.com / ... example).  An
IP-literal "server" has itself as its IP set, so a fluxed domain herd and
the raw IP it hides behind associate naturally.
"""

from __future__ import annotations

from collections import defaultdict
from itertools import combinations

from repro.config import DimensionConfig
from repro.graph.wgraph import WeightedGraph
from repro.httplog.trace import HttpTrace
from repro.util.text import overlap_ratio_product


def build_ipset_graph(
    trace: HttpTrace, config: DimensionConfig | None = None
) -> WeightedGraph:
    """Build the IP-set similarity graph from the trace's resolutions."""
    config = config or DimensionConfig()
    ips_by_server = trace.ips_by_server
    graph = WeightedGraph()
    # Canonical node order (see build_client_graph): sorted, not set order.
    for server in sorted(ips_by_server):
        graph.add_node(server)

    servers_by_ip: dict[str, set[str]] = defaultdict(set)
    for server, ips in ips_by_server.items():
        for ip in ips:
            servers_by_ip[ip].add(server)

    candidates: set[tuple[str, str]] = set()
    for servers in servers_by_ip.values():
        if len(servers) < 2:
            continue
        candidates.update(combinations(sorted(servers), 2))

    # Sorted candidate iteration: edge insertion order must not follow the
    # hash order of the candidate set (or of the per-IP posting sets that
    # fed it).
    for first, second in sorted(candidates):
        weight = overlap_ratio_product(
            ips_by_server[first], ips_by_server[second]
        )
        if weight >= config.min_edge_weight:
            graph.add_edge(first, second, weight)
    return graph
