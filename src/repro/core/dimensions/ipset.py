"""IP-address-set similarity (Section III-B2, eq. 8).

    IP(Si, Sj) = |Ii ∩ Ij| / |Ii|  ×  |Ij ∩ Ii| / |Ij|

Captures domain fluxing: many malicious domains resolving into one small
IP pool (the paper's skolewcho.com / switcho81.com / ... example).  An
IP-literal "server" has itself as its IP set, so a fluxed domain herd and
the raw IP it hides behind associate naturally.

Server ids are interned once; each IP's posting list becomes an ascending
id group and shared-IP counts accumulate per pair, which *is* the eq.-8
numerator — no candidate-pair set, no per-pair set intersections.  A
popular shared IP is this dimension's heavy hitter; ``config.max_group_size``
(off by default) bounds it deterministically.
"""

from __future__ import annotations

from collections import defaultdict

from repro.config import DimensionConfig
from repro.core.interning import PairStats, accumulate_pair_counts, add_overlap_edges
from repro.graph.csr import new_graph
from repro.graph.wgraph import WeightedGraph
from repro.httplog.trace import HttpTrace


def build_ipset_graph(
    trace: HttpTrace, config: DimensionConfig | None = None, accumulate=None
) -> WeightedGraph:
    """Build the IP-set similarity graph from the trace's resolutions."""
    config = config or DimensionConfig()
    accumulate = accumulate or accumulate_pair_counts
    ips_by_server = trace.ips_by_server
    # Canonical node order (see build_client_graph): sorted, not set order.
    ordered = sorted(ips_by_server)
    graph = new_graph(ordered, config.use_csr)
    width = len(ordered)
    index = {server: i for i, server in enumerate(ordered)}
    sizes = [len(ips_by_server[server]) for server in ordered]

    ids_by_ip: dict[str, list[int]] = defaultdict(list)
    for server, ips in ips_by_server.items():
        server_id = index[server]
        for ip in ips:
            ids_by_ip[ip].append(server_id)

    stats = PairStats()
    pair_common = accumulate(
        (sorted(group) for group in ids_by_ip.values()),
        width,
        cap=config.max_group_size,
        stats=stats,
        auto_cap=config.auto_cap_pairs,
    )

    add_overlap_edges(graph, pair_common, width, sizes, config.min_edge_weight)
    graph.build_stats = {"dimension": "ipset", **stats.to_dict()}
    return graph
