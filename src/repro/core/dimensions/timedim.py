"""Temporal co-occurrence similarity (Section VI's extension suggestion).

"We can also add time based dimensions [Gao et al.] to characterize the
relationship among servers."  Servers of one campaign are contacted by
the same bots in the same activity windows (a beaconing cycle hits the
download tier and the C&C tier back to back), while independent benign
servers spread over their visitors' schedules.

The similarity is window co-occurrence: bucket the trace into fixed-size
time windows, take each server's set of active windows, and score a pair
by the overlap-ratio product (eq.-1 form).  Windows containing a large
share of all servers (global rush hours) never generate candidate pairs,
mirroring the IDF rule, but still count toward the overlap of pairs
found through quieter windows.  Candidates come from interned-id pair
accumulation over the quiet windows' posting lists; the rush-hour
remainder is added back per pair, reproducing the full-set overlap
exactly.

Disabled by default; enable via
``SmashConfig(enabled_secondary_dimensions=(..., "time"))``.
"""

from __future__ import annotations

from collections import defaultdict

from repro.config import DimensionConfig
from repro.core.interning import PairStats, accumulate_pair_counts, add_overlap_edges
from repro.graph.csr import new_graph
from repro.graph.wgraph import WeightedGraph
from repro.httplog.trace import HttpTrace

#: Default window size: 10 minutes.
DEFAULT_WINDOW_SECONDS = 600.0


def active_windows_by_server(
    trace: HttpTrace, window_seconds: float = DEFAULT_WINDOW_SECONDS
) -> dict[str, frozenset[int]]:
    """server -> set of window indices in which it received requests."""
    if window_seconds <= 0:
        raise ValueError("window_seconds must be > 0")
    # An index-only trace (out-of-core sharded mine) carries the
    # shard-merged window index, computed at the default width; honour it
    # only for that width so a caller asking for another width still
    # fails loudly on the missing raw requests.
    if window_seconds == DEFAULT_WINDOW_SECONDS:
        injected = getattr(trace, "_windows_by_server", None)
        if injected is not None:
            return injected
    windows: dict[str, set[int]] = defaultdict(set)
    for request in trace:
        windows[request.host].add(int(request.timestamp // window_seconds))
    return {server: frozenset(found) for server, found in windows.items()}


def build_time_graph(
    trace: HttpTrace,
    config: DimensionConfig | None = None,
    window_seconds: float = DEFAULT_WINDOW_SECONDS,
    accumulate=None,
    windows_of: dict[str, frozenset[int]] | None = None,
) -> WeightedGraph:
    """Build the temporal co-occurrence graph for *trace*.

    *windows_of* short-circuits the request scan with a precomputed
    (e.g. shard-merged) window index; it must equal what
    :func:`active_windows_by_server` would return for *trace*.
    """
    config = config or DimensionConfig()
    accumulate = accumulate or accumulate_pair_counts
    if windows_of is None:
        windows_of = active_windows_by_server(trace, window_seconds)
    # Canonical node order: trace.servers is a frozenset, so iterating it
    # directly would insert nodes in hash order.
    ordered = sorted(trace.servers)
    graph = new_graph(ordered, config.use_csr)
    width = len(ordered)
    if width < 2:
        return graph
    index = {server: i for i, server in enumerate(ordered)}

    ids_by_window: dict[int, list[int]] = defaultdict(list)
    for server, windows in windows_of.items():
        server_id = index[server]
        for window in windows:
            ids_by_window[window].append(server_id)

    max_servers = config.max_file_server_fraction * width
    quiet_groups: list[list[int]] = []
    heavy_of: dict[int, set[int]] = {}
    for window, members in ids_by_window.items():
        if len(members) > max_servers:
            for server_id in members:
                heavy_of.setdefault(server_id, set()).add(window)
        else:
            quiet_groups.append(sorted(members))

    stats = PairStats()
    pair_common = accumulate(
        quiet_groups,
        width,
        cap=config.max_group_size,
        stats=stats,
        auto_cap=config.auto_cap_pairs,
    )

    heavy_sets: dict[int, frozenset[int]] = {
        server_id: frozenset(found) for server_id, found in heavy_of.items()
    }
    sizes = {
        index[server]: len(windows) for server, windows in windows_of.items()
    }
    add_overlap_edges(
        graph, pair_common, width, sizes, config.min_edge_weight, heavy_sets
    )
    graph.build_stats = {
        "dimension": "time",
        "heavy_postings": len(ids_by_window) - len(quiet_groups),
        **stats.to_dict(),
    }
    return graph
