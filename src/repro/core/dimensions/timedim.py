"""Temporal co-occurrence similarity (Section VI's extension suggestion).

"We can also add time based dimensions [Gao et al.] to characterize the
relationship among servers."  Servers of one campaign are contacted by
the same bots in the same activity windows (a beaconing cycle hits the
download tier and the C&C tier back to back), while independent benign
servers spread over their visitors' schedules.

The similarity is window co-occurrence: bucket the trace into fixed-size
time windows, take each server's set of active windows, and score a pair
by the overlap-ratio product (eq.-1 form).  Windows containing a large
share of all servers (global rush hours) carry no signal and are
ignored, mirroring the IDF rule.

Disabled by default; enable via
``SmashConfig(enabled_secondary_dimensions=(..., "time"))``.
"""

from __future__ import annotations

from collections import defaultdict
from itertools import combinations

from repro.config import DimensionConfig
from repro.graph.wgraph import WeightedGraph
from repro.httplog.trace import HttpTrace
from repro.util.text import overlap_ratio_product

#: Default window size: 10 minutes.
DEFAULT_WINDOW_SECONDS = 600.0


def active_windows_by_server(
    trace: HttpTrace, window_seconds: float = DEFAULT_WINDOW_SECONDS
) -> dict[str, frozenset[int]]:
    """server -> set of window indices in which it received requests."""
    if window_seconds <= 0:
        raise ValueError("window_seconds must be > 0")
    windows: dict[str, set[int]] = defaultdict(set)
    for request in trace:
        windows[request.host].add(int(request.timestamp // window_seconds))
    return {server: frozenset(found) for server, found in windows.items()}


def build_time_graph(
    trace: HttpTrace,
    config: DimensionConfig | None = None,
    window_seconds: float = DEFAULT_WINDOW_SECONDS,
) -> WeightedGraph:
    """Build the temporal co-occurrence graph for *trace*."""
    config = config or DimensionConfig()
    windows_of = active_windows_by_server(trace, window_seconds)
    graph = WeightedGraph()
    # Canonical node order: trace.servers is a frozenset, so iterating it
    # directly would insert nodes in hash order.
    for server in sorted(trace.servers):
        graph.add_node(server)
    num_servers = len(trace.servers)
    if num_servers < 2:
        return graph

    servers_by_window: dict[int, set[str]] = defaultdict(set)
    for server, windows in windows_of.items():
        for window in windows:
            servers_by_window[window].add(server)

    max_servers = config.max_file_server_fraction * num_servers
    candidates: set[tuple[str, str]] = set()
    for window, servers in servers_by_window.items():
        if len(servers) < 2 or len(servers) > max_servers:
            continue
        for pair in combinations(sorted(servers), 2):
            candidates.add(pair)

    for first, second in sorted(candidates):
        weight = overlap_ratio_product(windows_of[first], windows_of[second])
        if weight >= config.min_edge_weight:
            graph.add_edge(first, second, weight)
    return graph
