"""Sparse-matrix client-similarity construction (Section VI, Overhead).

"The most expensive part of SMASH is on similarity calculation, whose
complexity is N^2 ... However, the complexity of similarity calculation
can be significantly reduced by sparse matrix multiplication [Buluc &
Gilbert]."

This module is that remedy: build the binary client-by-server incidence
matrix ``A`` (CSR), compute the co-client count matrix ``C = A^T A`` with
scipy's sparse multiplication, and convert each non-zero ``C[i, j]`` into
the eq.-1 weight ``(C_ij / |C_i|) (C_ij / |C_j|)``.  The result is
identical to :func:`repro.core.dimensions.client.build_client_graph`
(asserted by a property test); on large traces the multiplication is
considerably faster than the pure-Python pair accumulation.
"""

from __future__ import annotations

import numpy as np

from repro.config import DimensionConfig
from repro.graph.wgraph import WeightedGraph
from repro.httplog.trace import HttpTrace

try:  # scipy is an optional accelerator, not a hard dependency.
    from scipy import sparse as _sparse
except ImportError:  # pragma: no cover - exercised only without scipy
    _sparse = None


def scipy_available() -> bool:
    """Whether the sparse accelerator can be used in this environment."""
    return _sparse is not None


def build_client_graph_sparse(
    trace: HttpTrace, config: DimensionConfig | None = None
) -> WeightedGraph:
    """Sparse-multiplication equivalent of ``build_client_graph``.

    Raises ``RuntimeError`` when scipy is unavailable; callers that want
    automatic fallback should check :func:`scipy_available` first.
    """
    if _sparse is None:  # pragma: no cover - exercised only without scipy
        raise RuntimeError("scipy is required for the sparse client builder")
    config = config or DimensionConfig()
    floor = max(config.min_edge_weight, config.client_min_edge_weight)

    clients_by_server = trace.clients_by_server
    servers = sorted(clients_by_server)
    clients = sorted(trace.servers_by_client)
    graph = WeightedGraph()
    for server in servers:
        graph.add_node(server)
    if len(servers) < 2 or not clients:
        return graph

    server_index = {server: i for i, server in enumerate(servers)}
    client_index = {client: i for i, client in enumerate(clients)}

    rows = []
    cols = []
    for server, client_set in clients_by_server.items():
        column = server_index[server]
        for client in client_set:
            rows.append(client_index[client])
            cols.append(column)
    incidence = _sparse.csr_matrix(
        (np.ones(len(rows), dtype=np.float64), (rows, cols)),
        shape=(len(clients), len(servers)),
    )

    # C[i, j] = number of clients shared by servers i and j.
    common = (incidence.T @ incidence).tocoo()
    degree = np.asarray(incidence.sum(axis=0)).ravel()  # |C_i| per server

    for i, j, count in zip(common.row, common.col, common.data):
        if i >= j:  # visit each unordered pair once, skip the diagonal
            continue
        weight = (count / degree[i]) * (count / degree[j])
        if weight >= floor:
            graph.add_edge(servers[i], servers[j], float(weight))
    return graph
