"""URI-file similarity (Section III-B2, eqs. 2-7, Appendix B).

Per-file similarity:

* filenames of length <= ``len`` (paper: 25) must match **exactly**
  (short names are usually not obfuscated);
* longer filenames are compared by character-frequency cosine and are
  similar when ``cos(theta) > 0.8`` (the Figure-4 obfuscation case).

Per-server similarity (eq. 7) is the product of the two directed
mean-of-max terms:

    File(Si, Sj) = mean_m( max_n sim(f_m, f_n) ) × mean_n( max_m sim(f_n, f_m) )

Implementation notes
--------------------
* A mixed short/long comparison is exact-match by the short-name rule,
  and two different-length strings are never equal, so only long-long
  pairs ever go through the cosine.
* Ubiquitous filenames (present on more than ``max_file_server_fraction``
  of all servers — ``index.html`` and friends) carry no campaign signal
  and are excluded from *candidate generation* and from the per-server
  file inventories used in eq. 7; without this, the inverted index would
  enumerate O(N^2) benign pairs.
* Candidate pairs come from interned-id pair accumulation over the
  short-name posting lists and the long-name cosine families (union-find
  over matches); a filename shared below the ubiquity threshold is this
  dimension's heavy hitter, gated by ``config.max_group_size`` (off by
  default).
"""

from __future__ import annotations

from collections import defaultdict
from itertools import chain, combinations

from repro.config import DimensionConfig
from repro.core.interning import PairStats, accumulate_pair_counts
from repro.graph.csr import new_graph
from repro.graph.wgraph import WeightedGraph
from repro.httplog.trace import HttpTrace
from repro.util.text import charset_cosine


def filename_similarity(
    first: str, second: str, config: DimensionConfig | None = None
) -> float:
    """Per-file similarity sim(fi, fj) of eqs. 2-6 (returns 0.0 or 1.0)."""
    config = config or DimensionConfig()
    cutoff = config.filename_length_cutoff
    if len(first) <= cutoff or len(second) <= cutoff:
        return 1.0 if first == second else 0.0
    if charset_cosine(first, second) > config.filename_cosine_threshold:
        return 1.0
    return 0.0


def file_similarity(
    files_a: frozenset[str] | set[str],
    files_b: frozenset[str] | set[str],
    config: DimensionConfig | None = None,
) -> float:
    """Eq. 7 between two servers' file inventories."""
    config = config or DimensionConfig()
    if not files_a or not files_b:
        return 0.0
    cutoff = config.filename_length_cutoff
    short_a = {f for f in files_a if len(f) <= cutoff}
    short_b = {f for f in files_b if len(f) <= cutoff}
    long_a = [f for f in files_a if len(f) > cutoff]
    long_b = [f for f in files_b if len(f) > cutoff]

    def directed(
        short_from: set[str],
        long_from: list[str],
        short_to: set[str],
        long_to: list[str],
        total: int,
    ) -> float:
        matched = len(short_from & short_to)
        for name in long_from:
            if any(
                charset_cosine(name, other) > config.filename_cosine_threshold
                for other in long_to
            ):
                matched += 1
        return matched / total

    forward = directed(short_a, long_a, short_b, long_b, len(files_a))
    backward = directed(short_b, long_b, short_a, long_a, len(files_b))
    return forward * backward


def build_urifile_graph(
    trace: HttpTrace, config: DimensionConfig | None = None, accumulate=None
) -> WeightedGraph:
    """Build the URI-file similarity graph for *trace*."""
    config = config or DimensionConfig()
    accumulate = accumulate or accumulate_pair_counts
    files_by_server = trace.files_by_server
    # Canonical node order (see build_client_graph): sorted, not set order.
    ordered = sorted(files_by_server)
    graph = new_graph(ordered, config.use_csr)
    width = len(ordered)
    if width < 2:
        return graph
    index = {server: i for i, server in enumerate(ordered)}

    # Identify ubiquitous filenames to ignore.
    server_count_of_file: dict[str, int] = defaultdict(int)
    for files in files_by_server.values():
        for filename in files:
            server_count_of_file[filename] += 1
    max_servers = config.max_file_server_fraction * width
    ubiquitous = {
        filename
        for filename, count in server_count_of_file.items()
        if count > max_servers
    }

    effective: dict[str, frozenset[str]] = {
        server: frozenset(f for f in files if f not in ubiquitous)
        for server, files in files_by_server.items()
    }

    cutoff = config.filename_length_cutoff
    # Posting lists: exact short names, and long names for the cosine
    # families below.
    ids_by_file: dict[str, list[int]] = defaultdict(list)
    long_names: dict[str, list[int]] = defaultdict(list)
    for server in ordered:
        server_id = index[server]
        for filename in effective[server]:
            if len(filename) <= cutoff:
                ids_by_file[filename].append(server_id)
            else:
                long_names[filename].append(server_id)

    # Long-name charset families: cluster long names by cosine (union-find
    # over matches), then each family's servers form one group.  Every
    # unordered long-name pair is compared here exactly once; the
    # verdicts are kept so the per-pair eq.-7 weights below never have to
    # run a cosine again.
    threshold = config.filename_cosine_threshold
    names = sorted(long_names)
    parent = {name: name for name in names}

    def find(name: str) -> str:
        while parent[name] != name:
            parent[name] = parent[parent[name]]
            name = parent[name]
        return name

    similar_pairs: set[tuple[str, str]] = set()
    for first, second in combinations(names, 2):
        if charset_cosine(first, second) > threshold:
            parent[find(first)] = find(second)
            similar_pairs.add((first, second))
    # A name compared against itself (two servers sharing one long
    # filename) goes through the same cosine predicate, not an equality
    # shortcut: with threshold == 1.0 even identical names don't match.
    self_similar = {
        name: charset_cosine(name, name) > threshold for name in names
    }
    families: dict[str, set[int]] = defaultdict(set)
    for name in names:
        families[find(name)].update(long_names[name])

    stats = PairStats()
    pair_common = accumulate(
        chain(
            (sorted(group) for group in ids_by_file.values()),
            (sorted(group) for group in families.values()),
        ),
        width,
        cap=config.max_group_size,
        stats=stats,
        auto_cap=config.auto_cap_pairs,
    )

    # Per-server eq.-7 inputs, split once instead of once per pair.
    split_of: dict[int, tuple[set[str], list[str], int]] = {}
    for server in ordered:
        files = effective[server]
        if files:
            split_of[index[server]] = (
                {f for f in files if len(f) <= cutoff},
                [f for f in files if len(f) > cutoff],
                len(files),
            )

    def long_name_matches(name: str, long_to: list[str]) -> bool:
        for other in long_to:
            if name == other:
                if self_similar[name]:
                    return True
            elif (
                (name, other) if name < other else (other, name)
            ) in similar_pairs:
                return True
        return False

    def directed(
        short_from: set[str],
        long_from: list[str],
        short_to: set[str],
        long_to: list[str],
        total: int,
    ) -> float:
        matched = len(short_from & short_to)
        for name in long_from:
            if long_name_matches(name, long_to):
                matched += 1
        return matched / total

    floor = config.min_edge_weight

    def edges():
        for key in sorted(pair_common):
            first_id, second_id = divmod(key, width)
            short_a, long_a, total_a = split_of[first_id]
            short_b, long_b, total_b = split_of[second_id]
            # eq. 7 with the same matched counts file_similarity computes;
            # only the cosine verdicts come from the precomputed table.
            weight = directed(short_a, long_a, short_b, long_b, total_a) * directed(
                short_b, long_b, short_a, long_a, total_b
            )
            if weight >= floor:
                yield first_id, second_id, weight

    graph.add_sorted_edges(edges())
    graph.build_stats = {
        "dimension": "urifile",
        "ubiquitous_files": len(ubiquitous),
        "long_name_families": len(families),
        **stats.to_dict(),
    }
    return graph
