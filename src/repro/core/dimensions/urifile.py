"""URI-file similarity (Section III-B2, eqs. 2-7, Appendix B).

Per-file similarity:

* filenames of length <= ``len`` (paper: 25) must match **exactly**
  (short names are usually not obfuscated);
* longer filenames are compared by character-frequency cosine and are
  similar when ``cos(theta) > 0.8`` (the Figure-4 obfuscation case).

Per-server similarity (eq. 7) is the product of the two directed
mean-of-max terms:

    File(Si, Sj) = mean_m( max_n sim(f_m, f_n) ) × mean_n( max_m sim(f_n, f_m) )

Implementation notes
--------------------
* A mixed short/long comparison is exact-match by the short-name rule,
  and two different-length strings are never equal, so only long-long
  pairs ever go through the cosine.
* Ubiquitous filenames (present on more than ``max_file_server_fraction``
  of all servers — ``index.html`` and friends) carry no campaign signal
  and are excluded from *candidate generation* and from the per-server
  file inventories used in eq. 7; without this, the inverted index would
  enumerate O(N^2) benign pairs.
"""

from __future__ import annotations

from collections import defaultdict
from itertools import combinations

from repro.config import DimensionConfig
from repro.graph.wgraph import WeightedGraph
from repro.httplog.trace import HttpTrace
from repro.util.text import charset_cosine


def filename_similarity(
    first: str, second: str, config: DimensionConfig | None = None
) -> float:
    """Per-file similarity sim(fi, fj) of eqs. 2-6 (returns 0.0 or 1.0)."""
    config = config or DimensionConfig()
    cutoff = config.filename_length_cutoff
    if len(first) <= cutoff or len(second) <= cutoff:
        return 1.0 if first == second else 0.0
    if charset_cosine(first, second) > config.filename_cosine_threshold:
        return 1.0
    return 0.0


def file_similarity(
    files_a: frozenset[str] | set[str],
    files_b: frozenset[str] | set[str],
    config: DimensionConfig | None = None,
) -> float:
    """Eq. 7 between two servers' file inventories."""
    config = config or DimensionConfig()
    if not files_a or not files_b:
        return 0.0
    cutoff = config.filename_length_cutoff
    short_a = {f for f in files_a if len(f) <= cutoff}
    short_b = {f for f in files_b if len(f) <= cutoff}
    long_a = [f for f in files_a if len(f) > cutoff]
    long_b = [f for f in files_b if len(f) > cutoff]

    def directed(
        short_from: set[str],
        long_from: list[str],
        short_to: set[str],
        long_to: list[str],
        total: int,
    ) -> float:
        matched = len(short_from & short_to)
        for name in long_from:
            if any(
                charset_cosine(name, other) > config.filename_cosine_threshold
                for other in long_to
            ):
                matched += 1
        return matched / total

    forward = directed(short_a, long_a, short_b, long_b, len(files_a))
    backward = directed(short_b, long_b, short_a, long_a, len(files_b))
    return forward * backward


def build_urifile_graph(
    trace: HttpTrace, config: DimensionConfig | None = None
) -> WeightedGraph:
    """Build the URI-file similarity graph for *trace*."""
    config = config or DimensionConfig()
    files_by_server = trace.files_by_server
    num_servers = len(files_by_server)
    graph = WeightedGraph()
    # Canonical node order (see build_client_graph): sorted, not set order.
    for server in sorted(files_by_server):
        graph.add_node(server)
    if num_servers < 2:
        return graph

    # Identify ubiquitous filenames to ignore.
    server_count_of_file: dict[str, int] = defaultdict(int)
    for files in files_by_server.values():
        for filename in files:
            server_count_of_file[filename] += 1
    max_servers = config.max_file_server_fraction * num_servers
    ubiquitous = {
        filename
        for filename, count in server_count_of_file.items()
        if count > max_servers
    }

    effective: dict[str, frozenset[str]] = {
        server: frozenset(f for f in files if f not in ubiquitous)
        for server, files in files_by_server.items()
    }

    cutoff = config.filename_length_cutoff
    # Candidate pairs from exact short-name matches.
    servers_by_file: dict[str, set[str]] = defaultdict(set)
    for server, files in effective.items():
        for filename in files:
            if len(filename) <= cutoff:
                servers_by_file[filename].add(server)

    candidates: set[tuple[str, str]] = set()
    for servers in servers_by_file.values():
        if len(servers) < 2:
            continue
        for pair in combinations(sorted(servers), 2):
            candidates.add(pair)

    # Candidate pairs from long-name charset families: cluster long names
    # by cosine (union-find over matches), then pair up their servers.
    long_names: dict[str, set[str]] = defaultdict(set)  # name -> servers
    for server, files in effective.items():
        for filename in files:
            if len(filename) > cutoff:
                long_names[filename].add(server)
    names = sorted(long_names)
    parent = {name: name for name in names}

    def find(name: str) -> str:
        while parent[name] != name:
            parent[name] = parent[parent[name]]
            name = parent[name]
        return name

    for first, second in combinations(names, 2):
        if charset_cosine(first, second) > config.filename_cosine_threshold:
            parent[find(first)] = find(second)
    families: dict[str, set[str]] = defaultdict(set)
    for name in names:
        families[find(name)] |= long_names[name]
    for servers in families.values():
        if len(servers) < 2:
            continue
        for pair in combinations(sorted(servers), 2):
            candidates.add(pair)

    # Sorted candidate iteration: `candidates` is a set, so iterating it
    # directly would insert edges in hash order.
    for first, second in sorted(candidates):
        weight = file_similarity(effective[first], effective[second], config)
        if weight >= config.min_edge_weight:
            graph.add_edge(first, second, weight)
    return graph
