"""URI parameter-pattern similarity (the paper's stated extension).

Section V-A2's false-negative analysis finds 40 malicious servers
(Cycbot, Fake AV, Tidserv) that share **no** secondary dimension — but
"most of those servers share the same URI parameters pattern.  Thus, if
we extend our URI file dimension to consider the parameter pattern, we
could detect these threats."

This dimension makes that extension concrete: a server's *parameter
patterns* are the sorted tuples of query-parameter names it receives
(e.g. Bagle's ``("e", "id", "p")``); two servers are similar by the
overlap-ratio product of their pattern sets (the eq.-1/eq.-8 form).

Disabled by default so the stock pipeline matches the paper's published
system; enable with::

    SmashConfig(enabled_secondary_dimensions=("urifile", "ipset", "whois", "urlparam"))

Ubiquitous patterns (single generic names like ``("id",)`` appearing on a
large share of servers) never *generate* candidate pairs, mirroring the
URI-file dimension's ubiquity rule, but they still count toward the
overlap of pairs found through rarer patterns.  Candidate pairs come
from interned-id pair accumulation over the rare patterns' posting
lists; the ubiquitous remainder of each overlap is added back per pair
from the (tiny) per-server ubiquitous-pattern sets, reproducing the
full-set overlap exactly.
"""

from __future__ import annotations

from collections import defaultdict

from repro.config import DimensionConfig
from repro.core.interning import PairStats, accumulate_pair_counts, add_overlap_edges
from repro.graph.csr import new_graph
from repro.graph.wgraph import WeightedGraph
from repro.httplog.trace import HttpTrace

Pattern = tuple[str, ...]


def parameter_patterns_by_server(trace: HttpTrace) -> dict[str, frozenset[Pattern]]:
    """server -> set of sorted query-parameter-name tuples observed."""
    # An index-only trace (out-of-core sharded mine) carries the
    # shard-merged pattern index instead of raw requests.
    injected = getattr(trace, "_patterns_by_server", None)
    if injected is not None:
        return injected
    patterns: dict[str, set[Pattern]] = defaultdict(set)
    for request in trace:
        names = request.parameter_names
        if names:
            patterns[request.host].add(names)
    return {server: frozenset(found) for server, found in patterns.items()}


def build_urlparam_graph(
    trace: HttpTrace,
    config: DimensionConfig | None = None,
    accumulate=None,
    patterns_of: dict[str, frozenset[Pattern]] | None = None,
) -> WeightedGraph:
    """Build the parameter-pattern similarity graph for *trace*.

    Servers with no parameterised requests become isolated nodes.
    *patterns_of* short-circuits the request scan with a precomputed
    (e.g. shard-merged) pattern index; it must equal what
    :func:`parameter_patterns_by_server` would return for *trace*.
    """
    config = config or DimensionConfig()
    accumulate = accumulate or accumulate_pair_counts
    if patterns_of is None:
        patterns_of = parameter_patterns_by_server(trace)
    # Canonical node order: trace.servers is a frozenset, so iterating it
    # directly would insert nodes in hash order.
    ordered = sorted(trace.servers)
    graph = new_graph(ordered, config.use_csr)
    width = len(ordered)
    if width < 2:
        return graph
    index = {server: i for i, server in enumerate(ordered)}

    ids_by_pattern: dict[Pattern, list[int]] = defaultdict(list)
    for server, patterns in patterns_of.items():
        server_id = index[server]
        for pattern in patterns:
            ids_by_pattern[pattern].append(server_id)

    # Split posting lists at the ubiquity threshold: rare patterns drive
    # candidate generation, ubiquitous ones only correct the overlap.
    max_servers = config.max_file_server_fraction * width
    rare_groups: list[list[int]] = []
    heavy_of: dict[int, set[int]] = {}
    for heavy_index, (pattern, members) in enumerate(ids_by_pattern.items()):
        if len(members) > max_servers:
            for server_id in members:
                heavy_of.setdefault(server_id, set()).add(heavy_index)
        else:
            rare_groups.append(sorted(members))

    stats = PairStats()
    pair_common = accumulate(
        rare_groups,
        width,
        cap=config.max_group_size,
        stats=stats,
        auto_cap=config.auto_cap_pairs,
    )

    heavy_sets: dict[int, frozenset[int]] = {
        server_id: frozenset(found) for server_id, found in heavy_of.items()
    }
    sizes = {
        index[server]: len(patterns) for server, patterns in patterns_of.items()
    }
    add_overlap_edges(
        graph, pair_common, width, sizes, config.min_edge_weight, heavy_sets
    )
    graph.build_stats = {
        "dimension": "urlparam",
        "heavy_postings": len(ids_by_pattern) - len(rare_groups),
        **stats.to_dict(),
    }
    return graph
