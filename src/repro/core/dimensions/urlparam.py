"""URI parameter-pattern similarity (the paper's stated extension).

Section V-A2's false-negative analysis finds 40 malicious servers
(Cycbot, Fake AV, Tidserv) that share **no** secondary dimension — but
"most of those servers share the same URI parameters pattern.  Thus, if
we extend our URI file dimension to consider the parameter pattern, we
could detect these threats."

This dimension makes that extension concrete: a server's *parameter
patterns* are the sorted tuples of query-parameter names it receives
(e.g. Bagle's ``("e", "id", "p")``); two servers are similar by the
overlap-ratio product of their pattern sets (the eq.-1/eq.-8 form).

Disabled by default so the stock pipeline matches the paper's published
system; enable with::

    SmashConfig(enabled_secondary_dimensions=("urifile", "ipset", "whois", "urlparam"))

Ubiquitous patterns (single generic names like ``("id",)`` appearing on a
large share of servers) are ignored, mirroring the URI-file dimension's
ubiquity rule.
"""

from __future__ import annotations

from collections import defaultdict
from itertools import combinations

from repro.config import DimensionConfig
from repro.graph.wgraph import WeightedGraph
from repro.httplog.trace import HttpTrace
from repro.util.text import overlap_ratio_product

Pattern = tuple[str, ...]


def parameter_patterns_by_server(trace: HttpTrace) -> dict[str, frozenset[Pattern]]:
    """server -> set of sorted query-parameter-name tuples observed."""
    patterns: dict[str, set[Pattern]] = defaultdict(set)
    for request in trace:
        names = request.parameter_names
        if names:
            patterns[request.host].add(names)
    return {server: frozenset(found) for server, found in patterns.items()}


def build_urlparam_graph(
    trace: HttpTrace, config: DimensionConfig | None = None
) -> WeightedGraph:
    """Build the parameter-pattern similarity graph for *trace*.

    Servers with no parameterised requests become isolated nodes.
    """
    config = config or DimensionConfig()
    patterns_of = parameter_patterns_by_server(trace)
    graph = WeightedGraph()
    # Canonical node order: trace.servers is a frozenset, so iterating it
    # directly would insert nodes in hash order.
    for server in sorted(trace.servers):
        graph.add_node(server)
    num_servers = len(trace.servers)
    if num_servers < 2:
        return graph

    servers_by_pattern: dict[Pattern, set[str]] = defaultdict(set)
    for server, patterns in patterns_of.items():
        for pattern in patterns:
            servers_by_pattern[pattern].add(server)

    max_servers = config.max_file_server_fraction * num_servers
    candidates: set[tuple[str, str]] = set()
    for pattern, servers in servers_by_pattern.items():
        if len(servers) < 2 or len(servers) > max_servers:
            continue
        for pair in combinations(sorted(servers), 2):
            candidates.add(pair)

    for first, second in sorted(candidates):
        weight = overlap_ratio_product(patterns_of[first], patterns_of[second])
        if weight >= config.min_edge_weight:
            graph.add_edge(first, second, weight)
    return graph
