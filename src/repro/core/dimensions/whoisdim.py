"""Whois similarity (Section III-B2, Figure 5).

Two registrations are associated when they share **at least two** of the
comparable fields (registrant, address, email, phone, name servers); the
similarity is then

    Whois(Si, Sj) = |shared fields| / |union of present fields|

The two-field minimum exists "to avoid the case that two servers only
share the domain name registration proxy".  We take that one step
further: registrations made through a privacy proxy carry the *proxy's*
contact details, so their contact fields are masked out entirely and only
infrastructure fields (name servers) remain comparable — two proxied
domains never associate on the proxy's identity.

IP-literal servers have no registration and never join this graph.
"""

from __future__ import annotations

from collections import defaultdict
from itertools import combinations

from repro.config import DimensionConfig
from repro.graph.wgraph import WeightedGraph
from repro.httplog.trace import HttpTrace
from repro.whois.record import WHOIS_FIELDS, WhoisRecord
from repro.whois.registry import WhoisRegistry

#: Contact fields masked when the registration goes through a proxy.
_CONTACT_FIELDS = ("registrant", "address", "email", "phone")

#: Posting lists longer than this are skipped during candidate generation:
#: a value shared by hundreds of registrations (a big hoster's name
#: servers) cannot by itself satisfy the two-field rule, and any pair that
#: *also* shares a rarer field is found through that field's list.
_MAX_POSTING_LIST = 150


def comparable_fields(record: WhoisRecord) -> dict[str, object]:
    """Field name -> value after proxy masking; empty values omitted."""
    fields: dict[str, object] = {}
    for field_name in WHOIS_FIELDS:
        if record.is_proxy and field_name in _CONTACT_FIELDS:
            continue
        value = record.field_value(field_name)
        if value:
            fields[field_name] = value
    return fields


def whois_similarity(
    first: WhoisRecord,
    second: WhoisRecord,
    config: DimensionConfig | None = None,
) -> float:
    """Whois similarity of two records; 0.0 below the shared-field minimum."""
    config = config or DimensionConfig()
    fields_a = comparable_fields(first)
    fields_b = comparable_fields(second)
    shared = sum(
        1
        for field_name, value in fields_a.items()
        if fields_b.get(field_name) == value
    )
    if shared < config.whois_min_shared_fields:
        return 0.0
    union = len(set(fields_a) | set(fields_b))
    if union == 0:
        return 0.0
    return shared / union


def build_whois_graph(
    trace: HttpTrace,
    whois: WhoisRegistry,
    config: DimensionConfig | None = None,
) -> WeightedGraph:
    """Build the Whois similarity graph for the servers of *trace*."""
    config = config or DimensionConfig()
    graph = WeightedGraph()
    records: dict[str, WhoisRecord] = {}
    # Canonical node order: trace.servers is a frozenset, so iterating it
    # directly would insert nodes in hash order.
    for server in sorted(trace.servers):
        graph.add_node(server)
        record = whois.lookup(server)
        if record is not None:
            records[server] = record

    # Inverted index: (field, value) -> servers.
    postings: dict[tuple[str, object], set[str]] = defaultdict(set)
    for server, record in records.items():
        for field_name, value in comparable_fields(record).items():
            postings[(field_name, value)].add(server)

    candidates: set[tuple[str, str]] = set()
    for servers in postings.values():
        if len(servers) < 2 or len(servers) > _MAX_POSTING_LIST:
            continue
        for pair in combinations(sorted(servers), 2):
            candidates.add(pair)

    for first, second in sorted(candidates):
        weight = whois_similarity(records[first], records[second], config)
        if weight >= max(config.min_edge_weight, 1e-12):
            graph.add_edge(first, second, weight)
    return graph
