"""Whois similarity (Section III-B2, Figure 5).

Two registrations are associated when they share **at least two** of the
comparable fields (registrant, address, email, phone, name servers); the
similarity is then

    Whois(Si, Sj) = |shared fields| / |union of present fields|

The two-field minimum exists "to avoid the case that two servers only
share the domain name registration proxy".  We take that one step
further: registrations made through a privacy proxy carry the *proxy's*
contact details, so their contact fields are masked out entirely and only
infrastructure fields (name servers) remain comparable — two proxied
domains never associate on the proxy's identity.

IP-literal servers have no registration and never join this graph.

Candidate pairs come from interned-id pair accumulation over the
``(field, value)`` posting lists; similarity is still computed per pair
from the two records (a handful of field comparisons).
"""

from __future__ import annotations

from collections import defaultdict

from repro.config import DimensionConfig
from repro.core.interning import PairStats, accumulate_pair_counts
from repro.graph.csr import new_graph
from repro.graph.wgraph import WeightedGraph
from repro.httplog.trace import HttpTrace
from repro.whois.record import WHOIS_FIELDS, WhoisRecord
from repro.whois.registry import WhoisRegistry

#: Contact fields masked when the registration goes through a proxy.
_CONTACT_FIELDS = ("registrant", "address", "email", "phone")

#: Posting lists longer than this are skipped during candidate generation:
#: a value shared by hundreds of registrations (a big hoster's name
#: servers) cannot by itself satisfy the two-field rule, and any pair that
#: *also* shares a rarer field is found through that field's list.
_MAX_POSTING_LIST = 150


def comparable_fields(record: WhoisRecord) -> dict[str, object]:
    """Field name -> value after proxy masking; empty values omitted."""
    fields: dict[str, object] = {}
    for field_name in WHOIS_FIELDS:
        if record.is_proxy and field_name in _CONTACT_FIELDS:
            continue
        value = record.field_value(field_name)
        if value:
            fields[field_name] = value
    return fields


def _similarity_from_fields(
    fields_a: dict[str, object],
    fields_b: dict[str, object],
    min_shared_fields: int,
) -> float:
    shared = sum(
        1
        for field_name, value in fields_a.items()
        if fields_b.get(field_name) == value
    )
    if shared < min_shared_fields:
        return 0.0
    union = len(set(fields_a) | set(fields_b))
    if union == 0:
        return 0.0
    return shared / union


def whois_similarity(
    first: WhoisRecord,
    second: WhoisRecord,
    config: DimensionConfig | None = None,
) -> float:
    """Whois similarity of two records; 0.0 below the shared-field minimum."""
    config = config or DimensionConfig()
    return _similarity_from_fields(
        comparable_fields(first),
        comparable_fields(second),
        config.whois_min_shared_fields,
    )


def build_whois_graph(
    trace: HttpTrace,
    whois: WhoisRegistry,
    config: DimensionConfig | None = None,
    accumulate=None,
) -> WeightedGraph:
    """Build the Whois similarity graph for the servers of *trace*."""
    config = config or DimensionConfig()
    accumulate = accumulate or accumulate_pair_counts
    # Canonical node order: trace.servers is a frozenset, so iterating it
    # directly would insert nodes in hash order.
    ordered = sorted(trace.servers)
    graph = new_graph(ordered, config.use_csr)
    width = len(ordered)
    records: dict[int, WhoisRecord] = {}
    for server_id, server in enumerate(ordered):
        record = whois.lookup(server)
        if record is not None:
            records[server_id] = record

    # Comparable fields are computed once per record here and reused for
    # every candidate pair the record participates in.
    fields_of: dict[int, dict[str, object]] = {
        server_id: comparable_fields(record)
        for server_id, record in records.items()
    }

    # Inverted index: (field, value) -> server ids (ascending by build).
    postings: dict[tuple[str, object], list[int]] = defaultdict(list)
    for server_id in sorted(fields_of):
        for field_name, value in fields_of[server_id].items():
            postings[(field_name, value)].append(server_id)

    cap = config.max_group_size
    effective_cap = min(cap, _MAX_POSTING_LIST) if cap else _MAX_POSTING_LIST
    stats = PairStats()
    pair_common = accumulate(
        postings.values(), width, cap=effective_cap, stats=stats
    )

    floor = max(config.min_edge_weight, 1e-12)
    min_shared = config.whois_min_shared_fields

    def edges():
        for key in sorted(pair_common):
            first, second = divmod(key, width)
            weight = _similarity_from_fields(
                fields_of[first], fields_of[second], min_shared
            )
            if weight >= floor:
                yield first, second, weight

    graph.add_sorted_edges(edges())
    graph.build_stats = {"dimension": "whois", **stats.to_dict()}
    return graph
