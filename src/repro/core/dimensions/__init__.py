"""Similarity dimensions (Section III-B).

Each dimension builds a weighted similarity graph over the preprocessed
servers; ASH mining runs Louvain on each graph independently.

* :mod:`client` — the main dimension (eq. 1);
* :mod:`urifile` — URI-file similarity (eqs. 2-7);
* :mod:`ipset` — IP-address-set similarity (eq. 8);
* :mod:`whoisdim` — Whois field similarity.

The registry in :func:`secondary_builders` is the extension point the
paper describes ("SMASH, as an extensible system, can easily incorporate
new dimensions").
"""

from repro.core.dimensions.client import build_client_graph
from repro.core.dimensions.ipset import build_ipset_graph
from repro.core.dimensions.urifile import build_urifile_graph, file_similarity
from repro.core.dimensions.whoisdim import build_whois_graph, whois_similarity

__all__ = [
    "build_client_graph",
    "build_ipset_graph",
    "build_urifile_graph",
    "build_whois_graph",
    "file_similarity",
    "secondary_builders",
    "whois_similarity",
]


def secondary_builders() -> dict[str, object]:
    """Name -> builder for the built-in secondary dimensions.

    Builders share the signature ``(trace, config, *, whois=None)`` except
    where noted; :class:`repro.core.pipeline.SmashPipeline` adapts them.
    """
    return {
        "urifile": build_urifile_graph,
        "ipset": build_ipset_graph,
        "whois": build_whois_graph,
    }
