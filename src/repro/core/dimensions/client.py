"""The main dimension: client-set similarity (Section III-B1, eq. 1).

    Client(Si, Sj) = |Ci ∩ Cj| / |Ci|  ×  |Ci ∩ Cj| / |Cj|

Two servers are similar when their shared clients are important to *both*
of them.  The graph is built from the client -> servers inverted index:
only server pairs that actually share a client are enumerated, which keeps
construction near-linear in practice (the popular servers that would
create quadratic blow-ups were removed by the IDF filter).
"""

from __future__ import annotations

from collections import Counter

from repro.config import DimensionConfig
from repro.graph.wgraph import WeightedGraph
from repro.httplog.trace import HttpTrace


def client_similarity(
    clients_a: frozenset[str], clients_b: frozenset[str]
) -> float:
    """Eq. 1 for two explicit client sets."""
    if not clients_a or not clients_b:
        return 0.0
    common = len(clients_a & clients_b)
    return (common / len(clients_a)) * (common / len(clients_b))


def build_client_graph(
    trace: HttpTrace, config: DimensionConfig | None = None
) -> WeightedGraph:
    """Build the main-dimension similarity graph for *trace*.

    Every server of the trace becomes a node (so ASH mining can report
    servers "dropped by the main dimension"); edges carry eq. 1 weights
    and pairs below ``config.min_edge_weight`` are omitted.
    """
    config = config or DimensionConfig()
    clients_by_server = trace.clients_by_server
    graph = WeightedGraph()
    # Canonical node/edge insertion order: the graph's iteration order (and
    # the float accumulation order of its total weight) is a function of
    # the trace contents, not of trace order or set hash order.
    for server in sorted(clients_by_server):
        graph.add_node(server)

    pair_common: Counter[tuple[str, str]] = Counter()
    for servers in trace.servers_by_client.values():
        members = sorted(servers)
        for i, first in enumerate(members):
            for second in members[i + 1:]:
                pair_common[(first, second)] += 1

    floor = max(config.min_edge_weight, config.client_min_edge_weight)
    for (first, second), common in sorted(pair_common.items()):
        weight = (common / len(clients_by_server[first])) * (
            common / len(clients_by_server[second])
        )
        if weight >= floor:
            graph.add_edge(first, second, weight)
    return graph
