"""The main dimension: client-set similarity (Section III-B1, eq. 1).

    Client(Si, Sj) = |Ci ∩ Cj| / |Ci|  ×  |Ci ∩ Cj| / |Cj|

Two servers are similar when their shared clients are important to *both*
of them.  The graph is built from the client -> servers inverted index:
server ids are interned once (dense ints in canonical order), each
client's server set becomes an ascending id group, and shared-client
counts are accumulated per pair (:func:`accumulate_pair_counts`) — the
numerator of eq. 1 falls out arithmetically, with no per-pair set
intersections and no per-group candidate materialisation.  The popular
servers that would create quadratic blow-ups were removed by the IDF
filter; ``config.max_group_size`` (off by default) additionally gates
pathologically busy clients.
"""

from __future__ import annotations

from repro.config import DimensionConfig
from repro.core.interning import PairStats, accumulate_pair_counts, add_overlap_edges
from repro.graph.csr import new_graph
from repro.graph.wgraph import WeightedGraph
from repro.httplog.trace import HttpTrace


def client_similarity(
    clients_a: frozenset[str], clients_b: frozenset[str]
) -> float:
    """Eq. 1 for two explicit client sets."""
    if not clients_a or not clients_b:
        return 0.0
    common = len(clients_a & clients_b)
    return (common / len(clients_a)) * (common / len(clients_b))


def build_client_graph_from_indices(
    clients_by_server: dict[str, frozenset[str]],
    servers_by_client: dict[str, frozenset[str]],
    config: DimensionConfig | None = None,
    accumulate=None,
) -> WeightedGraph:
    """Build the main-dimension graph from the two inverted indices.

    The pipeline calls this directly with the multi-client restriction of
    the preprocessed trace's indices — filtering a server namespace never
    changes a surviving server's client set, so deriving the restricted
    indices replaces materialising a filtered trace.

    *accumulate* swaps the pair-count accumulator (default
    :func:`~repro.core.interning.accumulate_pair_counts`); the sharded
    mine passes a partition-parallel drop-in with identical semantics.
    """
    config = config or DimensionConfig()
    accumulate = accumulate or accumulate_pair_counts
    # Canonical node order: ids mirror the sorted server namespace, so
    # ascending-id iteration is the canonical label iteration and the
    # graph qualifies for the Louvain index fast path.
    ordered = sorted(clients_by_server)
    graph = new_graph(ordered, config.use_csr)
    width = len(ordered)
    index = {server: i for i, server in enumerate(ordered)}
    sizes = [len(clients_by_server[server]) for server in ordered]

    groups = [
        sorted(index[server] for server in servers)
        for servers in servers_by_client.values()
    ]
    stats = PairStats()
    pair_common = accumulate(
        groups,
        width,
        cap=config.max_group_size,
        stats=stats,
        auto_cap=config.auto_cap_pairs,
    )

    floor = max(config.min_edge_weight, config.client_min_edge_weight)
    add_overlap_edges(graph, pair_common, width, sizes, floor)
    graph.build_stats = {"dimension": "client", **stats.to_dict()}
    return graph


def build_client_graph(
    trace: HttpTrace, config: DimensionConfig | None = None
) -> WeightedGraph:
    """Build the main-dimension similarity graph for *trace*.

    Every server of the trace becomes a node (so ASH mining can report
    servers "dropped by the main dimension"); edges carry eq. 1 weights
    and pairs below ``config.min_edge_weight`` are omitted.
    """
    return build_client_graph_from_indices(
        trace.clients_by_server, trace.servers_by_client, config
    )
