"""Configuration for the SMASH pipeline.

All tunables from the paper live here with the paper's defaults:

* IDF (popularity) filter threshold of **200 clients** (Appendix A).
* URI filename length cut-off ``len = 25`` and character-distribution cosine
  threshold ``0.8`` (Section III-B2, Appendix B).
* Whois similarity requires at least **2 shared fields** (Section III-B2).
* Suspiciousness-score sigmoid parameters ``mu = 4`` and ``sigma = 5.5``
  (Section III-C, footnote 6).
* Inference threshold ``thresh = 0.8`` for campaigns with more than one
  client and ``1.0`` for single-client campaigns (Sections V-A1, Appendix C).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

from repro.errors import ConfigError
from repro.util.parallel import DISPATCH_KINDS, EXECUTOR_KINDS


@dataclass(frozen=True)
class PreprocessConfig:
    """Parameters of the traffic-preprocessing stage (Section III-A)."""

    #: Servers contacted by more than this many distinct clients are
    #: considered globally popular and removed (Appendix A uses 200).
    idf_threshold: int = 200

    #: Aggregate fully-qualified domain names to their second-level domain
    #: (public-suffix aware).  Disabled only for ablation experiments.
    aggregate_second_level: bool = True

    #: Servers contacted by fewer clients than this are kept regardless; the
    #: paper keeps everything below the IDF threshold, i.e. minimum of 1.
    min_clients: int = 1

    def validate(self) -> None:
        if self.idf_threshold < 1:
            raise ConfigError("idf_threshold must be >= 1")
        if self.min_clients < 1:
            raise ConfigError("min_clients must be >= 1")


@dataclass(frozen=True)
class DimensionConfig:
    """Parameters shared by the similarity dimensions (Section III-B)."""

    #: Filenames with at most this many characters must match exactly;
    #: longer filenames are compared by character-frequency cosine
    #: (Appendix B selects 25).
    filename_length_cutoff: int = 25

    #: Cosine similarity threshold for long (possibly obfuscated) filenames.
    filename_cosine_threshold: float = 0.8

    #: Minimum number of identical Whois fields for two servers to be
    #: considered associated at all (avoids matching on a registration
    #: proxy alone).
    whois_min_shared_fields: int = 2

    #: Edges with similarity weight below this value are not added to the
    #: per-dimension similarity graphs.  A small floor drops the background
    #: of coincidental one-shared-client pairs between unrelated benign
    #: servers (their eq.-1 weight is ~1/|Ci||Cj|), which both keeps the
    #: graphs sparse and reproduces the paper's population of servers that
    #: "can not be correlated with other servers in client similarity"
    #: (Section V-C1).  Campaign members share most of their client sets,
    #: so their weights sit orders of magnitude above this floor.
    min_edge_weight: float = 2e-3

    #: Separate (higher) floor for the main dimension.  Benign servers
    #: constantly share the odd client by coincidence; with eq. 1 those
    #: pairs weigh ~1/(|Ci||Cj|), far below any same-campaign pair (bots
    #: make up most of a malicious server's client set, so campaign edges
    #: sit near 1.0).  Keeping the coincidence mesh would let Louvain fuse
    #: unrelated servers into giant flat communities whose density — the
    #: w_m weight of eq. 9 — is meaningless.  The paper's own data shows
    #: the same cut implicitly: 24,964 of ~35k servers are "dropped after
    #: the main dimension processing because they can not be correlated
    #: with other servers in client similarity" (Section V-C1).
    client_min_edge_weight: float = 0.1

    #: Ignore URI files that appear on more than this fraction of all
    #: servers (e.g. ``index.html`` or ``/``) when building the URI-file
    #: dimension; acts like the IDF filter but for filenames.
    max_file_server_fraction: float = 0.25

    #: Heavy-hitter gate for candidate generation: sharing groups (a
    #: client's servers, an IP's domains, a filename's servers, ...) with
    #: more than this many members are skipped during pair accumulation.
    #: ``0`` (the default) disables the gate, and the mined edge set is
    #: exactly the pre-interning one; a positive cap bounds the quadratic
    #: per-group cost deterministically at the price of missing edges
    #: that only manifest through capped groups (the same trade the
    #: ubiquity and posting-list rules already make).
    max_group_size: int = 0

    #: Load-adaptive heavy-hitter gate: when ``max_group_size`` is off
    #: and this budget is positive, pair accumulation inspects its own
    #: group-size distribution first and — only if the projected
    #: enumerated-pair count exceeds the budget — engages the largest
    #: group-size cap that fits it (see
    #: :func:`~repro.core.interning.resolve_auto_cap`).  A pure function
    #: of the groups themselves, so single-pass, parallel and sharded
    #: runs make the identical decision.  ``0`` (the default) disables
    #: auto-capping and reproduces the uncapped edge set exactly.
    auto_cap_pairs: int = 0

    #: Graph backend selector: ``None`` (the default) auto-detects and
    #: uses the numpy CSR backend when numpy is importable, ``False``
    #: forces the pure-python reference backend, ``True`` demands CSR
    #: (raising if numpy is missing).  Both backends produce
    #: byte-identical mining output, so this is an execution-strategy
    #: flag like ``SmashConfig.workers`` — excluded from equality,
    #: repr, and therefore the incremental-mining content signatures.
    use_csr: bool | None = field(default=None, compare=False, repr=False)

    def validate(self) -> None:
        if self.filename_length_cutoff < 1:
            raise ConfigError("filename_length_cutoff must be >= 1")
        if not 0.0 < self.filename_cosine_threshold <= 1.0:
            raise ConfigError("filename_cosine_threshold must be in (0, 1]")
        if self.whois_min_shared_fields < 1:
            raise ConfigError("whois_min_shared_fields must be >= 1")
        if self.min_edge_weight < 0.0:
            raise ConfigError("min_edge_weight must be >= 0")
        if self.client_min_edge_weight < 0.0:
            raise ConfigError("client_min_edge_weight must be >= 0")
        if not 0.0 < self.max_file_server_fraction <= 1.0:
            raise ConfigError("max_file_server_fraction must be in (0, 1]")
        if self.max_group_size < 0:
            raise ConfigError("max_group_size must be >= 0 (0 = no cap)")
        if self.auto_cap_pairs < 0:
            raise ConfigError("auto_cap_pairs must be >= 0 (0 = no auto cap)")


@dataclass(frozen=True)
class CorrelationConfig:
    """Parameters of ASH correlation and scoring (Section III-C)."""

    #: Location of the "S"-shaped normalisation Phi(x) = (1+erf((x-mu)/sigma))/2.
    #: The paper sets mu = 4 so that herds with fewer than four common
    #: servers receive a low score.
    mu: float = 4.0

    #: Steepness of the normalisation curve; the paper sets sigma = 5.5.
    sigma: float = 5.5

    #: Servers whose accumulated suspiciousness score falls below this
    #: threshold are removed from all ASHs.  Paper default for campaigns
    #: with more than one client.
    thresh: float = 0.8

    #: Threshold used for campaigns with a single involved client
    #: (Appendix C adjusts it to 1.0).
    single_client_thresh: float = 1.0

    def validate(self) -> None:
        if self.sigma <= 0.0:
            raise ConfigError("sigma must be > 0")
        if self.thresh < 0.0:
            raise ConfigError("thresh must be >= 0")
        if self.single_client_thresh < 0.0:
            raise ConfigError("single_client_thresh must be >= 0")


@dataclass(frozen=True)
class PruningConfig:
    """Parameters of the pruning stage (Section III-D)."""

    #: Collapse redirection chains onto their landing server.
    prune_redirection_groups: bool = True

    #: Collapse herds whose members are all referred by one landing server.
    prune_referrer_groups: bool = True

    #: Fraction of a herd that must share one referrer/landing server for
    #: the herd to count as a referrer/redirection group.
    group_share_fraction: float = 1.0

    def validate(self) -> None:
        if not 0.0 < self.group_share_fraction <= 1.0:
            raise ConfigError("group_share_fraction must be in (0, 1]")


@dataclass(frozen=True)
class LouvainConfig:
    """Parameters of the community-detection substrate."""

    #: Stop a Louvain level when the modularity gain falls below this value.
    min_modularity_gain: float = 1e-7

    #: Hard cap on the number of coarsening levels (safety valve; real
    #: graphs converge in a handful of levels).
    max_levels: int = 32

    #: Hard cap on local-move sweeps inside one level.
    max_sweeps: int = 64

    #: Seed for the node-visit shuffling inside Louvain; fixed for
    #: reproducibility.
    seed: int = 0

    #: Recursively re-run Louvain inside each community until no community
    #: splits further.  Plain modularity optimisation cannot resolve
    #: communities whose internal weight is below ~sqrt(2m) of the whole
    #: graph (the resolution limit), which at trace scale fuses small tight
    #: herds into loose neighbourhoods; local refinement removes that
    #: dependence on global graph size while leaving cliques intact
    #: (splitting a clique always lowers modularity).
    refine: bool = True

    #: Recursion depth cap for the refinement (each split strictly
    #: shrinks the community, so this is a safety valve only).
    max_refine_depth: int = 12

    #: Communities at or below this size are never refined further.
    min_refine_size: int = 4

    #: Communities whose induced subgraph is at least this dense are never
    #: split further: they already are the well-connected herds eq. 9's
    #: density weight is designed to reward, and splitting a quasi-clique
    #: whose edge weights merely vary (a campaign with background-visitor
    #: noise) would shred real herds.
    refine_density_stop: float = 0.5

    #: A refinement split is additionally accepted only when the
    #: community's internal Louvain run reaches at least this modularity —
    #: a small guard against splitting on numerical noise.
    refine_min_modularity: float = 0.1

    def validate(self) -> None:
        if self.min_modularity_gain < 0.0:
            raise ConfigError("min_modularity_gain must be >= 0")
        if self.max_levels < 1:
            raise ConfigError("max_levels must be >= 1")
        if self.max_sweeps < 1:
            raise ConfigError("max_sweeps must be >= 1")
        if self.max_refine_depth < 0:
            raise ConfigError("max_refine_depth must be >= 0")
        if self.min_refine_size < 2:
            raise ConfigError("min_refine_size must be >= 2")
        if not 0.0 <= self.refine_min_modularity < 1.0:
            raise ConfigError("refine_min_modularity must be in [0, 1)")
        if not 0.0 <= self.refine_density_stop <= 1.0:
            raise ConfigError("refine_density_stop must be in [0, 1]")


@dataclass(frozen=True)
class SmashConfig:
    """Top-level configuration bundle for a SMASH run.

    The zero-argument constructor reproduces the paper's operating point.
    Use :meth:`replace` to derive variants for sweeps and ablations::

        cfg = SmashConfig().replace(correlation=CorrelationConfig(thresh=1.5))
    """

    preprocess: PreprocessConfig = field(default_factory=PreprocessConfig)
    dimensions: DimensionConfig = field(default_factory=DimensionConfig)
    correlation: CorrelationConfig = field(default_factory=CorrelationConfig)
    pruning: PruningConfig = field(default_factory=PruningConfig)
    louvain: LouvainConfig = field(default_factory=LouvainConfig)

    #: Campaigns must involve at least this many distinct clients to be
    #: reported in the multi-client track (Section V-A1 considers campaigns
    #: with at least two involved clients; single-client campaigns are
    #: handled separately per Appendix C).
    min_campaign_clients: int = 2

    #: Which secondary dimensions to enable.  The default triple is the
    #: paper's published system; ``"urlparam"`` (the Section V-A2
    #: parameter-pattern extension that recovers the Cycbot/Fake AV false
    #: negatives) and ``"time"`` (the Section VI temporal extension) are
    #: available opt-in.  Also drives the Figure-8 decomposition and the
    #: dimension ablations.
    enabled_secondary_dimensions: tuple[str, ...] = ("urifile", "ipset", "whois")

    #: Worker count for per-dimension mining inside ``SmashPipeline.mine``
    #: (the main dimension plus each enabled secondary dimension is an
    #: independent build-graph + Louvain job).  ``1`` (the default) mines
    #: serially; ``0`` means one worker per available CPU.  Mining is
    #: deterministic by construction, so every worker count produces an
    #: identical :class:`~repro.core.results.SmashResult`.
    workers: int = 1

    #: Executor used when ``workers > 1``: ``"serial"``, ``"thread"`` or
    #: ``"process"`` (see :mod:`repro.util.parallel` for the trade-offs).
    executor: str = "thread"

    #: Shard count for the map-reduce mine path
    #: (:mod:`repro.core.shardmine`).  ``1`` (the default) mines in one
    #: pass; ``N > 1`` splits the trace into N contiguous shards
    #: (day-partition-aligned under the streaming engine), extracts
    #: per-shard index partials with spill-to-store, and runs
    #: partition-parallel pair counting on the ``workers``/``executor``
    #: pool.  Sharding is an execution strategy, not a semantic knob:
    #: every shard count produces byte-identical results, so (like
    #: ``workers``) the field is top-level and excluded from the
    #: incremental-mining content signatures.
    shards: int = 1

    #: How the sharded mine's map jobs are dispatched (see
    #: :mod:`repro.core.dispatch`): ``"pool"`` (the default) runs them on
    #: the mine's shared ``workers``/``executor`` pool, ``"serial"``
    #: forces an inline loop in the coordinator, and ``"subprocess"``
    #: runs one fresh interpreter per shard speaking the remote-worker
    #: contract (store paths + partial digests only).  Like ``workers``
    #: and ``shards``, a pure execution strategy: every dispatcher
    #: produces byte-identical results.
    dispatch: str = "pool"

    #: Run the sharded mine out-of-core: shard jobs load their own day
    #: partitions from the :class:`~repro.stream.store.TraceStore` and
    #: the reduce streams spilled index partials into per-dimension
    #: graphs without ever assembling the full prepared trace in the
    #: coordinator.  Byte-identical to the in-memory path; only peak
    #: coordinator RSS changes.  Requires a trace store on the streaming
    #: path (``smash stream --store``).
    out_of_core: bool = False

    #: Default for the streaming engine's per-dimension mining cache: on
    #: window advance, dimensions whose content signature is unchanged by
    #: the entering/leaving days are spliced in from cache instead of
    #: re-mined (see :class:`~repro.core.pipeline.DimensionCache`).  A
    #: cache hit is provably identical to a cold re-mine, so this only
    #: changes advance latency, never results; disable (or pass
    #: ``--no-incremental``) to force full re-mines, e.g. when measuring
    #: cold-path performance.
    incremental: bool = True

    #: How many times a failed shard-map job may be retried before the
    #: coordinator reassigns it to inline execution (see
    #: :mod:`repro.core.faults`).  Retries fire only on *retryable*
    #: failures — worker death, timeout, torn spill — never on a corrupt
    #: source partition, which fails fast on any host.  ``0`` disables
    #: retries (one attempt per job).  Recovery re-runs the identical
    #: deterministic job on a fresh spill name, so results stay
    #: byte-identical whatever the retry budget.
    shard_retries: int = 2

    #: Wall-clock budget (seconds) for one subprocess shard-job attempt;
    #: a worker running past it is killed and the attempt counts as a
    #: retryable timeout.  In-process dispatchers cannot interrupt a
    #: running job and do not enforce it.
    shard_timeout: float = 600.0

    #: Deterministic fault-injection plan (a
    #: :class:`~repro.core.faults.FaultPlan`) applied to shard-map jobs;
    #: ``None`` (the default, and the only sane production value)
    #: injects nothing.  Used by ``smash chaos``, the chaos CI gate and
    #: the fault-tolerance tests to prove recovery: a mine that survives
    #: its plan must produce byte-identical output, so — like
    #: ``metrics`` — the field is excluded from equality, repr, and the
    #: incremental-mining content signatures.
    fault_plan: object | None = field(default=None, compare=False, repr=False)

    #: Metrics recorder (a :class:`~repro.obs.MetricsRegistry`) the
    #: pipeline records spans and counters into; ``None`` (the default)
    #: selects the shared :data:`~repro.obs.NULL_RECORDER`, whose every
    #: method is a no-op.  Recording is metadata-only by contract — it
    #: never influences mining results — so the field is excluded from
    #: equality, repr, and (being top-level) the incremental-mining
    #: content signatures, which digest only the sub-configs.
    metrics: object | None = field(default=None, compare=False, repr=False)

    def validate(self) -> None:
        """Raise :class:`ConfigError` if any parameter is out of range."""
        self.preprocess.validate()
        self.dimensions.validate()
        self.correlation.validate()
        self.pruning.validate()
        self.louvain.validate()
        if self.min_campaign_clients < 1:
            raise ConfigError("min_campaign_clients must be >= 1")
        known = {"urifile", "ipset", "whois", "urlparam", "time"}
        unknown = set(self.enabled_secondary_dimensions) - known
        if unknown:
            raise ConfigError(f"unknown secondary dimensions: {sorted(unknown)}")
        if self.workers < 0:
            raise ConfigError("workers must be >= 0 (0 = one per CPU)")
        if self.shards < 1:
            raise ConfigError("shards must be >= 1")
        if self.executor not in EXECUTOR_KINDS:
            raise ConfigError(
                f"executor must be one of {EXECUTOR_KINDS}, got {self.executor!r}"
            )
        if self.dispatch not in DISPATCH_KINDS:
            raise ConfigError(
                f"dispatch must be one of {DISPATCH_KINDS}, got {self.dispatch!r}"
            )
        if self.shard_retries < 0:
            raise ConfigError("shard_retries must be >= 0 (0 = single attempt)")
        if self.shard_timeout <= 0:
            raise ConfigError("shard_timeout must be > 0 seconds")

    def replace(self, **changes: object) -> "SmashConfig":
        """Return a copy with the given top-level fields replaced."""
        return dataclasses.replace(self, **changes)

    def with_thresh(self, thresh: float) -> "SmashConfig":
        """Return a copy with the correlation threshold replaced.

        Convenience for the threshold sweeps of Tables II, III, XI and XII.
        """
        return self.replace(
            correlation=dataclasses.replace(self.correlation, thresh=thresh)
        )


DEFAULT_CONFIG = SmashConfig()
"""The paper's operating point (thresh 0.8, IDF 200, len 25, mu 4, sigma 5.5)."""
