"""Configurable task execution for the per-dimension mining fan-out.

:func:`run_jobs` runs a list of zero-argument callables and returns their
results **in job order**, on one of three executors:

* ``"serial"`` — plain loop in the calling thread (the reference
  behaviour; also used whenever ``workers <= 1`` or there is only one
  job, so the pools are never spun up for nothing);
* ``"thread"`` — :class:`~concurrent.futures.ThreadPoolExecutor`; cheap
  to start and shares the trace indices, but the pure-Python mining is
  GIL-bound, so the win is bounded (it helps when numpy/scipy-backed
  builders release the GIL);
* ``"process"`` — :class:`~concurrent.futures.ProcessPoolExecutor`; real
  CPU parallelism at the cost of pickling each job's arguments, so jobs
  must be module-level callables (``functools.partial`` over picklable
  arguments).

:class:`JobPool` is the multi-batch form: one pool instance survives
several ``run`` calls, so a mine that fans out more than once (per-shard
indexing, per-dimension pair partials, Louvain) pays the pool start-up
cost once instead of once per batch.

Because the mining core is deterministic by construction (canonical node
order, sorted adjacency, seeded Louvain shuffle), every executor produces
*identical* results — scheduling only changes wall-clock time, never the
output.  That equivalence is asserted by the parallel-equivalence tests.
"""

from __future__ import annotations

import os
from collections.abc import Callable, Sequence
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from typing import TypeVar

T = TypeVar("T")

#: The accepted executor kinds, in increasing order of start-up cost.
EXECUTOR_KINDS = ("serial", "thread", "process")

#: The accepted shard-dispatcher kinds for the sharded mine's map phase
#: (see :mod:`repro.core.dispatch`): ``"serial"`` runs shard jobs inline
#: in the coordinator, ``"pool"`` fans them out on the mine's
#: :class:`JobPool`, and ``"subprocess"`` runs one fresh interpreter per
#: shard that talks only in store paths + partial digests.  Lives here
#: (not in :mod:`repro.core.dispatch`) so :mod:`repro.config` can
#: validate the field without importing the core.
DISPATCH_KINDS = ("serial", "pool", "subprocess")


def resolve_workers(workers: int) -> int:
    """Translate a ``workers`` setting into a concrete worker count.

    ``0`` means "one per available CPU"; any positive value is taken
    as-is.  "Available" honours CPU affinity / cgroup cpusets where the
    platform exposes them, so ``workers=0`` in a container pinned to 2
    of a 64-core host gives 2, not 64.
    """
    if workers < 0:
        raise ValueError(f"workers must be >= 0, got {workers}")
    if workers == 0:
        if hasattr(os, "sched_getaffinity"):
            return len(os.sched_getaffinity(0)) or 1
        return os.cpu_count() or 1
    return workers


class JobPool:
    """A reusable executor for several job batches.

    ``run_jobs`` used to spin a fresh pool up for every batch, which made
    the process executor pay its interpreter-spawn cost once *per batch*
    (PR 2 measured it at 0.25x on small jobs).  A ``JobPool`` is created
    once per mine and reused across the per-shard index fan-out, the
    per-dimension pair-partial fan-out and the Louvain fan-out — the
    underlying pool is started lazily on the first batch that actually
    needs it and lives until :meth:`close`.

    Batch semantics match :func:`run_jobs`: results come back in job
    order, the first job exception is re-raised in the caller, and no
    pool is ever started for serial execution or single-job batches.
    """

    def __init__(self, workers: int = 1, executor: str = "serial") -> None:
        if executor not in EXECUTOR_KINDS:
            raise ValueError(f"unknown executor {executor!r}; expected one of {EXECUTOR_KINDS}")
        self.workers = resolve_workers(workers)
        self.executor = executor
        self._pool: Executor | None = None

    @property
    def parallel(self) -> bool:
        """Whether this pool can actually run jobs concurrently."""
        return self.executor != "serial" and self.workers > 1

    def run(self, jobs: Sequence[Callable[[], T]]) -> list[T]:
        """Run one batch of *jobs*; results in job order."""
        jobs = list(jobs)
        if not self.parallel or len(jobs) <= 1:
            return [job() for job in jobs]
        if self._pool is None:
            pool_cls: type[Executor] = (
                ThreadPoolExecutor if self.executor == "thread" else ProcessPoolExecutor
            )
            self._pool = pool_cls(max_workers=self.workers)
        futures = [self._pool.submit(job) for job in jobs]
        return [future.result() for future in futures]

    def close(self) -> None:
        """Shut the underlying pool down (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "JobPool":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


def run_jobs(
    jobs: Sequence[Callable[[], T]],
    workers: int = 1,
    executor: str = "serial",
) -> list[T]:
    """Run *jobs* and return their results in job order.

    One-shot wrapper over :class:`JobPool` for callers with a single
    batch; the first job exception is re-raised in the caller (remaining
    jobs are allowed to finish; the pool is always shut down).
    """
    with JobPool(workers=workers, executor=executor) as pool:
        return pool.run(jobs)
