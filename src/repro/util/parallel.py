"""Configurable task execution for the per-dimension mining fan-out.

:func:`run_jobs` runs a list of zero-argument callables and returns their
results **in job order**, on one of three executors:

* ``"serial"`` — plain loop in the calling thread (the reference
  behaviour; also used whenever ``workers <= 1`` or there is only one
  job, so the pools are never spun up for nothing);
* ``"thread"`` — :class:`~concurrent.futures.ThreadPoolExecutor`; cheap
  to start and shares the trace indices, but the pure-Python mining is
  GIL-bound, so the win is bounded (it helps when numpy/scipy-backed
  builders release the GIL);
* ``"process"`` — :class:`~concurrent.futures.ProcessPoolExecutor`; real
  CPU parallelism at the cost of pickling each job's arguments, so jobs
  must be module-level callables (``functools.partial`` over picklable
  arguments).

Because the mining core is deterministic by construction (canonical node
order, sorted adjacency, seeded Louvain shuffle), every executor produces
*identical* results — scheduling only changes wall-clock time, never the
output.  That equivalence is asserted by the parallel-equivalence tests.
"""

from __future__ import annotations

import os
from collections.abc import Callable, Sequence
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from typing import TypeVar

T = TypeVar("T")

#: The accepted executor kinds, in increasing order of start-up cost.
EXECUTOR_KINDS = ("serial", "thread", "process")


def resolve_workers(workers: int) -> int:
    """Translate a ``workers`` setting into a concrete worker count.

    ``0`` means "one per available CPU"; any positive value is taken
    as-is.  "Available" honours CPU affinity / cgroup cpusets where the
    platform exposes them, so ``workers=0`` in a container pinned to 2
    of a 64-core host gives 2, not 64.
    """
    if workers < 0:
        raise ValueError(f"workers must be >= 0, got {workers}")
    if workers == 0:
        if hasattr(os, "sched_getaffinity"):
            return len(os.sched_getaffinity(0)) or 1
        return os.cpu_count() or 1
    return workers


def run_jobs(
    jobs: Sequence[Callable[[], T]],
    workers: int = 1,
    executor: str = "serial",
) -> list[T]:
    """Run *jobs* and return their results in job order.

    The first job exception is re-raised in the caller (remaining jobs
    are allowed to finish; the pools are always shut down).
    """
    if executor not in EXECUTOR_KINDS:
        raise ValueError(
            f"unknown executor {executor!r}; expected one of {EXECUTOR_KINDS}"
        )
    effective = resolve_workers(workers)
    if executor == "serial" or effective <= 1 or len(jobs) <= 1:
        return [job() for job in jobs]
    pool_cls: type[Executor] = (
        ThreadPoolExecutor if executor == "thread" else ProcessPoolExecutor
    )
    with pool_cls(max_workers=min(effective, len(jobs))) as pool:
        futures = [pool.submit(job) for job in jobs]
        return [future.result() for future in futures]
