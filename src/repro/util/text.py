"""Character-distribution vectors and cosine similarity.

The paper compares long (possibly obfuscated) URI filenames by the cosine of
their character-frequency distributions (eq. 6): two filenames are similar
when ``cos(theta) > 0.8``.  This module implements that primitive.
"""

from __future__ import annotations

import math
from collections import Counter


def charset_vector(text: str) -> dict[str, int]:
    """Return the character-frequency vector of *text*.

    The vector is represented sparsely as a ``{character: count}`` mapping.
    Comparison is case-sensitive: obfuscated names in the wild mix cases
    deliberately, and the paper gives no indication of folding.

    >>> charset_vector("aab")
    {'a': 2, 'b': 1}
    """
    return dict(Counter(text))


def charset_cosine(a: str, b: str) -> float:
    """Cosine similarity between the character distributions of two strings.

    Returns a value in ``[0, 1]``; ``1.0`` for identical distributions (note
    that anagrams score 1.0 by construction) and ``0.0`` when the strings
    share no characters.  Empty strings have no direction, so any comparison
    involving an empty string returns ``0.0`` except two empty strings,
    which are defined as identical (``1.0``).
    """
    if not a and not b:
        return 1.0
    if not a or not b:
        return 0.0
    va = Counter(a)
    vb = Counter(b)
    dot = sum(count * vb[char] for char, count in va.items() if char in vb)
    norm_a = math.sqrt(sum(c * c for c in va.values()))
    norm_b = math.sqrt(sum(c * c for c in vb.values()))
    if norm_a == 0.0 or norm_b == 0.0:
        return 0.0
    value = dot / (norm_a * norm_b)
    # Guard against floating-point drift just past 1.0.
    return min(1.0, max(0.0, value))


def jaccard(a: frozenset | set, b: frozenset | set) -> float:
    """Plain Jaccard index of two sets; 1.0 when both are empty."""
    if not a and not b:
        return 1.0
    union = len(a | b)
    if union == 0:
        return 1.0
    return len(a & b) / union


def overlap_ratio_product(a: frozenset | set, b: frozenset | set) -> float:
    """The paper's two-sided overlap score ``|A∩B|/|A| * |A∩B|/|B|``.

    Used for client similarity (eq. 1) and IP-set similarity (eq. 8).
    Empty sets cannot overlap meaningfully, so any comparison involving an
    empty set returns 0.0.
    """
    if not a or not b:
        return 0.0
    inter = len(a & b)
    if inter == 0:
        return 0.0
    return (inter / len(a)) * (inter / len(b))
