"""Small shared utilities: text vectors, statistics, deterministic RNG."""

from repro.util.text import charset_cosine, charset_vector
from repro.util.stats import ecdf, percentile_of, summarize
from repro.util.rng import child_rng, make_rng

__all__ = [
    "charset_cosine",
    "charset_vector",
    "child_rng",
    "ecdf",
    "make_rng",
    "percentile_of",
    "summarize",
]
