"""Small shared utilities: text vectors, statistics, RNG, task execution."""

from repro.util.text import charset_cosine, charset_vector
from repro.util.stats import ecdf, percentile_of, summarize
from repro.util.rng import child_rng, make_rng
from repro.util.parallel import EXECUTOR_KINDS, resolve_workers, run_jobs

__all__ = [
    "EXECUTOR_KINDS",
    "charset_cosine",
    "charset_vector",
    "child_rng",
    "ecdf",
    "make_rng",
    "percentile_of",
    "resolve_workers",
    "run_jobs",
    "summarize",
]
