"""Deterministic random-number plumbing.

Every stochastic component of the synthetic-trace generator draws from a
``numpy.random.Generator`` seeded through this module, so a scenario is
fully reproducible from ``(scenario name, seed)``.  Child generators are
derived with ``spawn``-style key hashing rather than sequential draws, so
adding a new consumer does not perturb existing ones.
"""

from __future__ import annotations

import hashlib

import numpy as np


def make_rng(seed: int) -> np.random.Generator:
    """Create a root generator from an integer seed."""
    return np.random.Generator(np.random.PCG64(seed))


def child_rng(seed: int, *keys: object) -> np.random.Generator:
    """Derive an independent generator from a root seed and a key path.

    The key path is hashed (SHA-256) together with the seed, so
    ``child_rng(7, "benign")`` and ``child_rng(7, "campaign", 3)`` are
    statistically independent streams that never collide.
    """
    digest = hashlib.sha256()
    digest.update(str(seed).encode("utf-8"))
    for key in keys:
        digest.update(b"\x00")
        digest.update(repr(key).encode("utf-8"))
    derived = int.from_bytes(digest.digest()[:8], "big")
    return np.random.Generator(np.random.PCG64(derived))
