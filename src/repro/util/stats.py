"""Statistics helpers used by the evaluation harness (CDFs for the figures)."""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass


def ecdf(values: Iterable[float]) -> list[tuple[float, float]]:
    """Empirical CDF as a sorted list of ``(value, F(value))`` pairs.

    Duplicate values are collapsed to their final (highest) cumulative
    fraction, which is what the paper's CDF plots show.

    >>> ecdf([1, 1, 2])
    [(1, 0.6666666666666666), (2, 1.0)]
    """
    data = sorted(values)
    n = len(data)
    if n == 0:
        return []
    points: list[tuple[float, float]] = []
    for index, value in enumerate(data, start=1):
        if points and points[-1][0] == value:
            points[-1] = (value, index / n)
        else:
            points.append((value, index / n))
    return points


def percentile_of(values: Sequence[float], threshold: float) -> float:
    """Fraction of *values* that are ``<= threshold`` (0.0 for empty input).

    Used for statements like "75% of attack campaigns have size smaller
    than 18" (Figure 6).
    """
    if not values:
        return 0.0
    return sum(1 for v in values if v <= threshold) / len(values)


def value_at_fraction(values: Sequence[float], fraction: float) -> float:
    """Smallest value v such that at least ``fraction`` of values are <= v.

    ``fraction`` must be in (0, 1].  Raises ``ValueError`` on empty input.
    """
    if not values:
        raise ValueError("value_at_fraction of empty sequence")
    if not 0.0 < fraction <= 1.0:
        raise ValueError("fraction must be in (0, 1]")
    data = sorted(values)
    index = max(0, min(len(data) - 1, int(round(fraction * len(data))) - 1))
    # Walk forward until the cumulative fraction actually reaches the target.
    while index < len(data) - 1 and (index + 1) / len(data) < fraction:
        index += 1
    return data[index]


@dataclass(frozen=True)
class Summary:
    """Five-number summary plus mean, for quick-look reporting."""

    count: int
    minimum: float
    maximum: float
    mean: float
    median: float
    p90: float


def summarize(values: Sequence[float]) -> Summary:
    """Return a :class:`Summary` of *values*; raises on empty input."""
    if not values:
        raise ValueError("summarize of empty sequence")
    data = sorted(values)
    n = len(data)
    median = data[n // 2] if n % 2 == 1 else (data[n // 2 - 1] + data[n // 2]) / 2
    p90 = data[max(0, min(n - 1, int(round(0.9 * n)) - 1))]
    return Summary(
        count=n,
        minimum=data[0],
        maximum=data[-1],
        mean=sum(data) / n,
        median=median,
        p90=p90,
    )
