"""Campaign specifications for the synthetic-trace generator.

A :class:`CampaignSpec` describes one malware campaign to plant in a trace:
how many infected clients, and one or more **tiers** of servers
(:class:`TierSpec`) — the paper's malicious-infrastructure roles
(Section I: redirectors/exploit servers for distribution, C&C servers for
control, payment/drop-zone servers for monetisation, each with backups).

The Bagle case study (Table VII) is two tiers — 40 download servers
serving ``file.txt`` and 54 C&C servers serving ``news.php`` — visited by
the same bots; SMASH's campaign-inference step re-merges the tiers through
the shared client set, which is exactly what these specs let us test.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ScenarioError

#: Activity categories from Table IV.
COMMUNICATION_CATEGORIES = frozenset(
    {"cnc", "web_exploit", "phishing", "drop_zone", "malicious"}
)
ATTACKING_CATEGORIES = frozenset({"web_scanner", "iframe_injection"})
ALL_CATEGORIES = COMMUNICATION_CATEGORIES | ATTACKING_CATEGORIES


@dataclass(frozen=True)
class TierSpec:
    """One server tier of a campaign.

    Attributes
    ----------
    role:
        Free-form tier name (``"cnc"``, ``"download"``, ``"victims"``, ...).
    num_servers:
        Number of servers in the tier.
    uri_files:
        The shared URI files requested from every tier server.  Ignored
        when :attr:`obfuscated_filenames` is set.
    obfuscated_filenames:
        Give each server its own long obfuscated filename from one
        charset family (Figure 4) instead of literal shared names.
    share_ips / num_ips:
        When set, tier servers resolve into a small shared IP pool
        (domain fluxing); otherwise each server gets a fresh IP.
    share_whois:
        Register all tier domains with the same registrant block
        (Figure 5); otherwise registrations are independent.
    whois_proxy:
        Register through a privacy proxy (contact fields carry the proxy's
        identity and are ignored by the Whois dimension).
    dga_domains / dga_template / domain_suffix:
        Domain-name style for the tier.  With a template, siblings differ
        only in digits (Zeus, Table X).
    user_agent:
        The campaign protocol's User-Agent (e.g. ``"KUKU v5.05exp"``).
    parameter_names:
        Query-parameter names of the campaign protocol
        (e.g. ``("p", "id", "e")`` for Bagle).
    requests_per_client:
        How many requests each involved client sends to each tier server.
    compromised_benign:
        The tier's servers are *benign* sites being attacked or abused
        (scanning victims, compromised download hosts): they get benign
        names, independent Whois and IPs, and attract a little background
        traffic from uninfected clients.
    contact_fraction:
        Fraction of the campaign's clients contacting each tier server
        (1.0 = every bot contacts every server; lower values model
        assignment of bots to server subsets).
    """

    role: str
    num_servers: int
    uri_files: tuple[str, ...] = ()
    obfuscated_filenames: bool = False
    share_ips: bool = False
    num_ips: int = 1
    share_whois: bool = False
    whois_proxy: bool = False
    dga_domains: bool = False
    dga_template: str | None = None
    domain_suffix: str = "com"
    user_agent: str = "Mozilla/4.0 (compatible; MSIE 6.0)"
    parameter_names: tuple[str, ...] = ()
    requests_per_client: int = 2
    compromised_benign: bool = False
    contact_fraction: float = 1.0
    uri_path: str = "/images/"
    #: Give every tier server its own unique short filename.  Models the
    #: paper's false-negative campaigns (Cycbot, Fake AV, Tidserv) that
    #: "do not share any secondary dimension" but keep a common parameter
    #: pattern (Section V-A2).
    distinct_files: bool = False

    def __post_init__(self) -> None:
        if self.num_servers < 1:
            raise ScenarioError(f"tier {self.role!r}: num_servers must be >= 1")
        if not self.uri_files and not self.obfuscated_filenames and not self.distinct_files:
            raise ScenarioError(
                f"tier {self.role!r}: need uri_files, obfuscated_filenames, "
                "or distinct_files"
            )
        if self.share_ips and self.num_ips < 1:
            raise ScenarioError(f"tier {self.role!r}: num_ips must be >= 1")
        if not 0.0 < self.contact_fraction <= 1.0:
            raise ScenarioError(
                f"tier {self.role!r}: contact_fraction must be in (0, 1]"
            )
        if self.requests_per_client < 1:
            raise ScenarioError(
                f"tier {self.role!r}: requests_per_client must be >= 1"
            )


@dataclass(frozen=True)
class CampaignSpec:
    """A full campaign to plant.

    Ground-truth coverage knobs model what the paper's verification
    sources know about the campaign:

    * ``ids2012_fraction`` — fraction of servers with 2012 IDS signatures;
    * ``ids2013_fraction`` — fraction covered by the *newer* 2013 set
      (must be >= the 2012 fraction; the 2013 set extends the 2012 one);
    * ``ids_protocol_signature`` — the 2012 IDS additionally carries a
      server-agnostic protocol signature (UA + URI file) for this
      campaign, so it catches the protocol on any server;
    * ``blacklist_fraction`` — fraction of servers on online blacklists.

    ``dead_fraction`` controls how many campaign domains have already
    disappeared when the analyst verifies them ("suspicious" evidence).
    """

    name: str
    category: str
    num_clients: int
    tiers: tuple[TierSpec, ...]
    ids2012_fraction: float = 0.0
    ids2013_fraction: float = 0.0
    blacklist_fraction: float = 0.0
    ids_protocol_signature: bool = False
    dead_fraction: float = 0.5
    active_days: tuple[int, ...] = (0,)
    agile: bool = False  # re-generate servers every active day (same clients)
    benign_browsing: bool = True  # infected clients also browse normally

    def __post_init__(self) -> None:
        if self.category not in ALL_CATEGORIES:
            raise ScenarioError(
                f"campaign {self.name!r}: unknown category {self.category!r}"
            )
        if self.num_clients < 1:
            raise ScenarioError(f"campaign {self.name!r}: num_clients must be >= 1")
        if not self.tiers:
            raise ScenarioError(f"campaign {self.name!r}: at least one tier required")
        for fraction_name in (
            "ids2012_fraction", "ids2013_fraction", "blacklist_fraction", "dead_fraction"
        ):
            value = getattr(self, fraction_name)
            if not 0.0 <= value <= 1.0:
                raise ScenarioError(
                    f"campaign {self.name!r}: {fraction_name} must be in [0, 1]"
                )
        if self.ids2013_fraction < self.ids2012_fraction:
            raise ScenarioError(
                f"campaign {self.name!r}: the 2013 signature set extends the "
                "2012 set, so ids2013_fraction must be >= ids2012_fraction"
            )
        if not self.active_days:
            raise ScenarioError(f"campaign {self.name!r}: active_days must be non-empty")

    @property
    def activity(self) -> str:
        """``"attacking"`` or ``"communication"`` (Section I's split)."""
        return "attacking" if self.category in ATTACKING_CATEGORIES else "communication"

    @property
    def total_servers(self) -> int:
        return sum(tier.num_servers for tier in self.tiers)


@dataclass(frozen=True)
class NoiseSpec:
    """Benign-but-herd-like traffic that stresses SMASH's false positives.

    The paper's two FP categories (Section V-A1) are Torrent trackers
    (many servers sharing ``scrape.php`` and sometimes IPs) and
    TeamViewer-style server pools sharing one path.  Referrer groups and
    redirection chains (Section III-D) are the pruning stage's targets.
    """

    torrent_clients: int = 0
    torrent_trackers: int = 0
    collaboration_pools: int = 0  # TeamViewer-like pools
    collaboration_pool_size: int = 0
    collaboration_clients: int = 0
    referrer_groups: int = 0
    referrer_group_size: int = 6
    redirect_chains: int = 0
    redirect_chain_length: int = 3
    adult_groups: int = 0
    adult_group_size: int = 5
    shared_hosting_groups: int = 0
    shared_hosting_group_size: int = 6

    field_names = (
        "torrent_clients",
        "torrent_trackers",
        "collaboration_pools",
        "collaboration_pool_size",
        "collaboration_clients",
        "referrer_groups",
        "referrer_group_size",
        "redirect_chains",
        "redirect_chain_length",
        "adult_groups",
        "adult_group_size",
        "shared_hosting_groups",
        "shared_hosting_group_size",
    )

    def __post_init__(self) -> None:
        for field_name in self.field_names:
            if getattr(self, field_name) < 0:
                raise ScenarioError(f"{field_name} must be >= 0")
