"""Benign herd-like traffic: the false-positive stress cases.

Four benign phenomena in the paper look like herds along one or more
dimensions and exercise SMASH's correlation, pruning and FP accounting:

* **Torrent trackers** — P2P clients request ``scrape.php`` from many
  trackers, sharing a URI file and sometimes IP addresses (the paper's
  first FP category, Section V-A1);
* **Collaboration pools** (TeamViewer-like) — a large server pool whose
  clients all request the same path (second FP category);
* **Referrer groups** — third-party servers embedded by one landing page,
  hence visited by the landing page's clients (pruned, Section III-D);
* **Redirection chains** — shorteners/trackers sharing clients and IPs
  (pruned via the redirect oracle);
* **Adult content herds** — sites visited by the same clients with no
  secondary-dimension coherence (the 8% "similar content" bucket of the
  main-dimension taxonomy, Section V-C1);
* **Shared hosting** — unrelated benign domains on one IP address
  (secondary-dimension confounder with no client coherence).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.httplog.records import HttpRequest
from repro.synth.campaigns import NoiseSpec
from repro.synth.namegen import benign_domain, benign_filename, ipv4, pseudo_word
from repro.util.rng import child_rng
from repro.whois.record import WhoisRecord


@dataclass
class NoiseResult:
    """Everything the noise generator contributes to a day's dataset."""

    requests: list[HttpRequest] = field(default_factory=list)
    whois_records: list[WhoisRecord] = field(default_factory=list)
    redirect_chains: list[list[str]] = field(default_factory=list)
    #: server -> noise category ("torrent", "collaboration", "adult",
    #: "referrer", "redirect", "shared_hosting")
    category_of: dict[str, str] = field(default_factory=dict)


def _independent_whois(domain: str, rng: np.random.Generator) -> WhoisRecord:
    owner = pseudo_word(rng, 2, 3).title() + " " + pseudo_word(rng, 2, 3).title()
    return WhoisRecord(
        domain=domain,
        registrant=owner,
        address=f"{int(rng.integers(1, 999))} {pseudo_word(rng, 2, 3).title()} Rd",
        email=f"admin@{domain}",
        phone=f"+1.{int(rng.integers(2000000000, 9999999999))}",
        name_servers=(
            f"ns1.{pseudo_word(rng, 2, 2)}dns.com", f"ns2.{pseudo_word(rng, 2, 2)}dns.com"
        ),
        registered_on=float(rng.integers(0, 3650)),
    )


def build_noise(
    spec: NoiseSpec,
    torrent_clients: list[str],
    collaboration_clients: list[str],
    browsing_clients: list[str],
    seed: int,
    day: int,
    day_seconds: float = 86400.0,
) -> NoiseResult:
    """Materialise all noise herds for one day.

    ``torrent_clients`` / ``collaboration_clients`` are dedicated client
    subsets (they browse benignly too, handled by the caller);
    ``browsing_clients`` is the general population used for referrer
    groups, redirects and adult herds.
    """
    rng = child_rng(seed, "noise", day)
    result = NoiseResult()
    base_time = day * day_seconds

    def stamp() -> float:
        return base_time + float(rng.uniform(0.0, day_seconds))

    # --- torrent trackers ------------------------------------------------------
    if spec.torrent_trackers and torrent_clients:
        trackers = []
        shared_ips = [ipv4(rng) for _ in range(max(1, spec.torrent_trackers // 4))]
        for index in range(spec.torrent_trackers):
            domain = benign_domain(rng, suffix=str(rng.choice(["com", "net", "org", "me"])))
            domain = f"tracker{index}-{domain}"
            # ~half the trackers sit on shared IPs, half on their own.
            ip = (
                str(rng.choice(shared_ips))
                if rng.random() < 0.5
                else ipv4(rng)
            )
            trackers.append((domain, ip))
            result.category_of[domain] = "torrent"
            result.whois_records.append(_independent_whois(domain, rng))
        for client in torrent_clients:
            visited = rng.choice(
                len(trackers), size=max(1, int(0.8 * len(trackers))), replace=False
            )
            for tracker_index in visited:
                domain, ip = trackers[int(tracker_index)]
                for _ in range(int(rng.integers(1, 4))):
                    result.requests.append(
                        HttpRequest(
                            timestamp=stamp(),
                            client=client,
                            host=domain,
                            server_ip=ip,
                            uri=f"/scrape.php?info_hash={int(rng.integers(0, 10**9))}",
                            user_agent="uTorrent/3.2",
                            status=200,
                        )
                    )

    # --- collaboration pools (TeamViewer-like) ----------------------------------
    for pool_index in range(spec.collaboration_pools):
        pool = []
        for server_index in range(spec.collaboration_pool_size):
            # One registrable name per relay (the vendor spreads its pool
            # over many second-level domains).
            domain = f"relay{server_index}p{pool_index}-{pseudo_word(rng, 2, 3)}.net"
            pool.append((domain, ipv4(rng)))
            result.category_of[domain] = "collaboration"
            result.whois_records.append(_independent_whois(domain, rng))
        for client in collaboration_clients:
            chosen = rng.choice(
                len(pool), size=min(len(pool), int(rng.integers(3, 9))), replace=False
            )
            for relay_index in chosen:
                domain, ip = pool[int(relay_index)]
                result.requests.append(
                    HttpRequest(
                        timestamp=stamp(),
                        client=client,
                        host=domain,
                        server_ip=ip,
                        uri=f"/din.aspx?client=DynGate&id={int(rng.integers(10**8, 10**9))}",
                        user_agent="DynGate",
                        status=200,
                    )
                )

    # --- referrer groups ---------------------------------------------------------
    for group_index in range(spec.referrer_groups):
        landing = benign_domain(rng, "com")
        landing_ip = ipv4(rng)
        result.whois_records.append(_independent_whois(landing, rng))
        embedded = []
        share_file = group_index % 2 == 0  # half the groups share a widget file
        widget = f"widget{group_index}.js"
        for _ in range(spec.referrer_group_size):
            third_party = benign_domain(rng, str(rng.choice(["com", "net", "io"])))
            embedded.append((third_party, ipv4(rng)))
            result.category_of[third_party] = "referrer"
            result.whois_records.append(_independent_whois(third_party, rng))
        audience_size = min(len(browsing_clients), int(rng.integers(2, 6)))
        audience_indices = rng.choice(len(browsing_clients), size=audience_size, replace=False)
        for client_index in audience_indices:
            client = browsing_clients[int(client_index)]
            visit = stamp()
            result.requests.append(
                HttpRequest(
                    timestamp=visit,
                    client=client,
                    host=landing,
                    server_ip=landing_ip,
                    uri="/index.html",
                    user_agent="Mozilla/5.0 (Windows NT 6.1) Gecko/2010 Firefox/8.0",
                    status=200,
                )
            )
            for third_party, ip in embedded:
                filename = widget if share_file else benign_filename(rng)
                result.requests.append(
                    HttpRequest(
                        timestamp=visit + float(rng.uniform(0.1, 2.0)),
                        client=client,
                        host=third_party,
                        server_ip=ip,
                        uri=f"/assets/{filename}",
                        user_agent="Mozilla/5.0 (Windows NT 6.1) Gecko/2010 Firefox/8.0",
                        referrer=f"http://{landing}/index.html",
                        status=200,
                    )
                )

    # --- redirection chains --------------------------------------------------------
    for chain_index in range(spec.redirect_chains):
        chain_ip = ipv4(rng)
        members = []
        for hop in range(spec.redirect_chain_length):
            domain = benign_domain(rng, str(rng.choice(["to", "ly", "me", "cc"])))
            members.append(domain)
            result.category_of[domain] = "redirect"
            result.whois_records.append(_independent_whois(domain, rng))
        result.redirect_chains.append(members)
        audience_size = min(len(browsing_clients), int(rng.integers(2, 5)))
        audience_indices = rng.choice(len(browsing_clients), size=audience_size, replace=False)
        for client_index in audience_indices:
            client = browsing_clients[int(client_index)]
            visit = stamp()
            for hop, domain in enumerate(members):
                is_last = hop == len(members) - 1
                # Non-landing hops run the same redirector script, so chain
                # members share a URI file on top of clients and IP — the
                # Section III-D observation that redirection groups "share
                # exactly the same sets of clients, IP addresses, and
                # sometimes URI files".
                uri = "/landing.html" if is_last else f"/go.php?chain={chain_index}&hop={hop}"
                result.requests.append(
                    HttpRequest(
                        timestamp=visit + hop * 0.3,
                        client=client,
                        host=domain,
                        # Chain members share infrastructure: same IP.
                        server_ip=chain_ip,
                        uri=uri,
                        user_agent="Mozilla/5.0 (Windows NT 6.1) Gecko/2010 Firefox/8.0",
                        status=302 if not is_last else 200,
                    )
                )

    # --- adult-content herds ---------------------------------------------------------
    for group_index in range(spec.adult_groups):
        group = []
        for _ in range(spec.adult_group_size):
            domain = benign_domain(rng, str(rng.choice(["com", "net", "xyz"])))
            group.append((domain, ipv4(rng)))
            result.category_of[domain] = "adult"
            result.whois_records.append(_independent_whois(domain, rng))
        audience_size = min(len(browsing_clients), int(rng.integers(2, 4)))
        audience_indices = rng.choice(len(browsing_clients), size=audience_size, replace=False)
        for client_index in audience_indices:
            client = browsing_clients[int(client_index)]
            for domain, ip in group:
                for _ in range(int(rng.integers(1, 3))):
                    result.requests.append(
                        HttpRequest(
                            timestamp=stamp(),
                            client=client,
                            host=domain,
                            server_ip=ip,
                            uri=f"/{benign_filename(rng)}",
                            user_agent="Mozilla/5.0 (Windows NT 6.1) Gecko/2010 Firefox/8.0",
                            status=200,
                        )
                    )

    # --- shared hosting ---------------------------------------------------------------
    for group_index in range(spec.shared_hosting_groups):
        hosting_ip = ipv4(rng)
        for _ in range(spec.shared_hosting_group_size):
            domain = benign_domain(rng, str(rng.choice(["com", "net", "org", "de"])))
            result.category_of[domain] = "shared_hosting"
            result.whois_records.append(_independent_whois(domain, rng))
            # Each site has its own (small, disjoint) audience.
            audience_size = min(len(browsing_clients), int(rng.integers(1, 4)))
            audience_indices = rng.choice(len(browsing_clients), size=audience_size, replace=False)
            for client_index in audience_indices:
                client = browsing_clients[int(client_index)]
                result.requests.append(
                    HttpRequest(
                        timestamp=stamp(),
                        client=client,
                        host=domain,
                        server_ip=hosting_ip,
                        uri=f"/{benign_filename(rng)}",
                        user_agent="Mozilla/5.0 (Windows NT 6.1) Gecko/2010 Firefox/8.0",
                        status=200,
                    )
                )

    return result
