"""Oracles replacing SMASH's active measurements.

The paper's pruning stage "collect[s] the redirection chains by sending a
HTTP request to each server" and its verification step "send[s] the HTTP
requests to verify the existence of those servers" (Sections III-D, V-A1).
We cannot probe a synthetic universe over the network, so the generator
records the answers those probes would give:

* :class:`RedirectOracle` — which servers sit on a redirect chain and what
  the landing server of the chain is;
* :class:`HostLiveness` — whether a domain still resolves at verification
  time (malicious domains are short-lived; Section V-A1, footnote 8).
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping


class RedirectOracle:
    """Maps chain members to their landing server."""

    def __init__(self, landing_of: Mapping[str, str] | None = None) -> None:
        self._landing_of: dict[str, str] = dict(landing_of or {})

    def add_chain(self, chain: Iterable[str]) -> None:
        """Record a redirect chain; the last element is the landing server."""
        members = list(chain)
        if len(members) < 2:
            raise ValueError("a redirect chain needs at least two members")
        landing = members[-1]
        for member in members:
            self._landing_of[member] = landing

    def landing_server(self, server: str) -> str | None:
        """The landing server of *server*'s chain, or None if not on a chain.

        The landing server maps to itself.
        """
        return self._landing_of.get(server)

    def on_chain(self, server: str) -> bool:
        return server in self._landing_of

    def chain_members(self) -> frozenset[str]:
        return frozenset(self._landing_of)

    def to_dict(self) -> dict[str, str]:
        """The landing-server mapping, sorted (the redirects.json sidecar
        and streaming-checkpoint schema; inverse of :meth:`from_dict`)."""
        return dict(sorted(self._landing_of.items()))

    @classmethod
    def from_dict(cls, mapping: Mapping[str, str]) -> "RedirectOracle":
        return cls(landing_of=mapping)


class HostLiveness:
    """Records which servers still "exist" when the analyst verifies them."""

    def __init__(self, dead: Iterable[str] = ()) -> None:
        self._dead = set(dead)

    def mark_dead(self, server: str) -> None:
        self._dead.add(server)

    def is_alive(self, server: str) -> bool:
        """True when a verification-time HTTP probe would still succeed."""
        return server not in self._dead

    @property
    def dead_servers(self) -> frozenset[str]:
        return frozenset(self._dead)
