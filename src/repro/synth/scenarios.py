"""Scenario presets shaped like the paper's datasets.

Three presets mirror Table I's traces (at laptop scale — the shapes of the
evaluation hold, absolute counts are smaller):

* :func:`data2011day` — one day, the Section-V workhorse;
* :func:`data2012day` — one day, different seed and campaign mix;
* :func:`data2012week` — seven days with persistent, agile and newly
  appearing campaigns (Section V-B, Tables V/VI, Figure 7).

Campaign factories build the case-study campaigns (Bagle, Sality, Zeus,
iframe injection, ZmEu scanning) plus generic communication campaigns with
controllable dimension overlap, single-client campaigns (Appendix C) and
deliberately undetectable campaigns (the Section V-A2 false negatives).
"""

from __future__ import annotations

from repro.synth.campaigns import CampaignSpec, NoiseSpec, TierSpec
from repro.synth.scenario_spec import ScenarioSpec

# ---------------------------------------------------------------------------
# Case-study campaign factories
# ---------------------------------------------------------------------------


def bagle_like(
    name: str = "bagle",
    num_clients: int = 3,
    downloads: int = 14,
    cncs: int = 18,
    **overrides: object,
) -> CampaignSpec:
    """The Bagle worm campaign of Table VII.

    Two tiers visited by the same bots: compromised-benign download
    servers all serving ``file.txt``, and C&C servers (also compromised
    sites in the paper) answering ``news.php`` with the
    ``p=..&id=..&e=..`` parameter pattern.  SMASH's campaign-inference
    step must re-merge the tiers through the shared client set.
    """
    defaults: dict[str, object] = dict(
        ids2012_fraction=0.0,
        ids2013_fraction=0.08,
        blacklist_fraction=0.06,
        ids_protocol_signature=False,
    )
    defaults.update(overrides)
    return CampaignSpec(
        name=name,
        category="cnc",
        num_clients=num_clients,
        tiers=(
            TierSpec(
                role="download",
                num_servers=downloads,
                uri_files=("file.txt",),
                compromised_benign=True,
                user_agent="Mozilla/4.0 (compatible; MSIE 6.0; Windows NT 5.1)",
                requests_per_client=2,
            ),
            TierSpec(
                role="cnc",
                num_servers=cncs,
                uri_files=("news.php",),
                compromised_benign=True,
                user_agent="Internet Exploder",
                parameter_names=("p", "id", "e"),
                requests_per_client=3,
            ),
        ),
        **defaults,  # type: ignore[arg-type]
    )


def sality_like(
    name: str = "sality",
    num_clients: int = 3,
    downloads: int = 12,
    **overrides: object,
) -> CampaignSpec:
    """The Sality campaign of Table VIII.

    Two dedicated C&C domains sharing IPs, the ``/`` URI file and
    registration, plus compromised download servers sharing ``.gif``
    payload names.  The whole campaign uses the ``KUKU v5.05exp`` UA.
    """
    defaults: dict[str, object] = dict(
        ids2012_fraction=1.0,
        ids2013_fraction=1.0,
        blacklist_fraction=0.6,
        ids_protocol_signature=True,
    )
    defaults.update(overrides)
    return CampaignSpec(
        name=name,
        category="cnc",
        num_clients=num_clients,
        tiers=(
            TierSpec(
                role="cnc",
                num_servers=2,
                uri_files=("/",),
                share_ips=True,
                num_ips=2,
                share_whois=True,
                domain_suffix="info",
                user_agent="KUKU v5.05exp",
                parameter_names=("x",),
                requests_per_client=4,
            ),
            TierSpec(
                role="download",
                num_servers=downloads,
                # All download servers serve the same payload name; eq. 9
                # needs Phi(|herd|) x density >= thresh, and a tier split
                # over two filenames would halve the herd sizes.
                uri_files=("logos.gif",),
                compromised_benign=True,
                user_agent="KUKU v5.05exp",
                parameter_names=("x",),
                requests_per_client=2,
            ),
        ),
        **defaults,  # type: ignore[arg-type]
    )


def zeus_like(
    name: str = "zeus",
    num_clients: int = 2,
    cncs: int = 8,
    **overrides: object,
) -> CampaignSpec:
    """The Zeus DGA herd of Table X: ``4k0t1NNm.cz.cc`` siblings sharing
    IPs and ``login.php``, unknown to the 2012 IDS but fully covered by
    the 2013 signatures (the zero-day detection evidence)."""
    defaults: dict[str, object] = dict(
        ids2012_fraction=0.0,
        ids2013_fraction=1.0,
        blacklist_fraction=0.13,
        dead_fraction=0.8,
    )
    defaults.update(overrides)
    return CampaignSpec(
        name=name,
        category="cnc",
        num_clients=num_clients,
        tiers=(
            TierSpec(
                role="cnc",
                num_servers=cncs,
                uri_files=("login.php",),
                share_ips=True,
                num_ips=2,
                share_whois=True,
                dga_domains=True,
                dga_template="4k0t1NNm",
                domain_suffix="cz.cc",
                uri_path="/",
                user_agent="Mozilla/4.0 (compatible; MSIE 7.0)",
                requests_per_client=3,
            ),
        ),
        **defaults,  # type: ignore[arg-type]
    )


def tdss_like(
    name: str = "tdss",
    num_clients: int = 2,
    cncs: int = 6,
    **overrides: object,
) -> CampaignSpec:
    """A TDSS-style campaign using long obfuscated filenames (Figure 4);
    the URI-file dimension must link them via charset cosine."""
    defaults: dict[str, object] = dict(
        ids2012_fraction=0.3,
        ids2013_fraction=0.5,
        blacklist_fraction=0.3,
    )
    defaults.update(overrides)
    return CampaignSpec(
        name=name,
        category="cnc",
        num_clients=num_clients,
        tiers=(
            TierSpec(
                role="cnc",
                num_servers=cncs,
                obfuscated_filenames=True,
                share_ips=True,
                num_ips=1,
                dga_domains=True,
                domain_suffix="com",
                user_agent="TDSS/2.1",
                requests_per_client=3,
            ),
        ),
        **defaults,  # type: ignore[arg-type]
    )


def conficker_like(
    name: str = "conficker",
    num_clients: int = 4,
    domains: int = 16,
    **overrides: object,
) -> CampaignSpec:
    """A Conficker-style DGA rendezvous campaign (named in Section I's
    inferred-campaign examples).

    The worm generates many throw-away domains per day and polls each for
    an update payload; domains are registered just-in-time by the
    operators (shared registration block) but resolve to scattered
    hosting, so the herd coheres on client + URI file + Whois rather than
    IP fluxing.
    """
    defaults: dict[str, object] = dict(
        ids2012_fraction=0.12,
        ids2013_fraction=0.5,
        blacklist_fraction=0.3,
        dead_fraction=0.9,
    )
    defaults.update(overrides)
    return CampaignSpec(
        name=name,
        category="cnc",
        num_clients=num_clients,
        tiers=(
            TierSpec(
                role="rendezvous",
                num_servers=domains,
                uri_files=("search?q=0",),
                share_whois=True,
                dga_domains=True,
                domain_suffix="ws",
                uri_path="/",
                user_agent="Mozilla/4.0 (compatible; MSIE 6.0; Windows NT 5.1; SV1)",
                requests_per_client=2,
                contact_fraction=0.8,
            ),
        ),
        **defaults,  # type: ignore[arg-type]
    )


def iframe_injection(
    name: str = "iframe-injection",
    num_clients: int = 3,
    victims: int = 150,
    ids_known_servers: int = 4,
    **overrides: object,
) -> CampaignSpec:
    """The WordPress ``sm3.php`` web-injection campaign of Table IX:
    hundreds of benign victims queried by the same clients with UA ``-``;
    the IDS knows only a handful of them."""
    defaults: dict[str, object] = dict(
        ids2012_fraction=ids_known_servers / victims,
        ids2013_fraction=ids_known_servers / victims,
        blacklist_fraction=0.02,
        dead_fraction=0.0,  # victims are live benign sites
    )
    defaults.update(overrides)
    return CampaignSpec(
        name=name,
        category="iframe_injection",
        num_clients=num_clients,
        tiers=(
            TierSpec(
                role="victims",
                num_servers=victims,
                uri_files=("sm3.php",),
                compromised_benign=True,
                user_agent="-",
                requests_per_client=1,
            ),
        ),
        **defaults,  # type: ignore[arg-type]
    )


def web_scanner(
    name: str = "zmeu-scan",
    num_clients: int = 2,
    victims: int = 24,
    **overrides: object,
) -> CampaignSpec:
    """The ZmEu phpMyAdmin scanning campaign of Figure 1(b): bots probing
    ``setup.php`` on many benign servers."""
    defaults: dict[str, object] = dict(
        ids2012_fraction=0.08,
        ids2013_fraction=0.12,
        blacklist_fraction=0.0,
        dead_fraction=0.0,
        ids_protocol_signature=True,
    )
    defaults.update(overrides)
    return CampaignSpec(
        name=name,
        category="web_scanner",
        num_clients=num_clients,
        tiers=(
            TierSpec(
                role="victims",
                num_servers=victims,
                uri_files=("setup.php",),
                compromised_benign=True,
                uri_path="/phpMyAdmin/scripts/",
                user_agent="ZmEu",
                requests_per_client=2,
            ),
        ),
        **defaults,  # type: ignore[arg-type]
    )


# ---------------------------------------------------------------------------
# Generic campaign factories
# ---------------------------------------------------------------------------


def generic_cnc(
    name: str,
    num_clients: int,
    num_servers: int,
    share_file: bool = True,
    share_ip: bool = False,
    share_whois: bool = False,
    category: str = "cnc",
    uri_file: str = "gate.php",
    user_agent: str = "Mozilla/4.0 (compatible; MSIE 6.0)",
    **overrides: object,
) -> CampaignSpec:
    """A single-tier communication campaign with chosen dimension overlap.

    ``share_file=False`` gives every server its own filename, so the
    campaign can only associate through IP/Whois.
    """
    defaults: dict[str, object] = dict(
        ids2012_fraction=0.0,
        ids2013_fraction=0.0,
        blacklist_fraction=0.25,
    )
    defaults.update(overrides)
    tier = TierSpec(
        role="cnc",
        num_servers=num_servers,
        uri_files=(uri_file,) if share_file else (),
        distinct_files=not share_file,
        share_ips=share_ip,
        num_ips=max(1, num_servers // 4) if share_ip else 1,
        share_whois=share_whois,
        dga_domains=True,
        domain_suffix="com",
        user_agent=user_agent,
        parameter_names=("id", "v"),
        requests_per_client=3,
    )
    return CampaignSpec(
        name=name,
        category=category,
        num_clients=num_clients,
        tiers=(tier,),
        **defaults,  # type: ignore[arg-type]
    )


def phishing_campaign(
    name: str,
    num_clients: int = 2,
    num_servers: int = 5,
    **overrides: object,
) -> CampaignSpec:
    """Phishing landing sites sharing registration and a kit file."""
    defaults: dict[str, object] = dict(
        ids2012_fraction=0.0,
        ids2013_fraction=0.2,
        blacklist_fraction=0.4,
    )
    defaults.update(overrides)
    return CampaignSpec(
        name=name,
        category="phishing",
        num_clients=num_clients,
        tiers=(
            TierSpec(
                role="landing",
                num_servers=num_servers,
                uri_files=("verify.html", "secure-login.html"),
                share_whois=True,
                share_ips=True,
                num_ips=1,
                domain_suffix="com",
                user_agent="Mozilla/5.0 (Windows NT 6.1) Gecko/2010 Firefox/8.0",
                requests_per_client=2,
            ),
        ),
        **defaults,  # type: ignore[arg-type]
    )


def dropzone_campaign(
    name: str,
    num_clients: int = 2,
    num_servers: int = 4,
    **overrides: object,
) -> CampaignSpec:
    """Drop-zone servers receiving stolen data via POSTs to ``gate.php``."""
    defaults: dict[str, object] = dict(
        ids2012_fraction=0.25,
        ids2013_fraction=0.5,
        blacklist_fraction=0.25,
    )
    defaults.update(overrides)
    return CampaignSpec(
        name=name,
        category="drop_zone",
        num_clients=num_clients,
        tiers=(
            TierSpec(
                role="dropzone",
                num_servers=num_servers,
                uri_files=("gate.php",),
                share_ips=True,
                num_ips=1,
                dga_domains=True,
                domain_suffix="ru",
                user_agent="-",
                parameter_names=("bot", "data"),
                requests_per_client=4,
            ),
        ),
        **defaults,  # type: ignore[arg-type]
    )


def undetectable_campaign(
    name: str,
    num_clients: int = 2,
    num_servers: int = 5,
    **overrides: object,
) -> CampaignSpec:
    """A Cycbot/Fake-AV-style false negative (Section V-A2): servers share
    clients and a parameter pattern but no secondary dimension."""
    defaults: dict[str, object] = dict(
        ids2012_fraction=0.6,
        ids2013_fraction=0.8,
        blacklist_fraction=0.2,
    )
    defaults.update(overrides)
    return CampaignSpec(
        name=name,
        category="cnc",
        num_clients=num_clients,
        tiers=(
            TierSpec(
                role="cnc",
                num_servers=num_servers,
                distinct_files=True,
                dga_domains=True,
                domain_suffix="com",
                user_agent="Mozilla/4.0 (compatible; MSIE 8.0)",
                parameter_names=("q", "said", "tid"),
                requests_per_client=3,
            ),
        ),
        **defaults,  # type: ignore[arg-type]
    )


def single_client_campaign(
    name: str,
    num_servers: int = 6,
    share_file: bool = True,
    share_ip: bool = True,
    share_whois: bool = False,
    **overrides: object,
) -> CampaignSpec:
    """An Appendix-C campaign with exactly one infected client.

    At the single-client threshold (1.0) detection needs at least two
    secondary dimensions, so the defaults share file + IP.
    """
    defaults: dict[str, object] = dict(
        ids2012_fraction=0.0,
        ids2013_fraction=0.15,
        blacklist_fraction=0.3,
    )
    defaults.update(overrides)
    return CampaignSpec(
        name=name,
        category="malicious",
        num_clients=1,
        tiers=(
            TierSpec(
                role="cnc",
                num_servers=num_servers,
                uri_files=("task.php",) if share_file else (),
                distinct_files=not share_file,
                share_ips=share_ip,
                num_ips=1 if share_ip else num_servers,
                share_whois=share_whois,
                dga_domains=True,
                domain_suffix="net",
                user_agent="wget/1.12",
                requests_per_client=2,
            ),
        ),
        **defaults,  # type: ignore[arg-type]
    )


# ---------------------------------------------------------------------------
# Preset scenarios
# ---------------------------------------------------------------------------


def _day_campaign_mix(
    seed_tag: str,
    num_generic: int = 6,
    num_single: int = 12,
    num_ghost: int = 3,
    iframe_victims: int = 150,
    scanner_victims: int = 24,
) -> tuple[CampaignSpec, ...]:
    """The multi- and single-client campaign mix of a one-day scenario."""
    campaigns: list[CampaignSpec] = [
        bagle_like(name=f"bagle-{seed_tag}"),
        sality_like(name=f"sality-{seed_tag}"),
        zeus_like(name=f"zeus-{seed_tag}"),
        tdss_like(name=f"tdss-{seed_tag}"),
        iframe_injection(name=f"iframe-{seed_tag}", victims=iframe_victims),
        web_scanner(name=f"zmeu-{seed_tag}", victims=scanner_victims),
        phishing_campaign(name=f"phish-{seed_tag}"),
        dropzone_campaign(name=f"dropzone-{seed_tag}"),
        # Cycbot-sized so the urlparam extension can recover it
        # (Phi(12) >= 0.8); Fake AV stays too small for single-dimension
        # recovery even with the extension.
        undetectable_campaign(name=f"cycbot-{seed_tag}", num_servers=12),
        undetectable_campaign(name=f"fakeav-{seed_tag}", num_servers=4),
    ]
    # Generic communication campaigns with varying dimension overlap.
    for index in range(num_generic):
        campaigns.append(
            generic_cnc(
                name=f"cnc-flux-{seed_tag}-{index}",
                num_clients=2 + index % 3,
                num_servers=4 + index % 5,
                share_file=True,
                share_ip=index % 2 == 0,
                share_whois=index % 3 == 0,
                uri_file=f"cmd{index}.php",
                user_agent=f"Bot/{index}.4",
            )
        )
    # A large single-dimension campaign detectable through URI file alone.
    campaigns.append(
        generic_cnc(
            name=f"cnc-wide-{seed_tag}",
            num_clients=3,
            num_servers=12,
            share_file=True,
            share_ip=False,
            share_whois=False,
            uri_file="update.bin",
            user_agent="Updater/1.1",
        )
    )
    # "Ghost" campaigns: unknown to every ground-truth source and already
    # dead when the analyst probes them — the paper's "suspicious" rows.
    for index in range(num_ghost):
        campaigns.append(
            generic_cnc(
                name=f"ghost-{seed_tag}-{index}",
                num_clients=2,
                num_servers=5 + index,
                share_file=True,
                share_ip=True,
                ids2012_fraction=0.0,
                ids2013_fraction=0.0,
                blacklist_fraction=0.0,
                dead_fraction=0.95,
                uri_file=f"ghost{index}.php",
                user_agent=f"Ghost/{index}.0",
            )
        )
    # Single-client campaigns (Appendix C).
    for index in range(num_single):
        campaigns.append(
            single_client_campaign(
                name=f"single-{seed_tag}-{index}",
                num_servers=4 + index % 5,
                share_file=True,
                share_ip=index % 3 != 2,
                share_whois=index % 3 == 2,
            )
        )
    # Single-client ghost campaigns (suspicious rows of Tables XI/XII).
    for index in range(3):
        campaigns.append(
            single_client_campaign(
                name=f"single-ghost-{seed_tag}-{index}",
                num_servers=5 + index,
                ids2013_fraction=0.0,
                blacklist_fraction=0.0,
                dead_fraction=0.95,
            )
        )
    # Weak single-client campaigns: one shared dimension only, so their
    # eq.-9 score is a bare Phi(herd size).  Small ones clear only the
    # 0.5 threshold, larger ones also 0.8 — they create the Table XI/XII
    # gradient across the sweep.
    for index in range(3):
        campaigns.append(
            single_client_campaign(
                name=f"single-weak-{seed_tag}-{index}",
                num_servers=4 + index,  # Phi(4..6) = 0.50..0.64
                share_file=True,
                share_ip=False,
            )
        )
    for index in range(2):
        campaigns.append(
            single_client_campaign(
                name=f"single-mid-{seed_tag}-{index}",
                num_servers=9 + index,  # Phi(9..10) = 0.90..0.93
                share_file=True,
                share_ip=False,
            )
        )
    return tuple(campaigns)


def data2011day(scale: float = 1.0, seed: int = 2011) -> ScenarioSpec:
    """One-day scenario shaped like the paper's ``Data2011day``."""
    return ScenarioSpec(
        name="data2011day",
        seed=seed,
        num_clients=max(170, int(1500 * scale)),
        num_popular_sites=max(4, int(30 * scale)),
        num_medium_sites=max(10, int(450 * scale)),
        num_longtail_sites=max(80, int(9000 * scale)),
        sites_per_client_mean=10.0,
        campaigns=_day_campaign_mix("a"),
        noise=NoiseSpec(
            torrent_clients=6,
            torrent_trackers=28,
            collaboration_pools=1,
            collaboration_pool_size=16,
            collaboration_clients=20,
            referrer_groups=10,
            referrer_group_size=10,
            redirect_chains=8,
            redirect_chain_length=4,
            adult_groups=4,
            adult_group_size=5,
            shared_hosting_groups=6,
            shared_hosting_group_size=6,
        ),
    )


def data2012day(scale: float = 1.0, seed: int = 2012) -> ScenarioSpec:
    """One-day scenario shaped like the paper's ``Data2012day``."""
    return ScenarioSpec(
        name="data2012day",
        seed=seed,
        num_clients=max(190, int(1800 * scale)),
        num_popular_sites=max(4, int(35 * scale)),
        num_medium_sites=max(10, int(520 * scale)),
        num_longtail_sites=max(80, int(10500 * scale)),
        sites_per_client_mean=11.0,
        campaigns=_day_campaign_mix(
            "b",
            num_generic=7,
            num_single=16,
            num_ghost=2,
            iframe_victims=110,
            scanner_victims=32,
        ),
        noise=NoiseSpec(
            torrent_clients=7,
            torrent_trackers=30,
            collaboration_pools=1,
            collaboration_pool_size=18,
            collaboration_clients=22,
            referrer_groups=11,
            referrer_group_size=10,
            redirect_chains=9,
            redirect_chain_length=4,
            adult_groups=5,
            adult_group_size=5,
            shared_hosting_groups=7,
            shared_hosting_group_size=6,
        ),
    )


def data2012week(scale: float = 1.0, seed: int = 2112) -> ScenarioSpec:
    """Seven-day scenario shaped like ``Data2012week`` (Section V-B).

    Mix of persistent campaigns (same servers all week), agile campaigns
    (same clients, fresh servers daily) and campaigns that first appear
    mid-week with brand-new clients — the three populations of Figure 7.
    """
    all_week = tuple(range(7))
    campaigns: list[CampaignSpec] = [
        # Persistent: same servers every day.
        bagle_like(name="wk-bagle", active_days=all_week),
        sality_like(name="wk-sality", active_days=all_week),
        phishing_campaign(name="wk-phish", active_days=all_week),
        generic_cnc(
            name="wk-cnc-stable",
            num_clients=3,
            num_servers=8,
            share_ip=True,
            uri_file="sync.php",
            user_agent="Sync/0.9",
            active_days=all_week,
        ),
    ]
    # Agile: same clients, new servers every day (the dominant population
    # in Figure 7 — "malware may change their servers/domains every day").
    for index in range(5):
        campaigns.append(
            generic_cnc(
                name=f"wk-agile-{index}",
                num_clients=2 + index % 2,
                num_servers=5 + index % 4,
                share_ip=index % 2 == 0,
                share_whois=index % 2 == 1,
                uri_file=f"ag{index}.php",
                user_agent=f"AgileBot/{index}",
                active_days=all_week,
                agile=True,
            )
        )
    campaigns.append(
        iframe_injection(name="wk-iframe", victims=80, active_days=all_week, agile=True)
    )
    # New campaigns appearing mid-week with fresh clients.
    for day in range(1, 7):
        campaigns.append(
            generic_cnc(
                name=f"wk-new-day{day}",
                num_clients=2,
                num_servers=5,
                share_ip=True,
                uri_file=f"new{day}.php",
                user_agent=f"NewBot/{day}",
                active_days=(day,) if day % 2 else tuple(range(day, 7)),
            )
        )
        campaigns.append(
            single_client_campaign(
                name=f"wk-single-day{day}",
                num_servers=5,
                active_days=(day,),
            )
        )
    return ScenarioSpec(
        name="data2012week",
        seed=seed,
        num_clients=max(140, int(2000 * scale)),
        num_popular_sites=max(4, int(35 * scale)),
        num_medium_sites=max(10, int(520 * scale)),
        num_longtail_sites=max(80, int(10500 * scale)),
        sites_per_client_mean=10.0,
        campaigns=tuple(campaigns),
        noise=NoiseSpec(
            torrent_clients=6,
            torrent_trackers=26,
            collaboration_pools=1,
            collaboration_pool_size=16,
            collaboration_clients=18,
            referrer_groups=8,
            referrer_group_size=10,
            redirect_chains=6,
            redirect_chain_length=4,
            adult_groups=3,
            adult_group_size=5,
            shared_hosting_groups=5,
            shared_hosting_group_size=6,
        ),
        days=7,
    )


def small_scenario(seed: int = 7, days: int = 1) -> ScenarioSpec:
    """A fast scenario for unit and integration tests (runs in seconds)."""
    campaigns = (
        zeus_like(name="small-zeus", num_clients=2, cncs=6),
        iframe_injection(name="small-iframe", num_clients=2, victims=20, ids_known_servers=2),
        generic_cnc(
            name="small-cnc",
            num_clients=2,
            num_servers=5,
            share_ip=True,
            uri_file="beacon.php",
            user_agent="SmallBot/1",
        ),
        single_client_campaign(name="small-single", num_servers=5),
        # Sized so the Section V-A2 parameter-pattern extension can
        # recover it: the shared pattern alone must clear eq. 9
        # (Phi(10) = 0.93 >= 0.8), like the paper's 40-server Cycbot group.
        undetectable_campaign(name="small-fn", num_servers=10),
    )
    return ScenarioSpec(
        name="small",
        seed=seed,
        num_clients=220,
        num_popular_sites=6,
        num_medium_sites=40,
        num_longtail_sites=900,
        sites_per_client_mean=6.0,
        campaigns=tuple(
            c if days == 1 else CampaignSpec(
                **{**c.__dict__, "active_days": tuple(range(days))}
            )
            for c in campaigns
        ),
        noise=NoiseSpec(
            torrent_clients=3,
            torrent_trackers=10,
            collaboration_pools=1,
            collaboration_pool_size=8,
            collaboration_clients=8,
            referrer_groups=3,
            referrer_group_size=8,
            redirect_chains=2,
            redirect_chain_length=4,
            adult_groups=2,
            adult_group_size=4,
            shared_hosting_groups=2,
            shared_hosting_group_size=4,
        ),
        days=days,
    )
