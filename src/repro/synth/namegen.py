"""Deterministic name generation: domains, DGA names, obfuscated filenames.

Three families of names appear in the paper's traces:

* ordinary benign domains (``beachrugbyfestival.com``-style word mashes);
* DGA domains (``4k0t155m.cz.cc``-style low-entropy templates or random
  alphanumerics, Table X);
* obfuscated URI filenames — long random-looking names that differ across
  servers of one campaign but keep a near-identical character distribution,
  so the paper's charset-cosine test (eq. 6) links them (Figure 4).
"""

from __future__ import annotations

import string

import numpy as np

_SYLLABLES = (
    "ba be bi bo bu ca ce ci co cu da de di do du fa fe fi fo fu ga ge gi go "
    "gu ha he hi ho ja je jo ka ke ki ko la le li lo lu ma me mi mo mu na ne "
    "ni no nu pa pe pi po pu ra re ri ro ru sa se si so su ta te ti to tu va "
    "ve vi vo wa we wi wo ya yo za zo sh ch th tr st pl br cr dr fl gr pr sl"
).split()

_TOPIC_WORDS = (
    "news shop tech blog media store cloud data game sport music photo video "
    "travel food health home auto craft garden finance market social mail "
    "search forum wiki book art design studio lab works digital web net line "
    "hub zone spot place world life style daily express global prime micro"
).split()


def pseudo_word(rng: np.random.Generator, min_syllables: int = 2, max_syllables: int = 4) -> str:
    """A pronounceable pseudo-word, e.g. ``'kolireta'``."""
    count = int(rng.integers(min_syllables, max_syllables + 1))
    return "".join(rng.choice(_SYLLABLES) for _ in range(count))


def benign_domain(rng: np.random.Generator, suffix: str = "com") -> str:
    """A plausible benign second-level domain name."""
    style = int(rng.integers(0, 3))
    if style == 0:
        label = pseudo_word(rng)
    elif style == 1:
        label = str(rng.choice(_TOPIC_WORDS)) + pseudo_word(rng, 1, 2)
    else:
        label = str(rng.choice(_TOPIC_WORDS)) + str(rng.choice(_TOPIC_WORDS))
    return f"{label}.{suffix}"


def dga_domain(rng: np.random.Generator, suffix: str = "cz.cc", template: str | None = None) -> str:
    """A DGA-style domain.

    With a *template* (e.g. ``"4k0t1NNm"``), each ``N`` is replaced by a
    random digit — reproducing the near-identical sibling names of the Zeus
    case study (Table X).  Without one, a random 8-12 char alphanumeric
    label is produced.
    """
    if template is not None:
        label = "".join(
            str(rng.integers(0, 10)) if ch == "N" else ch for ch in template
        )
    else:
        length = int(rng.integers(8, 13))
        alphabet = string.ascii_lowercase + string.digits
        label = "".join(rng.choice(list(alphabet)) for _ in range(length))
        if label[0].isdigit():
            label = "x" + label[1:]
    return f"{label}.{suffix}"


def benign_filename(rng: np.random.Generator) -> str:
    """A plausible benign page/script name.

    Real page names are site-specific slugs ("spring-sale-2012.html",
    "post8471.php"), so cross-server collisions are rare; the genuinely
    shared names (``index.html`` & co.) are modelled separately as
    ubiquitous files.  The stem therefore carries enough entropy that two
    independent servers essentially never share a name by accident.
    """
    stem = pseudo_word(rng, 2, 4)
    ext = str(rng.choice(["html", "php", "asp", "htm", "jsp", "png", "jpg", "css", "js"]))
    return f"{stem}{int(rng.integers(1, 10000))}.{ext}"


def obfuscated_filename_family(
    rng: np.random.Generator, count: int, length: int = 40, extension: str = "php"
) -> list[str]:
    """*count* long filenames with near-identical character distributions.

    The family is built by shuffling one base character multiset and
    substituting a couple of characters per member, so pairwise charset
    cosine stays well above the paper's 0.8 threshold while the literal
    strings differ — the Figure-4 obfuscation pattern.
    """
    if count < 1:
        raise ValueError("count must be >= 1")
    if length < 8:
        raise ValueError("length must be >= 8 for a meaningful family")
    alphabet = list(string.ascii_letters + string.digits)
    base = [str(rng.choice(alphabet)) for _ in range(length)]
    family = []
    for _ in range(count):
        chars = list(base)
        rng.shuffle(chars)
        # Substitute ~5% of characters to avoid literal anagram equality.
        for _ in range(max(1, length // 20)):
            position = int(rng.integers(0, length))
            chars[position] = str(rng.choice(alphabet))
        family.append("".join(chars) + "." + extension)
    return family


def ipv4(rng: np.random.Generator) -> str:
    """A random public-looking IPv4 address."""
    first = int(rng.choice([23, 31, 46, 62, 77, 88, 91, 93, 109, 151, 176, 188, 195, 212]))
    return f"{first}.{int(rng.integers(0, 256))}.{int(rng.integers(0, 256))}.{int(rng.integers(1, 255))}"
