"""Synthetic ISP HTTP-trace generator.

This package replaces the paper's 9 days of large-ISP PCAP traces
(Table I).  It produces :class:`~repro.synth.generator.SyntheticDataset`
objects bundling an HTTP trace with the ground-truth artefacts SMASH's
evaluation needs: a Whois registry, two IDS signature generations,
blacklist services, a redirect-chain oracle, a domain-liveness oracle and
the planted-campaign truth.

Entry points:

* :func:`repro.synth.scenarios.data2011day` / ``data2012day`` /
  ``data2012week`` — presets shaped like the paper's datasets.
* :class:`repro.synth.generator.TraceGenerator` — build custom scenarios.
"""

from repro.synth.campaigns import CampaignSpec, TierSpec
from repro.synth.generator import SyntheticDataset, TraceGenerator
from repro.synth.oracles import HostLiveness, RedirectOracle
from repro.synth.scenario_spec import ScenarioSpec
from repro.synth.scenarios import (
    data2011day,
    data2012day,
    data2012week,
    small_scenario,
)
from repro.synth.truth import GroundTruth, PlantedCampaign

__all__ = [
    "CampaignSpec",
    "GroundTruth",
    "HostLiveness",
    "PlantedCampaign",
    "RedirectOracle",
    "ScenarioSpec",
    "SyntheticDataset",
    "TierSpec",
    "TraceGenerator",
    "data2011day",
    "data2012day",
    "data2012week",
    "small_scenario",
]
