"""The scenario specification consumed by :class:`~repro.synth.generator.TraceGenerator`."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ScenarioError
from repro.synth.campaigns import CampaignSpec, NoiseSpec


@dataclass(frozen=True)
class ScenarioSpec:
    """A complete synthetic-trace scenario.

    ``num_clients`` must cover the disjoint client reservations of all
    campaigns plus the dedicated noise clients, with room left for purely
    benign subscribers.
    """

    name: str
    seed: int
    num_clients: int
    num_popular_sites: int
    num_medium_sites: int
    num_longtail_sites: int
    sites_per_client_mean: float
    campaigns: tuple[CampaignSpec, ...] = ()
    noise: NoiseSpec = field(default_factory=NoiseSpec)
    days: int = 1
    zipf_alpha: float = 0.9

    def validate(self) -> None:
        if self.num_clients < 1:
            raise ScenarioError("num_clients must be >= 1")
        if self.days < 1:
            raise ScenarioError("days must be >= 1")
        if self.sites_per_client_mean <= 0:
            raise ScenarioError("sites_per_client_mean must be > 0")
        if self.zipf_alpha <= 0:
            raise ScenarioError("zipf_alpha must be > 0")
        names = [campaign.name for campaign in self.campaigns]
        if len(names) != len(set(names)):
            raise ScenarioError("campaign names must be unique")
        reserved = (
            sum(campaign.num_clients for campaign in self.campaigns)
            + self.noise.torrent_clients
            + self.noise.collaboration_clients
        )
        if reserved >= self.num_clients:
            raise ScenarioError(
                f"scenario reserves {reserved} clients for campaigns/noise but "
                f"only has {self.num_clients}; leave headroom for benign clients"
            )
        for campaign in self.campaigns:
            for day in campaign.active_days:
                if not 0 <= day < self.days:
                    raise ScenarioError(
                        f"campaign {campaign.name!r} active on day {day}, "
                        f"outside [0, {self.days})"
                    )
