"""Assemble complete synthetic datasets.

:class:`TraceGenerator` combines the benign universe, planted campaigns
and noise herds into per-day :class:`SyntheticDataset` objects.  All
randomness is derived from the scenario seed with stable key paths, so:

* the benign site population is identical across the days of a week;
* persistent campaigns keep their servers across days, agile campaigns
  rotate them (Section V-B's persistent-vs-agile analysis);
* regenerating a scenario from the same spec is bit-for-bit reproducible.
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass

from repro.errors import ScenarioError
from repro.groundtruth.blacklist import BlacklistAggregator, BlacklistService
from repro.groundtruth.ids import SignatureIds
from repro.httplog.trace import HttpTrace
from repro.synth.benign import BenignUniverse
from repro.synth.malicious import plant_campaign
from repro.synth.noise import build_noise
from repro.synth.oracles import HostLiveness, RedirectOracle
from repro.synth.scenario_spec import ScenarioSpec
from repro.synth.truth import GroundTruth
from repro.util.rng import child_rng
from repro.whois.registry import WhoisRegistry


@dataclass(frozen=True)
class SyntheticDataset:
    """One day of synthetic ISP traffic plus all evaluation artefacts."""

    name: str
    day: int
    trace: HttpTrace
    whois: WhoisRegistry
    ids2012: SignatureIds
    ids2013: SignatureIds
    blacklists: BlacklistAggregator
    redirects: RedirectOracle
    liveness: HostLiveness
    truth: GroundTruth


class TraceGenerator:
    """Build :class:`SyntheticDataset` objects from a :class:`ScenarioSpec`."""

    def __init__(self, spec: ScenarioSpec) -> None:
        spec.validate()
        self.spec = spec
        self.universe = BenignUniverse(
            seed=spec.seed,
            num_popular=spec.num_popular_sites,
            num_medium=spec.num_medium_sites,
            num_longtail=spec.num_longtail_sites,
            zipf_alpha=spec.zipf_alpha,
        )
        self.clients = [f"c{index:05d}" for index in range(spec.num_clients)]
        self._assign_clients()

    def _assign_clients(self) -> None:
        """Reserve disjoint client subsets for campaigns and noise herds."""
        rng = child_rng(self.spec.seed, "client-assignment")
        order = list(self.clients)
        rng.shuffle(order)
        cursor = 0

        def take(count: int, purpose: str) -> list[str]:
            nonlocal cursor
            if cursor + count > len(order):
                raise ScenarioError(
                    f"not enough clients: need {count} more for {purpose}, "
                    f"only {len(order) - cursor} unassigned remain"
                )
            chunk = order[cursor: cursor + count]
            cursor += count
            return chunk

        self.campaign_clients: dict[str, list[str]] = {}
        for campaign in self.spec.campaigns:
            self.campaign_clients[campaign.name] = take(
                campaign.num_clients, f"campaign {campaign.name!r}"
            )
        self.torrent_clients = take(self.spec.noise.torrent_clients, "torrent noise")
        self.collaboration_clients = take(
            self.spec.noise.collaboration_clients, "collaboration noise"
        )
        self.plain_clients = order[cursor:]

    # ------------------------------------------------------------------------------

    def generate_day(self, day: int = 0) -> SyntheticDataset:
        """Generate the dataset for *day* (0-based)."""
        if not 0 <= day < self.spec.days:
            raise ScenarioError(
                f"day {day} outside scenario range [0, {self.spec.days})"
            )
        spec = self.spec

        traces = [
            HttpTrace(
                self.universe.browse_day(
                    self.clients, day=day, sites_per_client_mean=spec.sites_per_client_mean
                ),
                name="benign",
            )
        ]
        whois = WhoisRegistry(self.universe.whois_records())
        redirects = RedirectOracle()
        liveness = HostLiveness()
        campaigns = []
        signatures_2012 = []
        signatures_2013 = []
        blacklist_primary: dict[str, set[str]] = {}
        blacklist_feeds: dict[str, set[str]] = {}

        # Background visitors of compromised-benign servers come from the
        # whole uninfected population: any two victims sharing the same
        # accidental visitor twice would otherwise grow artificial
        # sub-structure inside the victim herd.
        background = self.plain_clients
        for campaign in spec.campaigns:
            if day not in campaign.active_days:
                continue
            planted = plant_campaign(
                campaign,
                clients=self.campaign_clients[campaign.name],
                seed=spec.seed,
                day=day,
                background_clients=background,
            )
            traces.append(HttpTrace(planted.requests, name=campaign.name))
            for record in planted.whois_records:
                whois.add(record)
            signatures_2012.extend(planted.signatures_2012)
            signatures_2013.extend(planted.signatures_2013)
            for service, servers in planted.blacklist_primary.items():
                blacklist_primary.setdefault(service, set()).update(servers)
            for feed, servers in planted.blacklist_feeds.items():
                blacklist_feeds.setdefault(feed, set()).update(servers)
            for server in planted.dead_servers:
                liveness.mark_dead(server)
            assert planted.planted is not None
            campaigns.append(planted.planted)

        noise = build_noise(
            spec.noise,
            torrent_clients=self.torrent_clients,
            collaboration_clients=self.collaboration_clients,
            browsing_clients=self.plain_clients or self.clients,
            seed=spec.seed,
            day=day,
        )
        traces.append(HttpTrace(noise.requests, name="noise"))
        for record in noise.whois_records:
            whois.add(record)
        for chain in noise.redirect_chains:
            redirects.add_chain(chain)

        trace = HttpTrace.concat(traces, name=f"{spec.name}-day{day}")
        truth = GroundTruth(
            campaigns=tuple(campaigns),
            benign_servers=self.universe.domains | frozenset(noise.category_of),
            noise_category=dict(noise.category_of),
        )
        blacklists = BlacklistAggregator(
            primary=[
                BlacklistService.from_servers(name, servers)
                for name, servers in sorted(blacklist_primary.items())
            ],
            aggregated_feeds=[
                BlacklistService.from_servers(name, servers)
                for name, servers in sorted(blacklist_feeds.items())
            ],
        )
        return SyntheticDataset(
            name=f"{spec.name}-day{day}",
            day=day,
            trace=trace,
            whois=whois,
            ids2012=SignatureIds("ids2012", signatures_2012),
            ids2013=SignatureIds("ids2013", signatures_2013),
            blacklists=blacklists,
            redirects=redirects,
            liveness=liveness,
            truth=truth,
        )

    def generate_week(self) -> list[SyntheticDataset]:
        """Generate all days of the scenario."""
        return [self.generate_day(day) for day in range(self.spec.days)]

    def iter_days(self, start: int = 0) -> Iterator[SyntheticDataset]:
        """Lazily generate days ``start .. spec.days`` one at a time.

        The streaming engine's natural feed: each day is materialised
        only when the stream is ready to ingest it, so a long scenario
        never holds more than one day in memory on the producer side.
        """
        for day in range(start, self.spec.days):
            yield self.generate_day(day)
