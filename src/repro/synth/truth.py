"""Planted ground truth of a synthetic dataset.

The evaluation harness never peeks at this to *run* SMASH — the pipeline
only sees the trace and the oracles, like the paper's system only sees
traffic.  The truth is used for (a) wiring the IDS/blacklist ground-truth
sources, and (b) scoring SMASH's output against what was actually planted
(precision/recall style sanity checks that the paper cannot do but a
synthetic universe can).
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass, field


@dataclass(frozen=True)
class PlantedCampaign:
    """One campaign as actually materialised in the trace."""

    name: str
    category: str
    activity: str  # "communication" | "attacking"
    servers: frozenset[str]  # aggregated (second-level) server names
    clients: frozenset[str]
    tier_of_server: dict[str, str] = field(default_factory=dict)
    day: int = 0

    def servers_in_tier(self, role: str) -> frozenset[str]:
        return frozenset(
            server for server, tier in self.tier_of_server.items() if tier == role
        )


@dataclass(frozen=True)
class GroundTruth:
    """Everything the generator planted, in aggregated-name space."""

    campaigns: tuple[PlantedCampaign, ...]
    benign_servers: frozenset[str]
    #: Benign servers whose herd-like behaviour the paper identifies as the
    #: two FP noise categories; maps server -> "torrent" | "collaboration".
    noise_category: dict[str, str] = field(default_factory=dict)

    @property
    def malicious_servers(self) -> frozenset[str]:
        """All servers involved in malicious activity (victims included)."""
        servers: set[str] = set()
        for campaign in self.campaigns:
            servers |= campaign.servers
        return frozenset(servers)

    @property
    def noise_servers(self) -> frozenset[str]:
        return frozenset(self.noise_category)

    def campaign_of(self, server: str) -> PlantedCampaign | None:
        """The first planted campaign containing *server*, if any."""
        for campaign in self.campaigns:
            if server in campaign.servers:
                return campaign
        return None

    def campaigns_with_min_clients(self, minimum: int) -> tuple[PlantedCampaign, ...]:
        return tuple(c for c in self.campaigns if len(c.clients) >= minimum)

    def merged_with(self, other: "GroundTruth") -> "GroundTruth":
        """Union of two truths (used when concatenating day traces)."""
        noise = dict(self.noise_category)
        noise.update(other.noise_category)
        return GroundTruth(
            campaigns=self.campaigns + other.campaigns,
            benign_servers=self.benign_servers | other.benign_servers,
            noise_category=noise,
        )

    @staticmethod
    def merge_all(truths: Iterable["GroundTruth"]) -> "GroundTruth":
        result = GroundTruth(campaigns=(), benign_servers=frozenset())
        for truth in truths:
            result = result.merged_with(truth)
        return result
