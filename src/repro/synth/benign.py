"""Benign web-browsing model.

Residential clients browse a site population with Zipf-like popularity
(a few very popular properties, a medium tier, and a long tail visited by
one or two clients a day).  This reproduces the structural facts SMASH's
preprocessing relies on:

* popular sites are contacted by far more clients than the IDF threshold
  and get filtered (Appendix A);
* popular properties spread across many FQDNs (CDN subdomains) that
  second-level aggregation collapses (Section III-A's 60% reduction);
* benign servers expose many URI files and different users fetch
  different pages (Section I's "diverse behaviour" insight);
* long-tail servers visited by a single client end up inside that
  client's single-client herd, the paper's main residual FP source
  (Appendix C).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ScenarioError
from repro.httplog.records import HttpRequest
from repro.synth.namegen import benign_domain, benign_filename, ipv4, pseudo_word
from repro.util.rng import child_rng
from repro.whois.record import WhoisRecord

#: Filenames present on a large share of benign servers; they carry no
#: campaign signal (and the URI-file dimension ignores ubiquitous names).
UBIQUITOUS_FILES: tuple[str, ...] = (
    "index.html",
    "style.css",
    "main.js",
    "logo.png",
    "favicon.ico",
)

#: Popular DNS hosting providers; benign registrations share these name
#: servers widely, which is exactly one Whois field and therefore not
#: enough to associate servers (Section III-B2's two-field rule).
_NS_POOLS: tuple[tuple[str, ...], ...] = (
    ("ns1.bluewire-dns.com", "ns2.bluewire-dns.com"),
    ("ns1.hostpanel.net", "ns2.hostpanel.net"),
    ("dns1.registrar-park.com", "dns2.registrar-park.com"),
    ("ns1.webfarm-dns.org", "ns2.webfarm-dns.org"),
    ("ns1.cheapdns.biz", "ns2.cheapdns.biz"),
)

_PROXY_CONTACT = {
    "registrant": "WhoisGuard Protected",
    "address": "PO Box 0823-03411, Panama",
    "email": "contact@whoisguard.example",
    "phone": "+507.8365503",
}


@dataclass(frozen=True)
class BenignSite:
    """One benign web property."""

    domain: str  # registrable (second-level) domain
    hosts: tuple[str, ...]  # FQDNs actually appearing in requests
    ips: tuple[str, ...]
    files: tuple[str, ...]
    weight: float  # relative popularity


class BenignUniverse:
    """The benign site population plus the per-client browsing sampler."""

    def __init__(
        self,
        seed: int,
        num_popular: int,
        num_medium: int,
        num_longtail: int,
        zipf_alpha: float = 0.9,
    ) -> None:
        if num_popular < 0 or num_medium < 0 or num_longtail < 0:
            raise ScenarioError("site counts must be non-negative")
        if num_popular + num_medium + num_longtail == 0:
            raise ScenarioError("benign universe must contain at least one site")
        self.seed = seed
        rng = child_rng(seed, "benign-sites")
        self.sites: list[BenignSite] = []
        used_domains: set[str] = set()

        def fresh_domain(generator: np.random.Generator, suffix: str) -> str:
            for _ in range(64):
                candidate = benign_domain(generator, suffix=suffix)
                if candidate not in used_domains:
                    used_domains.add(candidate)
                    return candidate
            # Fall back to an indexed name; collisions are astronomically
            # unlikely to exhaust this too.
            fallback = f"{pseudo_word(generator)}{len(used_domains)}.{suffix}"
            used_domains.add(fallback)
            return fallback

        total = num_popular + num_medium + num_longtail
        rank = 0
        for tier, count in (
            ("popular", num_popular), ("medium", num_medium), ("longtail", num_longtail)
        ):
            for _ in range(count):
                rank += 1
                weight = 1.0 / (rank ** zipf_alpha)
                suffix = str(rng.choice(["com", "com", "com", "net", "org", "it", "de", "co.uk"]))
                domain = fresh_domain(rng, suffix)
                if tier == "popular":
                    subdomains = ["www"] + [
                        f"{prefix}{i}"
                        for i, prefix in enumerate(
                            rng.choice(
                                ["img", "cdn", "static", "api", "m"], size=int(rng.integers(2, 7))
                            )
                        )
                    ]
                    hosts = tuple(f"{sub}.{domain}" for sub in subdomains)
                    ips = tuple(ipv4(rng) for _ in range(len(hosts)))
                    num_files = int(rng.integers(60, 200))
                elif tier == "medium":
                    hosts = (f"www.{domain}", domain)
                    ips = (ipv4(rng),)
                    num_files = int(rng.integers(15, 60))
                else:
                    hosts = (domain,)
                    ips = (ipv4(rng),)
                    num_files = int(rng.integers(4, 15))
                files = tuple(
                    dict.fromkeys(
                        list(UBIQUITOUS_FILES)
                        + [benign_filename(rng) for _ in range(num_files)]
                    )
                )
                self.sites.append(
                    BenignSite(domain=domain, hosts=hosts, ips=ips, files=files, weight=weight)
                )
        del total
        weights = np.array([site.weight for site in self.sites])
        self._probabilities = weights / weights.sum()

    # -- Whois -------------------------------------------------------------------

    def whois_records(self) -> list[WhoisRecord]:
        """Independent registrations; ~30% through a privacy proxy."""
        rng = child_rng(self.seed, "benign-whois")
        records = []
        for site in self.sites:
            nameservers = _NS_POOLS[int(rng.integers(0, len(_NS_POOLS)))]
            if rng.random() < 0.3:
                records.append(
                    WhoisRecord(
                        domain=site.domain,
                        registrant=_PROXY_CONTACT["registrant"],
                        address=_PROXY_CONTACT["address"],
                        email=_PROXY_CONTACT["email"],
                        phone=_PROXY_CONTACT["phone"],
                        name_servers=nameservers,
                        registered_on=float(rng.integers(0, 3650)),
                        is_proxy=True,
                    )
                )
            else:
                owner = pseudo_word(rng, 2, 3).title() + " " + pseudo_word(rng, 2, 3).title()
                records.append(
                    WhoisRecord(
                        domain=site.domain,
                        registrant=owner,
                        address=f"{int(rng.integers(1, 999))} {pseudo_word(rng, 2, 3).title()} St",
                        email=f"admin@{site.domain}",
                        phone=f"+1.{int(rng.integers(2000000000, 9999999999))}",
                        name_servers=nameservers,
                        registered_on=float(rng.integers(0, 3650)),
                    )
                )
        return records

    # -- browsing ----------------------------------------------------------------

    def browse_day(
        self,
        clients: list[str],
        day: int,
        sites_per_client_mean: float,
        day_seconds: float = 86400.0,
    ) -> list[HttpRequest]:
        """Emit one day of benign browsing for *clients*.

        Each client visits a lognormal number of distinct sites sampled by
        popularity, requesting a handful of that site's files per visit.
        """
        rng = child_rng(self.seed, "browse", day)
        requests: list[HttpRequest] = []
        base_time = day * day_seconds
        num_sites = len(self.sites)
        for client in clients:
            count = max(1, int(rng.lognormal(mean=np.log(sites_per_client_mean), sigma=0.6)))
            count = min(count, num_sites)
            indices = rng.choice(num_sites, size=count, replace=False, p=self._probabilities)
            for site_index in indices:
                site = self.sites[int(site_index)]
                host = site.hosts[int(rng.integers(0, len(site.hosts)))]
                ip = site.ips[int(rng.integers(0, len(site.ips)))]
                visit_time = base_time + float(rng.uniform(0.0, day_seconds))
                # A visit opens the landing page (plus, often, its shared
                # assets) before any content page: the genuinely ubiquitous
                # filenames are therefore observed on nearly every visited
                # server, exactly the population the URI-file dimension's
                # ubiquity filter is meant to discard.
                fetches = [site.files[0]]
                for asset in UBIQUITOUS_FILES[1:]:
                    if rng.random() < 0.55:
                        fetches.append(asset)
                for _ in range(int(rng.integers(0, 4))):
                    fetches.append(site.files[int(rng.integers(0, len(site.files)))])
                for fetch, filename in enumerate(fetches):
                    requests.append(
                        HttpRequest(
                            timestamp=visit_time + fetch * float(rng.uniform(0.2, 3.0)),
                            client=client,
                            host=host,
                            server_ip=ip,
                            uri=f"/{filename}",
                            user_agent="Mozilla/5.0 (Windows NT 6.1) Gecko/2010 Firefox/8.0",
                            referrer="" if fetch == 0 else f"http://{host}/",
                            status=200 if rng.random() > 0.02 else 404,
                        )
                    )
        return requests

    @property
    def domains(self) -> frozenset[str]:
        return frozenset(site.domain for site in self.sites)
