"""Materialise malware campaigns into trace records and ground truth.

Planting a :class:`~repro.synth.campaigns.CampaignSpec` produces:

* HTTP requests from the campaign's infected clients to each tier server,
  with the campaign protocol's URI file, User-Agent and parameter pattern;
* Whois registrations for the tier domains (shared registrant block when
  the spec says so — Figure 5);
* IDS signatures for the 2012 and 2013 generations covering the spec'd
  server fractions, plus an optional server-agnostic protocol signature;
* blacklist listings covering the spec'd fraction;
* dead-domain marks for verification-time liveness probing;
* a :class:`~repro.synth.truth.PlantedCampaign` describing what went in.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.groundtruth.labels import Signature, ThreatLabel
from repro.httplog.records import HttpRequest
from repro.synth.campaigns import CampaignSpec, TierSpec
from repro.synth.namegen import (
    benign_domain,
    benign_filename,
    dga_domain,
    ipv4,
    obfuscated_filename_family,
    pseudo_word,
)
from repro.synth.truth import PlantedCampaign
from repro.util.rng import child_rng
from repro.whois.record import WhoisRecord


@dataclass
class PlantResult:
    """Everything one campaign contributes to a day's dataset."""

    requests: list[HttpRequest] = field(default_factory=list)
    whois_records: list[WhoisRecord] = field(default_factory=list)
    signatures_2012: list[Signature] = field(default_factory=list)
    signatures_2013: list[Signature] = field(default_factory=list)
    blacklist_primary: dict[str, list[str]] = field(default_factory=dict)
    blacklist_feeds: dict[str, list[str]] = field(default_factory=dict)
    dead_servers: list[str] = field(default_factory=list)
    planted: PlantedCampaign | None = None


@dataclass(frozen=True)
class _MaterializedTier:
    spec: TierSpec
    servers: tuple[str, ...]  # second-level domains (the SMASH name space)
    ips_of: dict[str, tuple[str, ...]]
    file_of: dict[str, str]  # the campaign URI file each server answers


_PRIMARY_BLACKLISTS = (
    "malware-domain-blocklist",
    "malware-domain-list",
    "phishtank",
    "spyeye-tracker",
    "zeus-tracker",
    "virustotal",
)

_AGGREGATED_FEEDS = tuple(f"feed-{index:02d}" for index in range(12))


def _materialize_tier(
    spec: TierSpec,
    rng: np.random.Generator,
    used_domains: set[str],
) -> _MaterializedTier:
    """Pick domains, IPs and per-server URI files for one tier."""
    servers: list[str] = []
    for _ in range(spec.num_servers):
        for _attempt in range(64):
            if spec.compromised_benign:
                candidate = benign_domain(
                    rng, suffix=str(rng.choice(["com", "org", "it", "nl", "co.uk", "sk"]))
                )
            elif spec.dga_domains:
                candidate = dga_domain(rng, suffix=spec.domain_suffix, template=spec.dga_template)
            else:
                candidate = benign_domain(rng, suffix=spec.domain_suffix)
            if candidate not in used_domains:
                used_domains.add(candidate)
                servers.append(candidate)
                break
        else:
            fallback = f"{pseudo_word(rng)}{len(used_domains)}.{spec.domain_suffix}"
            used_domains.add(fallback)
            servers.append(fallback)

    ips_of: dict[str, tuple[str, ...]] = {}
    if spec.share_ips and not spec.compromised_benign:
        pool = tuple(ipv4(rng) for _ in range(spec.num_ips))
        for server in servers:
            ips_of[server] = pool
    else:
        for server in servers:
            ips_of[server] = (ipv4(rng),)

    file_of: dict[str, str] = {}
    if spec.obfuscated_filenames:
        # Obfuscated names in the wild span a wide length range; the
        # paper's Figure 10 tail reaches 211 characters.
        length = int(rng.choice([36, 48, 64, 120, 200]))
        family = obfuscated_filename_family(rng, count=len(servers), length=length)
        for server, filename in zip(servers, family):
            file_of[server] = filename
    elif spec.distinct_files:
        for index, server in enumerate(servers):
            file_of[server] = f"{pseudo_word(rng, 2, 3)}{index}.php"
    else:
        for server in servers:
            file_of[server] = str(rng.choice(list(spec.uri_files)))
    return _MaterializedTier(spec=spec, servers=tuple(servers), ips_of=ips_of, file_of=file_of)


def _tier_whois(
    tier: _MaterializedTier,
    rng: np.random.Generator,
) -> list[WhoisRecord]:
    spec = tier.spec
    records = []
    if spec.share_whois and not spec.compromised_benign:
        shared_registrant = pseudo_word(rng, 2, 3).title() + " " + pseudo_word(rng, 2, 3).title()
        shared_address = f"{int(rng.integers(1, 99))} {pseudo_word(rng, 2, 3).title()} Ave, {pseudo_word(rng, 2, 2).title()}"
        shared_phone = f"+7.{int(rng.integers(4000000000, 4999999999))}"
        shared_email = f"{pseudo_word(rng, 2, 2)}@{pseudo_word(rng, 2, 2)}mail.example"
        shared_ns = (f"ns1.{pseudo_word(rng, 2, 3)}.su", f"ns2.{pseudo_word(rng, 2, 3)}.su")
        registered = float(rng.integers(3600, 3650))  # freshly registered
        for server in tier.servers:
            # Mirror Figure 5: the registrant *name* sometimes differs while
            # address/phone/name-servers stay identical.
            registrant = (
                shared_registrant
                if rng.random() < 0.7
                else pseudo_word(rng, 2, 3).title() + " " + pseudo_word(rng, 2, 3).title()
            )
            records.append(
                WhoisRecord(
                    domain=server,
                    registrant=registrant,
                    address=shared_address,
                    email=shared_email,
                    phone=shared_phone,
                    name_servers=shared_ns,
                    registered_on=registered + float(rng.uniform(0.0, 5.0)),
                )
            )
    else:
        for server in tier.servers:
            owner = pseudo_word(rng, 2, 3).title() + " " + pseudo_word(rng, 2, 3).title()
            records.append(
                WhoisRecord(
                    domain=server,
                    registrant=owner,
                    address=f"{int(rng.integers(1, 999))} {pseudo_word(rng, 2, 3).title()} St",
                    email=f"admin@{server}",
                    phone=f"+1.{int(rng.integers(2000000000, 9999999999))}",
                    name_servers=(
                        f"ns1.{pseudo_word(rng, 2, 2)}dns.com",
                        f"ns2.{pseudo_word(rng, 2, 2)}dns.com",
                    ),
                    registered_on=float(rng.integers(0, 3600)),
                )
            )
    return records


def _campaign_uri(tier: TierSpec, filename: str, rng: np.random.Generator) -> str:
    """Build the request URI for one tier request."""
    if filename == "/":
        path = "/"
    else:
        # Victims of attacking campaigns host the target file under
        # installation-specific paths (Table IX); dedicated malicious
        # servers use the tier's fixed path.
        if tier.compromised_benign and rng.random() < 0.5:
            directory = str(
                rng.choice(["/wp-content/uploads/", "/images/", "/uploads/", "/tmp/", "/admin/"])
            )
        else:
            directory = tier.uri_path
        path = directory + filename
    if tier.parameter_names:
        rendered = "&".join(
            f"{name}={int(rng.integers(0, 99999999))}" for name in tier.parameter_names
        )
        return f"{path}?{rendered}"
    return path


def plant_campaign(
    spec: CampaignSpec,
    clients: list[str],
    seed: int,
    day: int,
    background_clients: list[str] | None = None,
    day_seconds: float = 86400.0,
) -> PlantResult:
    """Materialise *spec* for one active day.

    ``clients`` are the campaign's infected/attacking clients (already
    drawn from the client population by the caller).  ``background_clients``
    is a sample of uninfected clients used to give compromised-benign tier
    servers a trickle of legitimate traffic.

    Server materialisation is keyed by ``(seed, spec.name)`` for persistent
    campaigns and ``(seed, spec.name, day)`` for agile ones, so a
    persistent campaign keeps identical servers across a week of traces
    while an agile campaign rotates them (Section V-B).
    """
    if len(clients) != spec.num_clients:
        raise ValueError(
            f"campaign {spec.name!r} expects {spec.num_clients} clients, got {len(clients)}"
        )
    if spec.agile:
        server_rng = child_rng(seed, "campaign-servers", spec.name, day)
    else:
        server_rng = child_rng(seed, "campaign-servers", spec.name)
    traffic_rng = child_rng(seed, "campaign-traffic", spec.name, day)

    result = PlantResult()
    used: set[str] = set()
    tiers = [_materialize_tier(tier, server_rng, used) for tier in spec.tiers]

    label = ThreatLabel(threat_id=spec.name, category=spec.category)
    tier_of_server: dict[str, str] = {}
    all_servers: list[str] = []
    for tier in tiers:
        result.whois_records.extend(_tier_whois(tier, server_rng))
        for server in tier.servers:
            tier_of_server[server] = tier.spec.role
            all_servers.append(server)

    # --- traffic -------------------------------------------------------------
    base_time = day * day_seconds
    for tier in tiers:
        for server in tier.servers:
            contacting = [
                client
                for client in clients
                if len(clients) == 1 or traffic_rng.random() < tier.spec.contact_fraction
            ]
            if not contacting:
                contacting = [clients[int(traffic_rng.integers(0, len(clients)))]]
            ips = tier.ips_of[server]
            filename = tier.file_of[server]
            uri = _campaign_uri(tier.spec, filename, traffic_rng)
            for client in contacting:
                for _ in range(tier.spec.requests_per_client):
                    # Compromised-benign servers answer 200: the targeted
                    # file exists there (that is what makes them part of
                    # the campaign).  Dedicated malicious servers are
                    # flakier (overloaded/migrating infrastructure).
                    if tier.spec.compromised_benign:
                        status = 200
                    else:
                        status = 200 if traffic_rng.random() > 0.1 else 404
                    result.requests.append(
                        HttpRequest(
                            timestamp=base_time + float(traffic_rng.uniform(0.0, day_seconds)),
                            client=client,
                            host=server,
                            server_ip=str(ips[int(traffic_rng.integers(0, len(ips)))]),
                            uri=uri,
                            user_agent=tier.spec.user_agent,
                            referrer="",
                            status=status,
                        )
                    )
            # Background benign traffic for compromised-benign servers.
            if tier.spec.compromised_benign and background_clients:
                for _ in range(int(traffic_rng.integers(0, 3))):
                    visitor = background_clients[
                        int(traffic_rng.integers(0, len(background_clients)))
                    ]
                    result.requests.append(
                        HttpRequest(
                            timestamp=base_time + float(traffic_rng.uniform(0.0, day_seconds)),
                            client=visitor,
                            host=server,
                            server_ip=str(ips[0]),
                            uri=f"/{benign_filename(traffic_rng)}",
                            user_agent="Mozilla/5.0 (Windows NT 6.1) Gecko/2010 Firefox/8.0",
                            status=200,
                        )
                    )

    # --- ground truth wiring ---------------------------------------------------
    truth_rng = child_rng(seed, "campaign-truth", spec.name)
    shuffled = list(all_servers)
    truth_rng.shuffle(shuffled)
    count_2012 = int(round(spec.ids2012_fraction * len(shuffled)))
    count_2013 = int(round(spec.ids2013_fraction * len(shuffled)))
    for server in shuffled[:count_2012]:
        result.signatures_2012.append(Signature(label=label, server=server))
    for server in shuffled[:count_2013]:
        result.signatures_2013.append(Signature(label=label, server=server))
    if spec.ids_protocol_signature:
        # A protocol signature keys on the campaign's UA + URI file, so the
        # IDS catches the protocol on servers it has never seen.
        protocol_tier = tiers[0]
        protocol_file = protocol_tier.file_of[protocol_tier.servers[0]]
        protocol = Signature(
            label=label,
            uri_file=protocol_file,
            user_agent=protocol_tier.spec.user_agent,
        )
        result.signatures_2012.append(protocol)
        result.signatures_2013.append(protocol)

    truth_rng.shuffle(shuffled)
    count_blacklist = int(round(spec.blacklist_fraction * len(shuffled)))
    for server in shuffled[:count_blacklist]:
        if truth_rng.random() < 0.7:
            service = str(truth_rng.choice(list(_PRIMARY_BLACKLISTS)))
            result.blacklist_primary.setdefault(service, []).append(server)
        else:
            feeds = truth_rng.choice(len(_AGGREGATED_FEEDS), size=2, replace=False)
            for feed_index in feeds:
                result.blacklist_feeds.setdefault(
                    _AGGREGATED_FEEDS[int(feed_index)], []
                ).append(server)
    # A few servers land on exactly one aggregated feed — not enough for
    # confirmation under the paper's two-vote rule.
    for server in shuffled[count_blacklist: count_blacklist + max(0, len(shuffled) // 10)]:
        feed = _AGGREGATED_FEEDS[int(truth_rng.integers(0, len(_AGGREGATED_FEEDS)))]
        result.blacklist_feeds.setdefault(feed, []).append(server)

    for server in all_servers:
        is_victim = tier_of_server[server] in {
            tier.spec.role for tier in tiers if tier.spec.compromised_benign
        }
        if not is_victim and truth_rng.random() < spec.dead_fraction:
            result.dead_servers.append(server)

    result.planted = PlantedCampaign(
        name=spec.name,
        category=spec.category,
        activity=spec.activity,
        servers=frozenset(all_servers),
        clients=frozenset(clients),
        tier_of_server=tier_of_server,
        day=day,
    )
    return result
