"""SMASH — Systematic Mining of Associated Server Herds.

A full reproduction of Zhang, Saha, Gu, Lee, Mellia, *"Systematic Mining
of Associated Server Herds for Malware Campaign Discovery"*, ICDCS 2015.

Public API quick tour::

    from repro import SmashPipeline, SmashConfig
    from repro.synth import data2011day, TraceGenerator

    dataset = TraceGenerator(data2011day()).generate_day(0)
    result = SmashPipeline(SmashConfig()).run(
        dataset.trace, whois=dataset.whois, redirects=dataset.redirects
    )
    for campaign in result.campaigns_with_clients(2):
        print(campaign.num_servers, sorted(campaign.servers)[:5])

Packages:

* :mod:`repro.core` — the SMASH pipeline (preprocess, dimensions, ASH
  mining, correlation, pruning, campaign inference);
* :mod:`repro.stream` — incremental multi-day streaming engine: rolling
  window, per-advance pipeline runs, cross-day campaign identity
  tracking (stable IDs, persistence, churn), alert sinks and
  checkpoint/resume;
* :mod:`repro.synth` — synthetic ISP trace generator (the evaluation
  substrate);
* :mod:`repro.groundtruth` — signature IDS + blacklist ground truth;
* :mod:`repro.obs` — opt-in observability: metrics registry, stage
  spans, Prometheus-text and JSONL-snapshot exporters (recording never
  changes outputs);
* :mod:`repro.eval` — the paper's verification methodology and every
  table/figure of Section V;
* :mod:`repro.baselines` — IDS-only, blacklist-only, client-clustering
  and domain-reputation baselines;
* :mod:`repro.graph` / :mod:`repro.httplog` / :mod:`repro.whois` /
  :mod:`repro.domains` — substrates.
"""

from repro.config import (
    CorrelationConfig,
    DimensionConfig,
    LouvainConfig,
    PreprocessConfig,
    PruningConfig,
    SmashConfig,
)
from repro.core import Campaign, Herd, SmashPipeline, SmashResult
from repro.errors import (
    CheckpointError,
    ConfigError,
    GraphError,
    GroundTruthError,
    ObsError,
    PipelineError,
    ReproError,
    ScenarioError,
    StreamError,
    TraceError,
)
from repro.stream import (
    CampaignTracker,
    RollingWindow,
    StreamingSmash,
    StreamUpdate,
    TrackedCampaign,
    TrackerConfig,
)

__version__ = "1.0.0"

__all__ = [
    "Campaign",
    "CampaignTracker",
    "CheckpointError",
    "ConfigError",
    "CorrelationConfig",
    "DimensionConfig",
    "GraphError",
    "GroundTruthError",
    "Herd",
    "LouvainConfig",
    "ObsError",
    "PipelineError",
    "PreprocessConfig",
    "PruningConfig",
    "ReproError",
    "RollingWindow",
    "ScenarioError",
    "SmashConfig",
    "SmashPipeline",
    "SmashResult",
    "StreamError",
    "StreamUpdate",
    "StreamingSmash",
    "TraceError",
    "TrackedCampaign",
    "TrackerConfig",
    "__version__",
]
