"""User-Agent helpers.

SMASH's verification step (Section V-A2) confirms "New Servers" by
comparing request patterns — User-Agent among them — against IDS-confirmed
servers.  Malware frequently uses a fixed, unusual User-Agent across a
campaign (the paper shows "Internet Exploder" for Bagle and
"KUKU v5.05exp" for Sality), so exact UA matching is a strong signal.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Iterable

from repro.httplog.records import HttpRequest

#: User-Agent values so generic they carry no campaign signal.
GENERIC_USER_AGENT_PREFIXES: tuple[str, ...] = (
    "mozilla/5.0",
    "mozilla/4.0 (compatible; msie",
    "opera/",
    "safari/",
    "chrome/",
)


def is_generic_user_agent(user_agent: str) -> bool:
    """True when *user_agent* looks like an ordinary browser string."""
    lowered = user_agent.strip().lower()
    if not lowered or lowered == "-":
        # An absent UA is itself distinctive (Table IX's iframe campaign
        # uses "-"), so it is NOT generic.
        return False
    return any(lowered.startswith(prefix) for prefix in GENERIC_USER_AGENT_PREFIXES)


def dominant_user_agent(requests: Iterable[HttpRequest]) -> str | None:
    """Most frequent User-Agent among *requests*; None for no requests."""
    counts = Counter(request.user_agent for request in requests)
    if not counts:
        return None
    return counts.most_common(1)[0][0]


def user_agent_profile(requests: Iterable[HttpRequest]) -> frozenset[str]:
    """The set of non-generic User-Agents seen in *requests*."""
    return frozenset(
        request.user_agent
        for request in requests
        if not is_generic_user_agent(request.user_agent)
    )
