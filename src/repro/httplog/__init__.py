"""HTTP-log substrate: request records, URI parsing, trace containers."""

from repro.httplog.records import HttpRequest
from repro.httplog.trace import HttpTrace, TraceStats
from repro.httplog.uri import split_uri, uri_file
from repro.httplog.loader import read_jsonl, write_jsonl

__all__ = [
    "HttpRequest",
    "HttpTrace",
    "TraceStats",
    "read_jsonl",
    "split_uri",
    "uri_file",
    "write_jsonl",
]
