"""URI parsing helpers.

The paper's URI-file dimension works on the **URI file**: "the substring of
a URI starting from the last '/' until the end before the question mark,
which usually is the file or script used for handling clients' requests"
(Section III-B2).  Paths are deliberately ignored because, in attacking
campaigns, the same vulnerable file sits under installation-specific paths
(Table IX shows ``/images/sm3.php`` and ``/wp-content/uploads/sm3.php``).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class SplitUri:
    """The three parts of a request URI that SMASH cares about."""

    path: str
    filename: str
    query: str


def split_uri(uri: str) -> SplitUri:
    """Split *uri* into directory path, URI file, and query string.

    >>> split_uri("/images/news.php?p=1&id=2")
    SplitUri(path='/images/', filename='news.php', query='p=1&id=2')
    >>> split_uri("/")
    SplitUri(path='/', filename='', query='')
    """
    if not uri:
        raise ValueError("empty URI")
    # Strip any fragment first; rare in logs but cheap to handle.
    base, _, _fragment = uri.partition("#")
    before_query, _, query = base.partition("?")
    slash = before_query.rfind("/")
    if slash < 0:
        # Malformed relative URI; treat the whole thing as the filename.
        return SplitUri(path="", filename=before_query, query=query)
    return SplitUri(
        path=before_query[: slash + 1],
        filename=before_query[slash + 1:],
        query=query,
    )


def uri_file(uri: str) -> str:
    """Return the paper's "URI file" for *uri*.

    A request for a bare directory (``/`` or ``/images/``) has an empty
    filename; the paper's Sality case study (Table VIII) shows ``/`` used
    as the shared "filename" of C&C domains, so we map directory requests
    to the literal ``"/"`` to keep them comparable.

    >>> uri_file("/images/news.php?p=16435&id=21799517&e=0")
    'news.php'
    >>> uri_file("/")
    '/'
    """
    parts = split_uri(uri)
    if parts.filename:
        return parts.filename
    return "/"


def query_parameter_names(uri: str) -> tuple[str, ...]:
    """Sorted tuple of parameter names in the query string.

    Used by the verification step (Section V-A2) that confirms "New
    Servers" by matching parameter patterns against IDS-confirmed servers,
    and by the parameter-pattern extension discussed in the paper's
    false-negative analysis.

    >>> query_parameter_names("/news.php?p=16435&id=21799517&e=0")
    ('e', 'id', 'p')
    """
    parts = split_uri(uri)
    if not parts.query:
        return ()
    names = []
    for piece in parts.query.split("&"):
        if not piece:
            continue
        name, _, _value = piece.partition("=")
        if name:
            names.append(name)
    return tuple(sorted(set(names)))
