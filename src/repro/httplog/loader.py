"""JSONL serialisation of HTTP traces.

The ISP traces of the paper are PCAP; our substitute stores the extracted
request tuples as one JSON object per line, which is what a production
deployment's flow-collector would emit.  Round-tripping a trace through
:func:`write_jsonl` / :func:`read_jsonl` is lossless.
"""

from __future__ import annotations

import gzip
import json
from pathlib import Path

from repro.errors import TraceError
from repro.httplog.records import HttpRequest
from repro.httplog.trace import HttpTrace


def _open_for_read(path: Path):
    if path.suffix == ".gz":
        return gzip.open(path, "rt", encoding="utf-8")
    return open(path, "r", encoding="utf-8")


def _open_for_write(path: Path):
    if path.suffix == ".gz":
        return gzip.open(path, "wt", encoding="utf-8")
    return open(path, "w", encoding="utf-8")


def write_jsonl(trace: HttpTrace, path: str | Path) -> int:
    """Write *trace* to *path* (gzip when the name ends in ``.gz``).

    Returns the number of records written.
    """
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    count = 0
    with _open_for_write(target) as handle:
        for request in trace:
            handle.write(json.dumps(request.to_dict(), separators=(",", ":")))
            handle.write("\n")
            count += 1
    return count


def read_jsonl(path: str | Path, name: str | None = None) -> HttpTrace:
    """Read a trace previously written by :func:`write_jsonl`.

    Raises :class:`~repro.errors.TraceError` with the offending line number
    on malformed input.
    """
    source = Path(path)
    requests = []
    with _open_for_read(source) as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                data = json.loads(line)
                requests.append(HttpRequest.from_dict(data))
            except (json.JSONDecodeError, KeyError, ValueError, TypeError) as exc:
                raise TraceError(f"{source}:{lineno}: malformed record: {exc}") from exc
    return HttpTrace(requests, name=name or source.stem)
