"""The HTTP request record consumed by SMASH.

One record corresponds to one logged HTTP request observed at the network
edge.  The fields mirror what the paper extracts from its ISP PCAP traces:
client identity, destination domain name and IP address, request URI,
User-Agent, Referer, and the response status code (used when classifying
"suspicious" campaigns in Section V-A1).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.httplog.uri import query_parameter_names, uri_file


@dataclass(frozen=True, slots=True)
class HttpRequest:
    """A single HTTP request observation.

    Attributes
    ----------
    timestamp:
        Seconds since the start of the observation window.
    client:
        Anonymised client identifier (the ISP sees stable subscriber IDs).
    host:
        Destination server name exactly as requested — an FQDN or a
        literal IP address.
    server_ip:
        The destination IP address the connection actually went to.
    uri:
        Request URI (path + optional query string).
    user_agent:
        The User-Agent request header ("-" when absent, as in Table IX).
    referrer:
        The Referer request header ("" when absent).  Spelled "referrer"
        here; the wire header keeps its historical misspelling.
    status:
        HTTP response status code; 0 when no response was observed.
    method:
        HTTP request method, almost always GET or POST in the traces.
    """

    timestamp: float
    client: str
    host: str
    server_ip: str
    uri: str
    user_agent: str = "-"
    referrer: str = ""
    status: int = 200
    method: str = "GET"

    def __post_init__(self) -> None:
        if not self.client:
            raise ValueError("HttpRequest.client must be non-empty")
        if not self.host:
            raise ValueError("HttpRequest.host must be non-empty")
        if not self.uri.startswith("/"):
            raise ValueError(f"HttpRequest.uri must be absolute, got {self.uri!r}")

    def with_host(self, host: str) -> "HttpRequest":
        """Copy of this request addressed to *host* (all else unchanged).

        Preprocessing renames every aggregated request, so this skips the
        dataclass constructor and its re-validation: every other field
        was validated when this record was built, and *host* must be
        non-empty like the original.
        """
        if not host:
            raise ValueError("HttpRequest.host must be non-empty")
        clone = object.__new__(HttpRequest)
        object.__setattr__(clone, "timestamp", self.timestamp)
        object.__setattr__(clone, "client", self.client)
        object.__setattr__(clone, "host", host)
        object.__setattr__(clone, "server_ip", self.server_ip)
        object.__setattr__(clone, "uri", self.uri)
        object.__setattr__(clone, "user_agent", self.user_agent)
        object.__setattr__(clone, "referrer", self.referrer)
        object.__setattr__(clone, "status", self.status)
        object.__setattr__(clone, "method", self.method)
        return clone

    @property
    def uri_file(self) -> str:
        """The paper's URI file (filename component) of this request."""
        return uri_file(self.uri)

    @property
    def parameter_names(self) -> tuple[str, ...]:
        """Sorted query-parameter names of this request."""
        return query_parameter_names(self.uri)

    @property
    def is_error(self) -> bool:
        """True for 4xx/5xx responses (used for "suspicious" verification)."""
        return self.status >= 400

    def to_dict(self) -> dict[str, object]:
        """Serialise to a JSON-compatible dict (see :mod:`repro.httplog.loader`)."""
        return {
            "ts": self.timestamp,
            "client": self.client,
            "host": self.host,
            "ip": self.server_ip,
            "uri": self.uri,
            "ua": self.user_agent,
            "ref": self.referrer,
            "status": self.status,
            "method": self.method,
        }

    @classmethod
    def from_dict(cls, data: dict[str, object]) -> "HttpRequest":
        """Inverse of :meth:`to_dict`; raises ``KeyError`` on missing fields."""
        return cls(
            timestamp=float(data["ts"]),  # type: ignore[arg-type]
            client=str(data["client"]),
            host=str(data["host"]),
            server_ip=str(data["ip"]),
            uri=str(data["uri"]),
            user_agent=str(data.get("ua", "-")),
            referrer=str(data.get("ref", "")),
            status=int(data.get("status", 200)),  # type: ignore[arg-type]
            method=str(data.get("method", "GET")),
        )
