"""Trace container with the per-server indices SMASH consumes.

:class:`HttpTrace` wraps a list of :class:`~repro.httplog.records.HttpRequest`
records and lazily builds the inverted indices used throughout the pipeline:
clients per server, URI files per server, IP addresses per server, and the
raw request lists.  All server keys are *post-aggregation* names only when
the caller aggregated them; the trace itself is agnostic and indexes the
``host`` field verbatim.
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Callable, Iterable, Iterator, Sequence
from dataclasses import dataclass

from repro.errors import TraceError
from repro.httplog.records import HttpRequest


@dataclass(frozen=True)
class TraceStats:
    """The Table-I statistics of a trace."""

    num_clients: int
    num_requests: int
    num_servers: int
    num_uri_files: int

    def as_row(self) -> dict[str, int]:
        return {
            "# of clients": self.num_clients,
            "# of HTTP requests": self.num_requests,
            "# of Servers": self.num_servers,
            "# of URI Files": self.num_uri_files,
        }


class HttpTrace:
    """An immutable collection of HTTP requests with inverted indices.

    The container is cheap to construct; indices are built on first use and
    cached.  Traces compare equal when their request sequences are equal.
    """

    def __init__(self, requests: Iterable[HttpRequest], name: str = "trace") -> None:
        self._requests: tuple[HttpRequest, ...] = tuple(requests)
        self.name = name
        for request in self._requests:
            if not isinstance(request, HttpRequest):
                raise TraceError(
                    f"trace entries must be HttpRequest, got {type(request).__name__}"
                )
        self._clients_by_server: dict[str, frozenset[str]] | None = None
        self._files_by_server: dict[str, frozenset[str]] | None = None
        self._ips_by_server: dict[str, frozenset[str]] | None = None
        self._requests_by_server: dict[str, tuple[HttpRequest, ...]] | None = None
        self._servers_by_client: dict[str, frozenset[str]] | None = None
        self._servers: frozenset[str] | None = None

    # -- basic container protocol -------------------------------------------------

    def __len__(self) -> int:
        return len(self._requests)

    def __iter__(self) -> Iterator[HttpRequest]:
        return iter(self._requests)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, HttpTrace):
            return NotImplemented
        return self._requests == other._requests

    def __hash__(self) -> int:  # traces are hashable as value objects
        return hash(self._requests)

    def __repr__(self) -> str:
        return f"HttpTrace(name={self.name!r}, requests={len(self._requests)})"

    def __getstate__(self) -> dict[str, object]:
        """Pickle only the requests, not the cached inverted indices.

        The indices are derived state, rebuilt lazily (and
        deterministically) on first use; shipping them to process-pool
        workers would double the payload of every per-dimension mining
        job for data the worker can re-derive in linear time.
        """
        state = self.__dict__.copy()
        for key in (
            "_clients_by_server",
            "_files_by_server",
            "_ips_by_server",
            "_requests_by_server",
            "_servers_by_client",
            "_servers",
        ):
            state[key] = None
        return state

    @property
    def requests(self) -> tuple[HttpRequest, ...]:
        return self._requests

    # -- derived views ------------------------------------------------------------

    def map_hosts(self, mapper: Callable[[str], str], name: str | None = None) -> "HttpTrace":
        """Return a new trace with every host renamed through *mapper*.

        Used by preprocessing to aggregate FQDNs to second-level domains.
        The mapping is applied to ``host`` only; ``server_ip`` is preserved.
        """
        renamed = []
        for request in self._requests:
            new_host = mapper(request.host)
            if new_host == request.host:
                renamed.append(request)
            else:
                renamed.append(request.with_host(new_host))
        return HttpTrace(renamed, name=name or self.name)

    def filter_servers(self, keep: Callable[[str], bool], name: str | None = None) -> "HttpTrace":
        """Return a new trace keeping only requests whose host passes *keep*.

        Per-server indices this trace has already built are *derived* for
        the filtered trace by dropping the removed servers' keys — a
        server-level filter cannot change any surviving server's client,
        file or IP sets, so the derivation is exactly what a fresh build
        over the kept requests would produce, minus the request re-scan
        (and, for the file index, minus re-parsing every URI).
        """
        kept = [request for request in self._requests if keep(request.host)]
        filtered = HttpTrace(kept, name=name or self.name)
        if self._clients_by_server is not None:
            kept_servers = {
                server for server in self._clients_by_server if keep(server)
            }
            filtered._clients_by_server = {
                server: clients
                for server, clients in self._clients_by_server.items()
                if server in kept_servers
            }
            filtered._servers = frozenset(kept_servers)
            if self._servers_by_client is not None:
                servers_of: dict[str, frozenset[str]] = {}
                for client, servers in self._servers_by_client.items():
                    surviving = servers & kept_servers
                    if surviving:
                        servers_of[client] = (
                            servers if len(surviving) == len(servers) else surviving
                        )
                filtered._servers_by_client = servers_of
            if self._ips_by_server is not None:
                filtered._ips_by_server = {
                    server: ips
                    for server, ips in self._ips_by_server.items()
                    if server in kept_servers
                }
        if self._files_by_server is not None:
            filtered._files_by_server = {
                server: files
                for server, files in self._files_by_server.items()
                if keep(server)
            }
        return filtered

    def restrict_to_servers(self, servers: Iterable[str]) -> "HttpTrace":
        """Convenience wrapper over :meth:`filter_servers` for a fixed set."""
        allowed = frozenset(servers)
        return self.filter_servers(lambda host: host in allowed)

    # -- inverted indices ---------------------------------------------------------

    def _build_indices(self) -> None:
        """Build the set-valued indices (clients, IPs, client->servers).

        The URI-file index (the only one that *parses*) and the
        per-server request lists (the only one that materialises request
        tuples) are built separately on first use, so the preprocess
        stages — which look at clients and hosts only — never pay for
        them on traces that are about to be aggregated or filtered away.
        """
        clients: dict[str, set[str]] = defaultdict(set)
        ips: dict[str, set[str]] = defaultdict(set)
        servers_of: dict[str, set[str]] = defaultdict(set)
        for request in self._requests:
            host = request.host
            clients[host].add(request.client)
            ips[host].add(request.server_ip)
            servers_of[request.client].add(host)
        self._clients_by_server = {s: frozenset(v) for s, v in clients.items()}
        self._ips_by_server = {s: frozenset(v) for s, v in ips.items()}
        self._servers_by_client = {c: frozenset(v) for c, v in servers_of.items()}

    def _build_request_index(self) -> None:
        per_server: dict[str, list[HttpRequest]] = defaultdict(list)
        for request in self._requests:
            per_server[request.host].append(request)
        self._requests_by_server = {s: tuple(v) for s, v in per_server.items()}

    def _build_file_index(self) -> None:
        # URIs repeat massively across a trace; parse each distinct one
        # once instead of once per request.
        files: dict[str, set[str]] = defaultdict(set)
        file_of: dict[str, str] = {}
        for request in self._requests:
            uri = request.uri
            filename = file_of.get(uri)
            if filename is None:
                filename = request.uri_file
                file_of[uri] = filename
            files[request.host].add(filename)
        self._files_by_server = {s: frozenset(v) for s, v in files.items()}

    @property
    def clients_by_server(self) -> dict[str, frozenset[str]]:
        """Mapping server -> set of clients that contacted it."""
        if self._clients_by_server is None:
            self._build_indices()
        assert self._clients_by_server is not None
        return self._clients_by_server

    @property
    def files_by_server(self) -> dict[str, frozenset[str]]:
        """Mapping server -> set of URI files requested from it."""
        if self._files_by_server is None:
            self._build_file_index()
        assert self._files_by_server is not None
        return self._files_by_server

    @property
    def ips_by_server(self) -> dict[str, frozenset[str]]:
        """Mapping server -> set of IP addresses it resolved to."""
        if self._ips_by_server is None:
            self._build_indices()
        assert self._ips_by_server is not None
        return self._ips_by_server

    @property
    def requests_by_server(self) -> dict[str, tuple[HttpRequest, ...]]:
        """Mapping server -> all requests sent to it (trace order)."""
        if self._requests_by_server is None:
            self._build_request_index()
        assert self._requests_by_server is not None
        return self._requests_by_server

    @property
    def servers_by_client(self) -> dict[str, frozenset[str]]:
        """Mapping client -> set of servers it contacted."""
        if self._servers_by_client is None:
            self._build_indices()
        assert self._servers_by_client is not None
        return self._servers_by_client

    @property
    def servers(self) -> frozenset[str]:
        if self._servers is None:
            if self._clients_by_server is not None:
                self._servers = frozenset(self._clients_by_server)
            else:
                # One attribute pass; no need to build the full indices
                # just to enumerate the server namespace.
                self._servers = frozenset(
                    request.host for request in self._requests
                )
        return self._servers

    @property
    def clients(self) -> frozenset[str]:
        return frozenset(self.servers_by_client)

    # -- statistics ---------------------------------------------------------------

    def stats(self) -> TraceStats:
        """Compute the Table-I statistics for this trace.

        "# of URI Files" counts distinct (server, URI file) pairs, matching
        the paper's per-server file inventories.
        """
        uri_files = sum(len(files) for files in self.files_by_server.values())
        return TraceStats(
            num_clients=len(self.clients),
            num_requests=len(self._requests),
            num_servers=len(self.servers),
            num_uri_files=uri_files,
        )

    def client_counts(self) -> dict[str, int]:
        """Server -> number of distinct clients (the paper's IDF measure)."""
        return {server: len(clients) for server, clients in self.clients_by_server.items()}

    def time_window(self) -> tuple[float, float]:
        """(min, max) request timestamp; raises on an empty trace."""
        if not self._requests:
            raise TraceError("time_window of empty trace")
        stamps = [request.timestamp for request in self._requests]
        return min(stamps), max(stamps)

    # -- composition --------------------------------------------------------------

    @classmethod
    def concat(cls, traces: Sequence["HttpTrace"], name: str = "trace") -> "HttpTrace":
        """Concatenate several traces into one (requests in argument order)."""
        requests: list[HttpRequest] = []
        for trace in traces:
            requests.extend(trace.requests)
        return cls(requests, name=name)
