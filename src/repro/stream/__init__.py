"""Incremental multi-day streaming engine with cross-day campaign tracking.

The batch pipeline answers "what is malicious in *this* trace?"; this
package answers the operational question the paper closes with — SMASH
"can be run everyday to detect daily malicious activities" — by running
the pipeline continuously:

* :mod:`repro.stream.window` — rolling N-day window over per-day log
  partitions (trace + Whois + redirect sidecars), oldest day evicted as
  the stream advances;
* :mod:`repro.stream.engine` — :class:`StreamingSmash`, one pipeline
  run per window advance with mining reused across thresholds;
* :mod:`repro.stream.tracker` — :class:`CampaignTracker`, stable
  campaign identities matched across days via server-set Jaccard (with
  a client-set fallback for agile campaigns), yielding Figure 7's
  persistence decomposition and campaign lifetimes as live bookkeeping;
* :mod:`repro.stream.alerts` — pluggable sinks for new-campaign /
  campaign-growth / campaign-died events;
* :mod:`repro.stream.checkpoint` — JSON snapshot/resume of the whole
  engine (window + tracker), so a killed stream resumes losslessly;
* :mod:`repro.stream.store` — :class:`TraceStore`, an on-disk
  content-addressed day-partition store; with one attached the window
  holds lazy :class:`PartitionRef` handles and checkpoints shrink to
  metadata plus tracker state.

Quick start::

    from repro.stream import StreamingSmash
    from repro.synth import TraceGenerator, small_scenario

    engine = StreamingSmash()
    for dataset in TraceGenerator(small_scenario(days=7)).iter_days():
        update = engine.ingest_dataset(dataset)
        print(update.day, update.num_campaigns, [c.uid for c in update.active])
"""

from repro.stream.alerts import AlertSink, CallbackSink, ConsoleSink, JsonlSink, ListSink
from repro.stream.checkpoint import CHECKPOINT_VERSION, load_checkpoint, save_checkpoint
from repro.stream.engine import StreamingSmash, StreamUpdate
from repro.stream.store import PartitionRef, TraceStore, partition_digest
from repro.stream.tracker import (
    CampaignTracker,
    TrackedCampaign,
    TrackerConfig,
    TrackEvent,
    jaccard,
)
from repro.stream.window import DayPartition, RollingWindow

__all__ = [
    "AlertSink",
    "CHECKPOINT_VERSION",
    "CallbackSink",
    "CampaignTracker",
    "ConsoleSink",
    "DayPartition",
    "JsonlSink",
    "ListSink",
    "PartitionRef",
    "RollingWindow",
    "StreamUpdate",
    "StreamingSmash",
    "TraceStore",
    "TrackEvent",
    "TrackedCampaign",
    "TrackerConfig",
    "jaccard",
    "load_checkpoint",
    "partition_digest",
    "save_checkpoint",
]
