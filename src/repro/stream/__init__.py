"""Incremental multi-day streaming engine with cross-day campaign tracking.

The batch pipeline answers "what is malicious in *this* trace?"; this
package answers the operational question the paper closes with — SMASH
"can be run everyday to detect daily malicious activities" — by running
the pipeline continuously:

* :mod:`repro.stream.window` — rolling N-day window over per-day log
  partitions (trace + Whois + redirect sidecars), oldest day evicted as
  the stream advances;
* :mod:`repro.stream.engine` — :class:`StreamingSmash`, one pipeline
  run per window advance with mining reused across thresholds;
* :mod:`repro.stream.tracker` — :class:`CampaignTracker`, stable
  campaign identities matched across days via server-set Jaccard (with
  a client-set fallback for agile campaigns), yielding Figure 7's
  persistence decomposition and campaign lifetimes as live bookkeeping;
* :mod:`repro.stream.alerts` — pluggable sinks for new-campaign /
  campaign-growth / campaign-died events;
* :mod:`repro.stream.scoring` — evidence-driven alert scoring:
  :class:`EvidenceSource` providers over the ground-truth IDS /
  blacklists, a :class:`CampaignScorer` deriving a deterministic risk
  score from each identity's history, and an :class:`AlertPolicy` that
  attaches ``severity``/``score`` to every event and suppresses
  sub-threshold noise before it reaches the sinks;
* :mod:`repro.stream.checkpoint` — JSON snapshot/resume of the whole
  engine (window + tracker), so a killed stream resumes losslessly;
* :mod:`repro.stream.store` — :class:`TraceStore`, an on-disk
  content-addressed day-partition store; with one attached the window
  holds lazy :class:`PartitionRef` handles and checkpoints shrink to
  metadata plus tracker state.

Quick start::

    from repro.stream import StreamingSmash
    from repro.synth import TraceGenerator, small_scenario

    engine = StreamingSmash()
    for dataset in TraceGenerator(small_scenario(days=7)).iter_days():
        update = engine.ingest_dataset(dataset)
        print(update.day, update.num_campaigns, [c.uid for c in update.active])
"""

from repro.stream.alerts import AlertSink, CallbackSink, ConsoleSink, JsonlSink, ListSink
from repro.stream.checkpoint import CHECKPOINT_VERSION, load_checkpoint, save_checkpoint
from repro.stream.engine import StreamingSmash, StreamUpdate
from repro.stream.scoring import (
    SEVERITIES,
    SEVERITY_RANK,
    AlertPolicy,
    BlacklistEvidence,
    CampaignScorer,
    EvidenceSource,
    IdsEvidence,
    RiskFeatures,
    ScorerConfig,
    StaticEvidence,
    scenario_evidence,
    scenario_ids_evidence,
    severity_at_least,
)
from repro.stream.store import PartitionRef, TraceStore, partition_digest
from repro.stream.tracker import (
    CampaignTracker,
    TrackedCampaign,
    TrackerConfig,
    TrackEvent,
    jaccard,
)
from repro.stream.window import DayPartition, RollingWindow

__all__ = [
    "AlertPolicy",
    "AlertSink",
    "BlacklistEvidence",
    "CHECKPOINT_VERSION",
    "CallbackSink",
    "CampaignScorer",
    "CampaignTracker",
    "ConsoleSink",
    "DayPartition",
    "EvidenceSource",
    "IdsEvidence",
    "JsonlSink",
    "ListSink",
    "PartitionRef",
    "RiskFeatures",
    "RollingWindow",
    "SEVERITIES",
    "SEVERITY_RANK",
    "ScorerConfig",
    "StaticEvidence",
    "StreamUpdate",
    "StreamingSmash",
    "TraceStore",
    "TrackEvent",
    "TrackedCampaign",
    "TrackerConfig",
    "jaccard",
    "load_checkpoint",
    "partition_digest",
    "save_checkpoint",
    "scenario_evidence",
    "scenario_ids_evidence",
    "severity_at_least",
]
