"""On-disk store of day partitions for the streaming engine.

PR 1's checkpoints embedded every windowed day's trace in one JSON blob,
so both checkpoint size and save time grew linearly with the window.
:class:`TraceStore` moves the bulk data out of the checkpoint: each
:class:`~repro.stream.window.DayPartition` is persisted once as its own
directory of plain files (trace JSONL plus the whois/redirect sidecars,
the same layout ``repro generate`` emits), content-addressed by a digest
of the partition's canonical serialisation.  Window state then
serialises as ``(day, digest)`` references — a checkpoint is metadata
plus tracker state, a few KB regardless of window length — and
:class:`PartitionRef` handles load the heavy data back lazily, only when
the window actually needs it (i.e. on the first advance after a resume).

Layout under the store root::

    store/
      day-00004-3f9ae1c20b77/
        MANIFEST.json     # day, digest, trace name, request count
        trace.jsonl       # the day's requests
        whois.json        # only when the partition has a registry
        redirects.json    # only when the partition has an oracle

Writes are atomic (temp directory + rename) and idempotent: re-putting
an identical partition is a no-op, re-putting a *different* partition
for the same day gets a different digest directory.  Every load
recomputes the content digest and compares it to the address, so a
truncated or hand-edited partition raises
:class:`~repro.errors.StreamError` instead of silently corrupting the
stream.

:class:`PartialStore` applies the same digest-verified contract to the
sharded mine's transient spill files (per-shard index partials,
per-bucket pair-count partials) under ``<store>/.partials`` — or any
scratch directory when no store is attached.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
import threading
import time
from pathlib import Path

from repro.errors import StreamError
from repro.httplog.loader import read_jsonl, write_jsonl
from repro.obs.metrics import NULL_RECORDER
from repro.stream.window import (
    DayPartition,
    redirects_to_dict,
    whois_from_list,
    whois_to_list,
)

#: Bump on any incompatible change to the partition layout.
STORE_VERSION = 1

_MANIFEST_NAME = "MANIFEST.json"
_TRACE_NAME = "trace.jsonl"
_WHOIS_NAME = "whois.json"
_REDIRECTS_NAME = "redirects.json"

#: Hex digits of the content digest used in directory names; enough to
#: make day-level collisions implausible while keeping paths readable.
_DIGEST_PREFIX = 12


def partition_digest(partition: DayPartition) -> str:
    """Content digest of a partition's canonical JSON serialisation."""
    payload = json.dumps(
        partition.to_dict(), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class PartitionRef:
    """Lazy handle to a day partition resident in a :class:`TraceStore`.

    The streaming window holds these instead of full partitions: ``day``
    and ``digest`` are enough to checkpoint, and :meth:`load` memoises
    the materialised partition so the live path reads the disk at most
    once per resume.
    """

    __slots__ = ("day", "digest", "_store", "_partition")

    def __init__(
        self,
        day: int,
        digest: str,
        store: "TraceStore",
        partition: DayPartition | None = None,
    ) -> None:
        self.day = day
        self.digest = digest
        self._store = store
        self._partition = partition

    def load(self) -> DayPartition:
        """Materialise the partition (verified against its digest)."""
        if self._partition is None:
            self._partition = self._store.get(self.day, digest=self.digest)
        return self._partition

    def release(self) -> None:
        """Drop the memoised partition; the on-disk copy remains."""
        self._partition = None

    def to_dict(self) -> dict[str, object]:
        return {"day": self.day, "digest": self.digest}

    def __repr__(self) -> str:
        loaded = "loaded" if self._partition is not None else "on disk"
        return f"PartitionRef(day={self.day}, digest={self.digest[:12]}, {loaded})"


class TraceStore:
    """Persist day partitions as content-addressed on-disk directories."""

    def __init__(self, root: str | Path, metrics=None) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        #: Recorder for load/store timings and byte counters; the shared
        #: no-op unless the streaming engine (or a caller) attaches one.
        self.metrics = metrics or NULL_RECORDER

    # -- addressing ---------------------------------------------------------------

    @staticmethod
    def _dirname(day: int, digest: str) -> str:
        return f"day-{day:05d}-{digest[:_DIGEST_PREFIX]}"

    def path_of(self, day: int, digest: str) -> Path:
        """Directory a (day, digest) partition lives in (may not exist)."""
        return self.root / self._dirname(day, digest)

    def _find(self, day: int, digest: str | None = None) -> Path | None:
        if digest is not None:
            path = self.path_of(day, digest)
            return path if path.is_dir() else None
        # Orphaned ``.tmp-<pid>`` directories from a crashed put() are
        # never valid partitions, whatever they contain.
        matches = sorted(
            path
            for path in self.root.glob(f"day-{day:05d}-*")
            if ".tmp-" not in path.name
        )
        return matches[-1] if matches else None

    def days(self) -> tuple[int, ...]:
        """Sorted day indices with at least one stored partition."""
        found: set[int] = set()
        for path in self.root.glob("day-*-*"):
            if ".tmp-" in path.name or not (path / _MANIFEST_NAME).is_file():
                continue
            try:
                found.add(int(path.name.split("-")[1]))
            except (IndexError, ValueError):
                continue
        return tuple(sorted(found))

    def has(self, day: int, digest: str | None = None) -> bool:
        path = self._find(day, digest)
        return path is not None and (path / _MANIFEST_NAME).is_file()

    # -- write path ---------------------------------------------------------------

    def put(self, partition: DayPartition) -> PartitionRef:
        """Persist *partition*; idempotent for identical content."""
        with self.metrics.span(
            "store.put", metric="smash_store_put_seconds", day=partition.day
        ) as span:
            ref, wrote = self._put(partition)
        if self.metrics.enabled:
            span.set(digest=ref.digest[:_DIGEST_PREFIX], wrote=wrote)
            if wrote:
                final = self.path_of(partition.day, ref.digest)
                self.metrics.counter(
                    "smash_store_bytes_written_total",
                    "Bytes of partition files written to the trace store.",
                ).inc(
                    sum(p.stat().st_size for p in final.iterdir() if p.is_file())
                )
        return ref

    def _put(self, partition: DayPartition) -> tuple[PartitionRef, bool]:
        digest = partition_digest(partition)
        final = self.path_of(partition.day, digest)
        if (final / _MANIFEST_NAME).is_file():
            return PartitionRef(partition.day, digest, self, partition), False

        tmp = final.with_name(
            final.name + f".tmp-{os.getpid()}-{threading.get_ident()}"
        )
        if tmp.exists():
            shutil.rmtree(tmp)
        tmp.mkdir(parents=True)
        try:
            write_jsonl(partition.trace, tmp / _TRACE_NAME)
            if partition.whois is not None:
                (tmp / _WHOIS_NAME).write_text(
                    json.dumps(whois_to_list(partition.whois), indent=1) + "\n"
                )
            if partition.redirects is not None:
                (tmp / _REDIRECTS_NAME).write_text(
                    json.dumps(
                        redirects_to_dict(partition.redirects), sort_keys=True
                    )
                    + "\n"
                )
            manifest = {
                "format": "repro.stream.store",
                "version": STORE_VERSION,
                "day": partition.day,
                "digest": digest,
                "trace_name": partition.trace.name,
                "num_requests": len(partition.trace),
                "has_whois": partition.whois is not None,
                "has_redirects": partition.redirects is not None,
            }
            # The manifest is written last: a crash mid-put leaves a
            # directory `has()`/`get()` treat as absent.
            (tmp / _MANIFEST_NAME).write_text(
                json.dumps(manifest, indent=1, sort_keys=True) + "\n"
            )
            if final.exists():  # identical content raced in; keep it
                shutil.rmtree(tmp)
            else:
                try:
                    os.replace(tmp, final)
                except OSError as error:
                    # A concurrent writer renamed the same content into
                    # place between our exists() check and the rename;
                    # content addressing makes that a success, anything
                    # else is a real store failure.
                    shutil.rmtree(tmp, ignore_errors=True)
                    if not (final / _MANIFEST_NAME).is_file():
                        raise StreamError(
                            f"could not persist partition into {final}: {error}"
                        ) from error
        except Exception:
            shutil.rmtree(tmp, ignore_errors=True)
            raise
        return PartitionRef(partition.day, digest, self, partition), True

    # -- read path ----------------------------------------------------------------

    def get(self, day: int, digest: str | None = None) -> DayPartition:
        """Load a stored partition, verifying content against its digest.

        Without *digest* the day must be unambiguous; when several
        content variants of one day exist, callers must address the one
        they mean.
        """
        with self.metrics.span(
            "store.get", metric="smash_store_get_seconds", day=day
        ):
            return self._get(day, digest)

    def _get(self, day: int, digest: str | None = None) -> DayPartition:
        if digest is None:
            variants = [
                path
                for path in self.root.glob(f"day-{day:05d}-*")
                if ".tmp-" not in path.name and (path / _MANIFEST_NAME).is_file()
            ]
            if len(variants) > 1:
                raise StreamError(
                    f"trace store {self.root} holds {len(variants)} variants of "
                    f"day {day}; pass the digest of the one you mean"
                )
        path = self._find(day, digest)
        if path is None or not (path / _MANIFEST_NAME).is_file():
            wanted = f"day {day}" if digest is None else f"day {day} ({digest[:12]})"
            raise StreamError(f"trace store {self.root} has no partition for {wanted}")
        try:
            manifest = json.loads((path / _MANIFEST_NAME).read_text())
        except (OSError, json.JSONDecodeError) as error:
            raise StreamError(f"corrupt partition manifest in {path}: {error}") from error
        if not isinstance(manifest, dict) or manifest.get("format") != "repro.stream.store":
            raise StreamError(f"{path} is not a trace-store partition")
        if manifest.get("version") != STORE_VERSION:
            raise StreamError(
                f"partition version {manifest.get('version')!r} in {path} unsupported "
                f"(this build reads version {STORE_VERSION})"
            )

        expected = str(manifest.get("digest", ""))
        try:
            trace = read_jsonl(
                path / _TRACE_NAME, name=str(manifest.get("trace_name", "trace"))
            )
            whois_path = path / _WHOIS_NAME
            whois = (
                whois_from_list(json.loads(whois_path.read_text()))
                if manifest.get("has_whois")
                else None
            )
            redirects_path = path / _REDIRECTS_NAME
            redirects = None
            if manifest.get("has_redirects"):
                from repro.synth.oracles import RedirectOracle

                redirects = RedirectOracle.from_dict(
                    json.loads(redirects_path.read_text())
                )
        except StreamError:
            raise
        except Exception as error:  # missing file, bad JSON, bad records
            raise StreamError(f"corrupt partition in {path}: {error}") from error

        partition = DayPartition(
            day=int(manifest.get("day", day)),
            trace=trace,
            whois=whois,
            redirects=redirects,
        )
        actual = partition_digest(partition)
        verified = actual == expected and (digest is None or actual == digest)
        if self.metrics.enabled:
            self.metrics.counter(
                "smash_store_digest_verifications_total",
                "Partition loads checked against their content digest.",
                labels=("result",),
            ).labels(result="ok" if verified else "mismatch").inc()
            self.metrics.counter(
                "smash_store_bytes_read_total",
                "Bytes of partition files read back from the trace store.",
            ).inc(sum(p.stat().st_size for p in path.iterdir() if p.is_file()))
        if not verified:
            raise StreamError(
                f"corrupt partition in {path}: content digest {actual[:12]} does not "
                f"match stored digest {(digest or expected)[:12]}"
            )
        return partition

    def ref(self, day: int, digest: str) -> PartitionRef:
        """Unloaded handle for a stored partition; fails fast if absent."""
        if not self.has(day, digest):
            raise StreamError(
                f"trace store {self.root} has no partition for day {day} "
                f"({digest[:12]}); was the store moved or pruned?"
            )
        return PartitionRef(day, digest, self)

    def request_count(self, day: int, digest: str) -> int:
        """Request count of a stored partition, from its manifest alone.

        The out-of-core coordinator sizes shard cuts from these counts
        without materialising a single request; only the small manifest
        file is read.
        """
        path = self._find(day, digest)
        if path is None or not (path / _MANIFEST_NAME).is_file():
            raise StreamError(
                f"trace store {self.root} has no partition for day {day} "
                f"({digest[:12]})"
            )
        try:
            manifest = json.loads((path / _MANIFEST_NAME).read_text())
            return int(manifest["num_requests"])
        except (OSError, json.JSONDecodeError, KeyError, TypeError, ValueError) as error:
            raise StreamError(
                f"corrupt partition manifest in {path}: {error}"
            ) from error

    def total_bytes(self) -> int:
        """Bytes used by all stored partitions (for the bench harness)."""
        return sum(
            path.stat().st_size for path in self.root.rglob("*") if path.is_file()
        )

    def partials_dir(self) -> Path:
        """Scratch directory for sharded-mine partial spills.

        Lives under the store root so a store-backed stream's spill I/O
        shares the store's volume, but is *not* content-addressed stream
        history: partials are transient per-mine state, deleted by the
        :class:`PartialStore` that wrote them.
        """
        return self.root / ".partials"

    def __repr__(self) -> str:
        return f"TraceStore(root={str(self.root)!r}, days={len(self.days())})"


class PartialStore:
    """Digest-verified spill directory for sharded-mine partials.

    The sharded mine bounds its peak memory by writing each map-phase
    partial (a shard's inverted indexes, a bucket's pair counts) to disk
    as soon as it is produced and merging them back one at a time.  Each
    partial is one JSON file addressed by name; :meth:`put` returns the
    payload's sha256 digest and :meth:`load` recomputes and compares it,
    so a truncated or hand-edited partial raises
    :class:`~repro.errors.StreamError` instead of silently corrupting
    the merge — the same contract :class:`TraceStore` applies to day
    partitions.

    Workers (possibly in other processes) construct their own
    ``PartialStore`` over the shared root and ``put``; the coordinator
    ``load``s by (name, digest) and ``delete``s after merging.
    """

    #: Ownership marker a coordinator writes into its spill root; the
    #: orphan collector treats a directory whose owner pid is still
    #: alive as in use regardless of age.
    OWNER_NAME = "OWNER"

    #: Spill directories older than this (by mtime) whose owner process
    #: is gone are garbage-collected on the next mine over the same
    #: parent.  Generous: a healthy mine deletes its own spill root in
    #: a ``finally`` long before this.
    GC_GRACE_SECONDS = 900.0

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def path_of(self, name: str) -> Path:
        return self.root / f"{name}.json"

    def claim(self) -> None:
        """Mark this spill root as owned by the current process.

        Crash-safety bookkeeping only: :meth:`gc_orphans` on a later run
        keeps claimed directories whose owner is still alive and removes
        the rest once they age past the grace period.
        """
        (self.root / self.OWNER_NAME).write_text(f"{os.getpid()}\n")

    @staticmethod
    def _owner_alive(path: Path) -> bool:
        try:
            pid = int((path / PartialStore.OWNER_NAME).read_text().strip())
        except (OSError, ValueError):
            # No (or unreadable) ownership marker: a pre-claim crash or a
            # foreign directory; age alone decides.
            return False
        try:
            os.kill(pid, 0)
        except ProcessLookupError:
            return False
        except PermissionError:  # pragma: no cover - pid owned by another user
            return True
        except OSError:  # pragma: no cover - conservative default
            return True
        return True

    @classmethod
    def gc_orphans(
        cls, parent: Path, grace_seconds: float = GC_GRACE_SECONDS
    ) -> list[Path]:
        """Remove stale ``mine-*`` spill directories under *parent*.

        A crashed coordinator never reaches its ``cleanup()``; its spill
        directory would otherwise leak forever under the store's
        ``.partials`` dir.  A directory is removed only when **both**
        hold: its mtime is at least *grace_seconds* old (never races a
        freshly created sibling) and its recorded owner process is gone
        (a live pid keeps the directory regardless of age).  Returns the
        removed paths.
        """
        removed: list[Path] = []
        if not parent.is_dir():
            return removed
        now = time.time()
        for path in sorted(parent.glob("mine-*")):
            if not path.is_dir():
                continue
            if path.name.endswith(".quarantine"):
                # Quarantined evidence from failed shard attempts is kept
                # for inspection; only an operator removes it.
                continue
            try:
                age = now - path.stat().st_mtime
            except OSError:  # pragma: no cover - raced deletion
                continue
            if age < grace_seconds or cls._owner_alive(path):
                continue
            shutil.rmtree(path, ignore_errors=True)
            removed.append(path)
        return removed

    def put(self, name: str, payload: dict) -> tuple[str, int]:
        """Write one partial; returns ``(digest, bytes written)``.

        The finalization is atomic (``*.tmp`` + fsync + ``os.replace``)
        so a killed worker can never publish a torn partial under a
        valid name — the digest check is a backstop, not the only gate.
        """
        encoded = json.dumps(payload, separators=(",", ":")).encode("utf-8")
        digest = hashlib.sha256(encoded).hexdigest()
        final = self.path_of(name)
        # Unique per writer *thread*, not just per process: pool-executor
        # workers spilling the same name from one coordinator must never
        # share a tmp path.
        tmp = final.with_name(
            final.name + f".tmp-{os.getpid()}-{threading.get_ident()}"
        )
        with open(tmp, "wb") as handle:
            handle.write(encoded)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, final)
        return digest, len(encoded)

    def _read_verified(self, name: str, digest: str) -> bytes:
        """The partial's bytes, or a *retryable* :class:`StreamError`.

        Spilled partials are re-creatable (unlike source partitions), so
        a missing or torn spill is marked ``retryable`` — the dispatch
        retry policy re-runs the shard job on a fresh spill name.
        """
        path = self.path_of(name)
        try:
            encoded = path.read_bytes()
        except OSError as error:
            missing = StreamError(f"missing spilled partial {path}: {error}")
            missing.retryable = True
            raise missing from error
        actual = hashlib.sha256(encoded).hexdigest()
        if actual != digest:
            mismatch = StreamError(
                f"corrupt spilled partial {path}: content digest {actual} "
                f"does not match expected {digest}"
            )
            mismatch.retryable = True
            raise mismatch
        return encoded

    def verify(self, name: str, digest: str) -> None:
        """Check one partial's bytes against *digest* without decoding it.

        The post-attempt gate in :func:`repro.core.faults.run_with_retry`:
        a worker's reply only counts as success once the spilled bytes it
        names actually match the digest it reported.
        """
        self._read_verified(name, digest)

    def load(self, name: str, digest: str) -> dict:
        """Read one partial back, verifying its content digest."""
        path = self.path_of(name)
        encoded = self._read_verified(name, digest)
        try:
            payload = json.loads(encoded)
        except json.JSONDecodeError as error:  # pragma: no cover - digest gate
            raise StreamError(f"corrupt spilled partial {path}: {error}") from error
        if not isinstance(payload, dict):
            raise StreamError(f"corrupt spilled partial {path}: not a JSON object")
        return payload

    @staticmethod
    def quarantine_root(spill_root: Path) -> Path:
        """Where failed partials from *spill_root* are preserved.

        Under a :class:`TraceStore`'s ``.partials`` parent the layout is
        ``<store>/.partials/quarantine/``; elsewhere (ad-hoc temp spill
        dirs) a ``<spill_root>.quarantine`` sibling, which survives the
        spill root's own ``cleanup()``.
        """
        spill_root = Path(spill_root)
        if spill_root.parent.name == ".partials":
            return spill_root.parent / "quarantine"
        return spill_root.with_name(spill_root.name + ".quarantine")

    def quarantine(self, name: str, reason: dict) -> Path | None:
        """Preserve a failed attempt's spill (if any) with a reason file.

        Moves ``<name>.json`` — when the attempt got far enough to spill
        one — into a per-attempt directory under :meth:`quarantine_root`
        and writes ``REASON.json`` describing the failure, instead of
        deleting the evidence.  Best-effort: returns the entry directory,
        or ``None`` when bookkeeping itself fails (quarantine must never
        mask the error being recorded).
        """
        try:
            entry = self.quarantine_root(self.root) / f"{self.root.name}-{name}"
            entry.mkdir(parents=True, exist_ok=True)
            source = self.path_of(name)
            if source.exists():
                os.replace(source, entry / source.name)
            (entry / "REASON.json").write_text(
                json.dumps(reason, indent=2, sort_keys=True) + "\n"
            )
            return entry
        except OSError:  # pragma: no cover - disk trouble during failure handling
            return None

    def delete(self, name: str) -> None:
        """Drop one merged partial (missing files are fine)."""
        try:
            self.path_of(name).unlink()
        except FileNotFoundError:
            pass

    def cleanup(self) -> None:
        """Remove the spill directory and anything left in it."""
        shutil.rmtree(self.root, ignore_errors=True)
