"""Pluggable alert sinks for tracker events.

The engine pushes every :class:`~repro.stream.tracker.TrackEvent`
(new campaign, campaign growth, campaign death) to each configured sink
as the stream advances.  Sinks are deliberately tiny: an operational
deployment would point one at a SIEM or message queue; here we ship the
in-memory, console, JSONL-file and callback varieties the tests,
examples and CLI need.
"""

from __future__ import annotations

import json
import sys
from collections.abc import Callable
from pathlib import Path
from typing import IO

from repro.stream.tracker import TrackEvent


class AlertSink:
    """Interface: receives tracker events as they are produced.

    With an alert policy attached to the engine, a sink normally gets
    only the events at or above the policy's ``min_severity``; a sink
    whose ``receive_all`` is true gets the full scored event feed
    regardless of the floor (e.g. a complete audit log kept alongside a
    filtered alert feed).
    """

    #: Deliver every scored event, bypassing the policy's severity floor.
    receive_all: bool = False

    def emit(self, event: TrackEvent) -> None:
        raise NotImplementedError

    def close(self) -> None:
        """Flush/release resources; called by ``StreamingSmash.close()``."""


class ListSink(AlertSink):
    """Collect events in memory (tests and examples)."""

    def __init__(self) -> None:
        self.events: list[TrackEvent] = []

    def emit(self, event: TrackEvent) -> None:
        self.events.append(event)

    def of_kind(self, kind: str) -> list[TrackEvent]:
        return [event for event in self.events if event.kind == kind]


class ConsoleSink(AlertSink):
    """Print one human-readable line per event."""

    def __init__(self, stream: IO[str] | None = None) -> None:
        self.stream = stream or sys.stdout

    def emit(self, event: TrackEvent) -> None:
        prefix = f"[day {event.day}]"
        if event.severity is not None:
            prefix += f" {event.severity.upper()}"
        detail = " ".join(f"{key}={value}" for key, value in sorted(event.detail.items()))
        if event.score is not None:
            detail = f"score={event.score} {detail}"
        print(f"{prefix} {event.kind} {event.uid} {detail}".rstrip(),
              file=self.stream)

    def close(self) -> None:
        # A caller-supplied stream (a log file, a socket wrapper) may be
        # block-buffered; without a flush here the final alerts of a
        # stream only surface whenever the caller happens to close it.
        try:
            self.stream.flush()
        except ValueError:
            pass  # stream already closed by the caller


class JsonlSink(AlertSink):
    """Append one JSON object per event to a file.

    Append mode plus checkpoint/resume would duplicate alerts: a stream
    killed after emitting a day but before that day's checkpoint lands
    replays the day on resume and appends its events a second time.  With
    ``resume_safe`` the sink reads the file on first open and skips
    exactly what is already there: events from days before the last
    recorded day (those days were fully emitted, or resume would have
    replayed them), and events of the last recorded day whose JSON line
    is already present — so a day that was only partially flushed before
    a crash completes instead of duplicating or losing its tail (events
    are deterministic, so replayed lines are byte-identical).

    ``resume_safe`` must only be set when the stream actually resumed
    (the CLI ties it to ``--resume``): it infers "already emitted" from
    the file contents, so a *fresh* stream pointed at an old file would
    wrongly swallow its own early days.  The default is plain append.
    """

    def __init__(
        self,
        path: str | Path,
        resume_safe: bool = False,
        receive_all: bool = False,
    ) -> None:
        self.path = Path(path)
        self.resume_safe = resume_safe
        self.receive_all = receive_all
        self._handle: IO[str] | None = None
        self._skip_before: int | None = None
        self._boundary_lines: frozenset[str] = frozenset()

    def _open(self) -> None:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        needs_newline = False
        if self.path.exists() and self.path.stat().st_size > 0:
            with self.path.open("rb") as existing:
                existing.seek(-1, 2)
                # A crash mid-write leaves a torn line with no newline;
                # appending straight after it would corrupt the next
                # event, so start on a fresh line.
                needs_newline = existing.read(1) != b"\n"
        if self.resume_safe and self.path.exists():
            last: int | None = None
            boundary: set[str] = set()
            for line in self.path.read_text().splitlines():
                try:
                    day = json.loads(line).get("day")
                except (json.JSONDecodeError, AttributeError):
                    continue  # torn write from a crash mid-line
                if not isinstance(day, int):
                    continue
                if last is None or day > last:
                    last, boundary = day, {line}
                elif day == last:
                    boundary.add(line)
            if last is not None:
                self._skip_before = last
                self._boundary_lines = frozenset(boundary)
        self._handle = self.path.open("a")
        if needs_newline:
            self._handle.write("\n")

    def emit(self, event: TrackEvent) -> None:
        if self._handle is None:
            self._open()
        line = json.dumps(event.to_dict(), sort_keys=True)
        if self._skip_before is not None:
            if event.day < self._skip_before:
                return
            if event.day == self._skip_before and line in self._boundary_lines:
                return
        assert self._handle is not None
        self._handle.write(line + "\n")
        # Alerts must be at least as durable as the per-day checkpoints a
        # stream takes: a buffered line lost to a crash would vanish for
        # good, because resume skips the already-checkpointed days.
        self._handle.flush()

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None


class CallbackSink(AlertSink):
    """Invoke an arbitrary callable per event (embedding into other systems)."""

    def __init__(self, callback: Callable[[TrackEvent], None]) -> None:
        self.callback = callback

    def emit(self, event: TrackEvent) -> None:
        self.callback(event)
