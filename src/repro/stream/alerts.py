"""Pluggable alert sinks for tracker events.

The engine pushes every :class:`~repro.stream.tracker.TrackEvent`
(new campaign, campaign growth, campaign death) to each configured sink
as the stream advances.  Sinks are deliberately tiny: an operational
deployment would point one at a SIEM or message queue; here we ship the
in-memory, console, JSONL-file and callback varieties the tests,
examples and CLI need.
"""

from __future__ import annotations

import json
import sys
from collections.abc import Callable
from pathlib import Path
from typing import IO

from repro.stream.tracker import TrackEvent


class AlertSink:
    """Interface: receives every tracker event as it is produced."""

    def emit(self, event: TrackEvent) -> None:
        raise NotImplementedError

    def close(self) -> None:
        """Flush/release resources; called by ``StreamingSmash.close()``."""


class ListSink(AlertSink):
    """Collect events in memory (tests and examples)."""

    def __init__(self) -> None:
        self.events: list[TrackEvent] = []

    def emit(self, event: TrackEvent) -> None:
        self.events.append(event)

    def of_kind(self, kind: str) -> list[TrackEvent]:
        return [event for event in self.events if event.kind == kind]


class ConsoleSink(AlertSink):
    """Print one human-readable line per event."""

    def __init__(self, stream: IO[str] | None = None) -> None:
        self.stream = stream or sys.stdout

    def emit(self, event: TrackEvent) -> None:
        detail = " ".join(f"{key}={value}" for key, value in sorted(event.detail.items()))
        print(f"[day {event.day}] {event.kind} {event.uid} {detail}".rstrip(),
              file=self.stream)


class JsonlSink(AlertSink):
    """Append one JSON object per event to a file."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._handle: IO[str] | None = None

    def emit(self, event: TrackEvent) -> None:
        if self._handle is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = self.path.open("a")
        self._handle.write(json.dumps(event.to_dict(), sort_keys=True) + "\n")
        # Alerts must be at least as durable as the per-day checkpoints a
        # stream takes: a buffered line lost to a crash would vanish for
        # good, because resume skips the already-checkpointed days.
        self._handle.flush()

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None


class CallbackSink(AlertSink):
    """Invoke an arbitrary callable per event (embedding into other systems)."""

    def __init__(self, callback: Callable[[TrackEvent], None]) -> None:
        self.callback = callback

    def emit(self, event: TrackEvent) -> None:
        self.callback(event)
