"""The incremental streaming engine.

:class:`StreamingSmash` turns the one-shot batch pipeline into a
day-over-day system: each :meth:`~StreamingSmash.ingest_day` call slides
the rolling window forward, runs SMASH over the window, hands the run's
campaigns to the :class:`~repro.stream.tracker.CampaignTracker` for
cross-day identity matching, and fans the resulting events out to the
alert sinks.

Per advance the engine mines the similarity dimensions **once** and
correlates at both operating thresholds (0.8 multi-client, 1.0
single-client — footnote 9), exactly as ``SmashPipeline.run_sweep``
reuses mining across thresholds.  The mined dimensions stay cached for
the current window, so :meth:`~StreamingSmash.rerun_at` can explore
additional thresholds without re-mining, and the window itself caches
every per-day input so nothing is regenerated as the window slides.

Two further levers make the advance itself incremental:

* ``incremental=True`` (the default) keeps a
  :class:`~repro.core.pipeline.DimensionCache` across advances, so only
  dimensions whose inputs are dirtied by the entering/leaving days are
  re-mined; the rest are spliced in from cache, provably identical to a
  cold full-window re-mine;
* ``store_dir=...`` persists every ingested day into a
  :class:`~repro.stream.store.TraceStore`, so the window holds on-disk
  handles and checkpoints shrink to metadata plus tracker state.
"""

from __future__ import annotations

import logging

from pathlib import Path

from dataclasses import dataclass, field, replace as dc_replace

from repro.config import SmashConfig
from repro.core.pipeline import (
    DimensionCache,
    MinedDimensions,
    SmashPipeline,
    dimension_build_stats,
)
from repro.core.results import MAIN_DIMENSION, Campaign, SmashResult
from repro.errors import StreamError
from repro.httplog.trace import HttpTrace
from repro.obs.metrics import NULL_RECORDER
from repro.stream.alerts import AlertSink
from repro.stream.scoring import AlertPolicy, CampaignScorer, EvidenceSource, ScorerConfig
from repro.stream.store import TraceStore
from repro.stream.tracker import CampaignTracker, TrackedCampaign, TrackerConfig, TrackEvent
from repro.stream.window import DayPartition, RollingWindow
from repro.synth.oracles import RedirectOracle
from repro.whois.registry import WhoisRegistry

#: The paper's operating thresholds (Section V-A1, Appendix C).
DEFAULT_THRESH = 0.8
SINGLE_CLIENT_THRESH = 1.0

#: Library logger: silent unless an application (e.g. the CLI via
#: ``repro.obs.configure_logging``) attaches a handler.
_LOGGER = logging.getLogger("repro.stream")


@dataclass(frozen=True)
class StreamUpdate:
    """Everything one window advance produced."""

    day: int
    window_days: tuple[int, ...]
    result: SmashResult
    single_client_result: SmashResult | None
    #: The campaigns fed to the tracker: multi-client campaigns from
    #: ``result`` plus single-client campaigns from the 1.0-threshold run.
    campaigns: tuple[Campaign, ...]
    events: tuple[TrackEvent, ...]
    #: Snapshot of the identities alive after this advance.
    active: tuple[TrackedCampaign, ...]
    #: Dimensions spliced in from the incremental cache this advance
    #: (empty when the engine runs with ``incremental=False``).
    reused_dimensions: tuple[str, ...] = ()
    #: Dimensions actually re-mined this advance.
    mined_dimensions: tuple[str, ...] = ()
    #: The subset of ``events`` at or above the policy's ``min_severity``
    #: — exactly what was emitted to the alert sinks this advance.
    alerts: tuple[TrackEvent, ...] = ()
    #: Per-dimension candidate-pair accounting from this advance's mined
    #: graphs (``repro.core.pipeline.dimension_build_stats``): the
    #: heavy-hitter load signal, surfaced in the stream summary JSON.
    #: Cache-spliced dimensions report the stats of the (provably
    #: identical) cached build.
    build_stats: dict[str, dict[str, object]] = field(default_factory=dict)

    @property
    def num_campaigns(self) -> int:
        return len(self.campaigns)

    @property
    def detected_servers(self) -> frozenset[str]:
        servers: set[str] = set()
        for campaign in self.campaigns:
            servers |= campaign.servers
        return frozenset(servers)

    def events_of(self, kind: str) -> tuple[TrackEvent, ...]:
        return tuple(event for event in self.events if event.kind == kind)


class StreamingSmash:
    """Run SMASH incrementally over a multi-day stream of HTTP logs."""

    def __init__(
        self,
        config: SmashConfig | None = None,
        window_size: int = 1,
        tracker: CampaignTracker | None = None,
        tracker_config: TrackerConfig | None = None,
        sinks: tuple[AlertSink, ...] = (),
        thresh: float = DEFAULT_THRESH,
        single_client_thresh: float | None = SINGLE_CLIENT_THRESH,
        workers: int | None = None,
        executor: str | None = None,
        shards: int | None = None,
        shard_retries: int | None = None,
        shard_timeout: float | None = None,
        fault_plan=None,
        store: TraceStore | None = None,
        store_dir: str | Path | None = None,
        incremental: bool | None = None,
        evidence: tuple[EvidenceSource, ...] = (),
        policy: AlertPolicy | None = None,
        scorer: CampaignScorer | ScorerConfig | None = None,
        metrics=None,
    ) -> None:
        if tracker is not None and tracker_config is not None:
            raise StreamError("pass either tracker or tracker_config, not both")
        if store is not None and store_dir is not None:
            raise StreamError("pass either store or store_dir, not both")
        self.config = config or SmashConfig()
        # One recorder serves the whole stack: an explicit `metrics`
        # argument wins, else the config's recorder, else the shared
        # no-op.  The config is re-derived so the pipeline (and its
        # mining spans) record into the same registry.
        self.metrics = metrics or self.config.metrics or NULL_RECORDER
        if self.metrics.enabled and self.config.metrics is not self.metrics:
            self.config = self.config.replace(metrics=self.metrics)
        # Per-advance runs mine every dimension over the current window;
        # `workers`/`executor`/`shards` override the config's fan-out
        # settings without the caller having to build a SmashConfig.
        # Mining is deterministic (sharded or not), so this never changes
        # the stream's campaigns or tracker identities — only how fast
        # each advance completes and how much memory it holds at peak.
        # `shard_retries`/`shard_timeout`/`fault_plan` ride the same way:
        # retries and injected (recoverable) faults change only how an
        # advance executes, never what it mines.
        overrides = {
            "workers": workers,
            "executor": executor,
            "shards": shards,
            "shard_retries": shard_retries,
            "shard_timeout": shard_timeout,
            "fault_plan": fault_plan,
        }
        changed = {name: value for name, value in overrides.items() if value is not None}
        if changed:
            self.config = self.config.replace(**changed)
        self.pipeline = SmashPipeline(self.config)
        self.store = (
            TraceStore(store_dir, metrics=self.metrics)
            if store_dir is not None
            else store
        )
        if self.store is not None and self.metrics.enabled:
            self.store.metrics = self.metrics
        if self.config.out_of_core and self.store is None:
            raise StreamError(
                "out-of-core streaming needs a trace store (store_dir=... or "
                "--store): store-direct shard jobs load day partitions from it"
            )
        self.window = RollingWindow(window_size, store=self.store)
        self.tracker = tracker or CampaignTracker(tracker_config)
        self.sinks = tuple(sinks)
        self.thresh = thresh
        self.single_client_thresh = single_client_thresh
        self.incremental = (
            self.config.incremental if incremental is None else incremental
        )
        self._dimension_cache = DimensionCache() if self.incremental else None
        self._mined: tuple[tuple[int, ...], MinedDimensions] | None = None
        self.evidence = tuple(evidence)
        names = [source.name for source in self.evidence]
        if len(names) != len(set(names)):
            raise StreamError(f"evidence source names must be unique: {names}")
        self.policy = policy or AlertPolicy()
        self.policy.validate()
        if isinstance(scorer, ScorerConfig):
            scorer = CampaignScorer(scorer)
        self.scorer = scorer or CampaignScorer()

    # -- ingestion ----------------------------------------------------------------

    def ingest_day(
        self,
        day: int,
        trace: HttpTrace,
        whois: WhoisRegistry | None = None,
        redirects: RedirectOracle | None = None,
    ) -> StreamUpdate:
        """Advance the stream by one day of log records."""
        with self.metrics.span(
            "stream.advance", metric="smash_advance_seconds", day=day
        ) as span:
            update = self._ingest_day(day, trace, whois, redirects)
        if self.metrics.enabled:
            self._record_advance(span, trace, update)
        if _LOGGER.isEnabledFor(logging.DEBUG):
            _LOGGER.debug(
                "advance",
                extra={
                    "data": {
                        "day": day,
                        "window_days": list(update.window_days),
                        "requests": len(trace),
                        "reused_dimensions": len(update.reused_dimensions),
                        "mined_dimensions": len(update.mined_dimensions),
                        "campaigns": len(update.campaigns),
                        "events": len(update.events),
                        "alerts": len(update.alerts),
                        "active": len(update.active),
                    }
                },
            )
        return update

    def _record_advance(self, span, trace: HttpTrace, update: StreamUpdate) -> None:
        """Fold one advance's outcome into the metrics registry."""
        recorder = self.metrics
        span.set(
            requests=len(trace),
            window_days=list(update.window_days),
            campaigns=len(update.campaigns),
            events=len(update.events),
            alerts=len(update.alerts),
            reused_dimensions=list(update.reused_dimensions),
            mined_dimensions=list(update.mined_dimensions),
        )
        recorder.counter(
            "smash_requests_ingested_total",
            "HTTP log records ingested across all advances.",
        ).inc(len(trace))
        reused = recorder.counter(
            "smash_dimensions_reused_total",
            "Dimensions spliced in from the incremental cache.",
            labels=("dimension",),
        )
        for dimension in update.reused_dimensions:
            reused.labels(dimension=dimension).inc()
        mined = recorder.counter(
            "smash_dimensions_mined_total",
            "Dimensions re-mined because their inputs changed.",
            labels=("dimension",),
        )
        for dimension in update.mined_dimensions:
            mined.labels(dimension=dimension).inc()
        created = len(update.events_of("new_campaign"))
        expired = len(update.events_of("campaign_died"))
        recorder.counter(
            "smash_tracker_created_total", "New campaign identities created."
        ).inc(created)
        recorder.counter(
            "smash_tracker_expired_total", "Campaign identities that died out."
        ).inc(expired)
        recorder.counter(
            "smash_tracker_matches_total",
            "Campaigns matched to an already-tracked identity.",
        ).inc(max(0, len(update.campaigns) - created))
        emitted = recorder.counter(
            "smash_alerts_emitted_total",
            "Alerts emitted to the sinks, by severity.",
            labels=("severity",),
        )
        suppressed = recorder.counter(
            "smash_alerts_suppressed_total",
            "Events below the alert policy's min_severity, by severity.",
            labels=("severity",),
        )
        alerted = set(map(id, update.alerts))
        for event in update.events:
            severity = event.severity or "info"
            if id(event) in alerted:
                emitted.labels(severity=severity).inc()
            else:
                suppressed.labels(severity=severity).inc()
        recorder.gauge(
            "smash_window_days", "Days currently in the rolling window."
        ).set(len(update.window_days))
        recorder.gauge(
            "smash_active_campaigns", "Tracked campaign identities currently alive."
        ).set(len(update.active))

    def _ingest_day(
        self,
        day: int,
        trace: HttpTrace,
        whois: WhoisRegistry | None,
        redirects: RedirectOracle | None,
    ) -> StreamUpdate:
        self.window.append(DayPartition(day=day, trace=trace, whois=whois, redirects=redirects))
        if self.config.out_of_core:
            # Never assemble the window trace in this process: sidecars
            # merge one partition at a time and the mine is store-direct.
            combined_whois, combined_redirects = self.window.combined_sidecars()
            combined_trace: HttpTrace | None = None
        else:
            combined_trace, combined_whois, combined_redirects = self.window.combined()

        mined = self._mine_window(combined_trace, combined_whois)
        self._mined = (self.window.days, mined)
        if self._dimension_cache is not None:
            reused_dimensions = self._dimension_cache.last_reused
            mined_dimensions = self._dimension_cache.last_mined
        else:
            reused_dimensions = ()
            mined_dimensions = (
                MAIN_DIMENSION,
                *self.config.enabled_secondary_dimensions,
            )

        result = self.pipeline.finish(mined, combined_redirects, thresh=self.thresh)
        campaigns = list(result.campaigns_with_clients(2))
        single_result: SmashResult | None = None
        if self.single_client_thresh is not None:
            single_result = self.pipeline.finish(
                mined, combined_redirects, thresh=self.single_client_thresh
            )
            campaigns.extend(single_result.campaigns_with_clients(1, 1))

        events = self.tracker.advance(day, campaigns)

        # Evidence accumulates from the day's own traffic *before* the
        # day's events are scored, so a campaign whose server trips an
        # IDS signature today is already escalated in today's alerts.
        for source in self.evidence:
            source.observe_day(day, trace)
        scored = tuple(self._score_event(event) for event in events)
        alerts = tuple(
            event for event in scored if self.policy.passes(event.severity or "info")
        )
        for sink in self.sinks:
            for event in scored if sink.receive_all else alerts:
                sink.emit(event)

        return StreamUpdate(
            day=day,
            window_days=self.window.days,
            result=result,
            single_client_result=single_result,
            campaigns=tuple(campaigns),
            events=scored,
            active=self.tracker.active,
            reused_dimensions=reused_dimensions,
            mined_dimensions=mined_dimensions,
            alerts=alerts,
            build_stats=dimension_build_stats(mined),
        )

    def _mine_window(
        self, combined_trace: HttpTrace | None, combined_whois: WhoisRegistry | None
    ) -> MinedDimensions:
        """Mine the combined window, sharded along day partitions.

        With ``config.shards > 1`` the mine receives the window's per-day
        request counts as shard boundaries (shard cuts land on stored
        partition edges) and, when a trace store is attached, spills its
        index/pair partials under the store's ``.partials`` directory
        instead of a process-private tempdir.

        With ``config.out_of_core`` (*combined_trace* is ``None``) the
        mine is store-direct: shard jobs are handed ``(day, digest)``
        partition references and load their own partitions from the
        store; boundaries come from the partition manifests, so no day is
        materialised in the coordinator at all.
        """
        if self.config.out_of_core:
            assert self.store is not None  # guaranteed by __init__
            refs = self.window.partition_refs()
            days = self.window.days
            return self.pipeline.mine(
                None,
                whois=combined_whois,
                cache=self._dimension_cache,
                partitions=[(ref.day, ref.digest) for ref in refs],
                store_root=self.store.root,
                shard_boundaries=tuple(
                    self.store.request_count(ref.day, ref.digest) for ref in refs
                ),
                trace_name=f"window-days-{days[0]}-{days[-1]}",
                spill_dir=self.store.partials_dir(),
            )
        if self.config.shards <= 1:
            return self.pipeline.mine(
                combined_trace, whois=combined_whois, cache=self._dimension_cache
            )
        return self.pipeline.mine(
            combined_trace,
            whois=combined_whois,
            cache=self._dimension_cache,
            shard_boundaries=self.window.partition_request_counts(),
            spill_dir=None if self.store is None else self.store.partials_dir(),
        )

    def _score_event(self, event: TrackEvent) -> TrackEvent:
        """Attach score + severity from the identity's current history."""
        campaign = self.tracker.get(event.uid)
        features, score = self.scorer.assess(campaign, self.evidence)
        severity = self.policy.severity(event, features, score)
        return dc_replace(event, severity=severity, score=score)

    def ingest_dataset(self, dataset, day: int | None = None) -> StreamUpdate:
        """Ingest a :class:`~repro.synth.generator.SyntheticDataset`.

        Evidence sources adopt the dataset's ground-truth objects first
        (scenario generators rebuild the IDS signature sets and blacklist
        listings per day as campaigns rotate infrastructure).
        """
        for source in self.evidence:
            source.bind_dataset(dataset)
        return self.ingest_day(
            day if day is not None else dataset.day,
            dataset.trace,
            whois=dataset.whois,
            redirects=dataset.redirects,
        )

    def run_datasets(self, datasets) -> list[StreamUpdate]:
        """Ingest an iterable of datasets (e.g. ``TraceGenerator.iter_days()``)."""
        return [self.ingest_dataset(dataset) for dataset in datasets]

    def rerun_at(self, thresh: float) -> SmashResult:
        """Re-correlate the current window at another threshold.

        Reuses the cached mined dimensions — no preprocessing or graph
        mining is repeated (mining dominates the cost and is
        threshold-independent, like ``SmashPipeline.run_sweep``).
        """
        if self._mined is None or self._mined[0] != self.window.days:
            if not len(self.window):
                raise StreamError("no day ingested yet")
            if self.config.out_of_core:
                combined_whois, _ = self.window.combined_sidecars()
                combined_trace: HttpTrace | None = None
            else:
                combined_trace, combined_whois, _ = self.window.combined()
            self._mined = (
                self.window.days,
                self._mine_window(combined_trace, combined_whois),
            )
        if self.config.out_of_core:
            _, combined_redirects = self.window.combined_sidecars()
        else:
            _, _, combined_redirects = self.window.combined()
        return self.pipeline.finish(self._mined[1], combined_redirects, thresh=thresh)

    def close(self) -> None:
        """Close every sink; one failing sink never skips the rest."""
        first_error: BaseException | None = None
        for sink in self.sinks:
            try:
                sink.close()
            except Exception as error:  # noqa: BLE001 - sinks are third-party code
                if first_error is None:
                    first_error = error
        if first_error is not None:
            raise first_error

    # -- checkpoint support -------------------------------------------------------

    @property
    def last_day(self) -> int | None:
        return self.tracker.last_day

    def state_dict(self) -> dict[str, object]:
        """Serialisable state: tracker + window + stream parameters.

        The :class:`~repro.config.SmashConfig` and alert sinks are *not*
        serialised; pass them again when restoring.  The mined-dimension
        and incremental caches are derived state, rebuilt on demand.

        With a trace store attached the window serialises as per-day
        ``(day, digest)`` references plus the store root, so checkpoints
        stay a few KB regardless of window length.
        """
        state: dict[str, object] = {
            "thresh": self.thresh,
            "single_client_thresh": self.single_client_thresh,
            "window": self.window.to_dict(),
            "tracker": self.tracker.to_dict(),
        }
        if self.store is not None:
            state["store_root"] = str(self.store.root.resolve())
        if self.evidence:
            # Evidence accumulations are stream state like the tracker:
            # a resumed stream must score a replayed day identically.
            state["evidence"] = {
                source.name: source.state_dict() for source in self.evidence
            }
        state["policy"] = self.policy.to_dict()
        return state

    @classmethod
    def from_state_dict(
        cls,
        state: dict[str, object],
        config: SmashConfig | None = None,
        sinks: tuple[AlertSink, ...] = (),
        store: TraceStore | None = None,
        incremental: bool | None = None,
        evidence: tuple[EvidenceSource, ...] = (),
        policy: AlertPolicy | None = None,
        scorer: CampaignScorer | ScorerConfig | None = None,
        metrics=None,
    ) -> "StreamingSmash":
        """Rebuild an engine; evidence *objects* are process wiring (like
        sinks and the config) and must be passed again, but each one's
        accumulated hits are restored from the checkpoint by source name.
        With no explicit *policy* the checkpointed severity rules win,
        mirroring how resume treats the window size and tracker tuning.
        """
        window_state = state["window"]
        if store is None and isinstance(window_state, dict) and window_state.get("store"):
            # Reopen the store the checkpoint was written against, if it
            # is still where the checkpoint says it was.
            root = state.get("store_root")
            if isinstance(root, str) and Path(root).is_dir():
                store = TraceStore(root)
        window = RollingWindow.from_dict(window_state, store=store)  # type: ignore[arg-type]
        single = state.get("single_client_thresh")
        if policy is None:
            policy_state = state.get("policy")
            if isinstance(policy_state, dict):
                policy = AlertPolicy.from_dict(policy_state)
        engine = cls(
            config=config,
            window_size=window.size,
            tracker=CampaignTracker.from_dict(state["tracker"]),  # type: ignore[arg-type]
            sinks=sinks,
            thresh=float(state.get("thresh", DEFAULT_THRESH)),  # type: ignore[arg-type]
            single_client_thresh=None if single is None else float(single),  # type: ignore[arg-type]
            store=store,
            incremental=incremental,
            evidence=evidence,
            policy=policy,
            scorer=scorer,
            metrics=metrics,
        )
        engine.window = window
        evidence_state = state.get("evidence")
        if isinstance(evidence_state, dict):
            for source in engine.evidence:
                source_state = evidence_state.get(source.name)
                if isinstance(source_state, dict):
                    source.load_state(source_state)
        return engine
