"""The incremental streaming engine.

:class:`StreamingSmash` turns the one-shot batch pipeline into a
day-over-day system: each :meth:`~StreamingSmash.ingest_day` call slides
the rolling window forward, runs SMASH over the window, hands the run's
campaigns to the :class:`~repro.stream.tracker.CampaignTracker` for
cross-day identity matching, and fans the resulting events out to the
alert sinks.

Per advance the engine mines the similarity dimensions **once** and
correlates at both operating thresholds (0.8 multi-client, 1.0
single-client — footnote 9), exactly as ``SmashPipeline.run_sweep``
reuses mining across thresholds.  The mined dimensions stay cached for
the current window, so :meth:`~StreamingSmash.rerun_at` can explore
additional thresholds without re-mining, and the window itself caches
every per-day input so nothing is regenerated as the window slides.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import SmashConfig
from repro.core.pipeline import MinedDimensions, SmashPipeline
from repro.core.results import Campaign, SmashResult
from repro.errors import StreamError
from repro.httplog.trace import HttpTrace
from repro.stream.alerts import AlertSink
from repro.stream.tracker import CampaignTracker, TrackedCampaign, TrackerConfig, TrackEvent
from repro.stream.window import DayPartition, RollingWindow
from repro.synth.oracles import RedirectOracle
from repro.whois.registry import WhoisRegistry

#: The paper's operating thresholds (Section V-A1, Appendix C).
DEFAULT_THRESH = 0.8
SINGLE_CLIENT_THRESH = 1.0


@dataclass(frozen=True)
class StreamUpdate:
    """Everything one window advance produced."""

    day: int
    window_days: tuple[int, ...]
    result: SmashResult
    single_client_result: SmashResult | None
    #: The campaigns fed to the tracker: multi-client campaigns from
    #: ``result`` plus single-client campaigns from the 1.0-threshold run.
    campaigns: tuple[Campaign, ...]
    events: tuple[TrackEvent, ...]
    #: Snapshot of the identities alive after this advance.
    active: tuple[TrackedCampaign, ...]

    @property
    def num_campaigns(self) -> int:
        return len(self.campaigns)

    @property
    def detected_servers(self) -> frozenset[str]:
        servers: set[str] = set()
        for campaign in self.campaigns:
            servers |= campaign.servers
        return frozenset(servers)

    def events_of(self, kind: str) -> tuple[TrackEvent, ...]:
        return tuple(event for event in self.events if event.kind == kind)


class StreamingSmash:
    """Run SMASH incrementally over a multi-day stream of HTTP logs."""

    def __init__(
        self,
        config: SmashConfig | None = None,
        window_size: int = 1,
        tracker: CampaignTracker | None = None,
        tracker_config: TrackerConfig | None = None,
        sinks: tuple[AlertSink, ...] = (),
        thresh: float = DEFAULT_THRESH,
        single_client_thresh: float | None = SINGLE_CLIENT_THRESH,
        workers: int | None = None,
        executor: str | None = None,
    ) -> None:
        if tracker is not None and tracker_config is not None:
            raise StreamError("pass either tracker or tracker_config, not both")
        self.config = config or SmashConfig()
        # Per-advance runs mine every dimension over the current window;
        # `workers`/`executor` override the config's fan-out settings
        # without the caller having to build a SmashConfig.  Mining is
        # deterministic, so this never changes the stream's campaigns or
        # tracker identities — only how fast each advance completes.
        if workers is not None or executor is not None:
            self.config = self.config.replace(
                workers=self.config.workers if workers is None else workers,
                executor=self.config.executor if executor is None else executor,
            )
        self.pipeline = SmashPipeline(self.config)
        self.window = RollingWindow(window_size)
        self.tracker = tracker or CampaignTracker(tracker_config)
        self.sinks = tuple(sinks)
        self.thresh = thresh
        self.single_client_thresh = single_client_thresh
        self._mined: tuple[tuple[int, ...], MinedDimensions] | None = None

    # -- ingestion ----------------------------------------------------------------

    def ingest_day(
        self,
        day: int,
        trace: HttpTrace,
        whois: WhoisRegistry | None = None,
        redirects: RedirectOracle | None = None,
    ) -> StreamUpdate:
        """Advance the stream by one day of log records."""
        self.window.append(DayPartition(day=day, trace=trace, whois=whois, redirects=redirects))
        combined_trace, combined_whois, combined_redirects = self.window.combined()

        mined = self.pipeline.mine(combined_trace, whois=combined_whois)
        self._mined = (self.window.days, mined)

        result = self.pipeline.finish(mined, combined_redirects, thresh=self.thresh)
        campaigns = list(result.campaigns_with_clients(2))
        single_result: SmashResult | None = None
        if self.single_client_thresh is not None:
            single_result = self.pipeline.finish(
                mined, combined_redirects, thresh=self.single_client_thresh
            )
            campaigns.extend(single_result.campaigns_with_clients(1, 1))

        events = self.tracker.advance(day, campaigns)
        for sink in self.sinks:
            for event in events:
                sink.emit(event)

        return StreamUpdate(
            day=day,
            window_days=self.window.days,
            result=result,
            single_client_result=single_result,
            campaigns=tuple(campaigns),
            events=tuple(events),
            active=self.tracker.active,
        )

    def ingest_dataset(self, dataset, day: int | None = None) -> StreamUpdate:
        """Ingest a :class:`~repro.synth.generator.SyntheticDataset`."""
        return self.ingest_day(
            day if day is not None else dataset.day,
            dataset.trace,
            whois=dataset.whois,
            redirects=dataset.redirects,
        )

    def run_datasets(self, datasets) -> list[StreamUpdate]:
        """Ingest an iterable of datasets (e.g. ``TraceGenerator.iter_days()``)."""
        return [self.ingest_dataset(dataset) for dataset in datasets]

    def rerun_at(self, thresh: float) -> SmashResult:
        """Re-correlate the current window at another threshold.

        Reuses the cached mined dimensions — no preprocessing or graph
        mining is repeated (mining dominates the cost and is
        threshold-independent, like ``SmashPipeline.run_sweep``).
        """
        if self._mined is None or self._mined[0] != self.window.days:
            if not len(self.window):
                raise StreamError("no day ingested yet")
            combined_trace, combined_whois, _ = self.window.combined()
            self._mined = (self.window.days, self.pipeline.mine(combined_trace, whois=combined_whois))
        _, _, combined_redirects = self.window.combined()
        return self.pipeline.finish(self._mined[1], combined_redirects, thresh=thresh)

    def close(self) -> None:
        for sink in self.sinks:
            sink.close()

    # -- checkpoint support -------------------------------------------------------

    @property
    def last_day(self) -> int | None:
        return self.tracker.last_day

    def state_dict(self) -> dict[str, object]:
        """Serialisable state: tracker + window + stream parameters.

        The :class:`~repro.config.SmashConfig` and alert sinks are *not*
        serialised; pass them again when restoring.  The mined-dimension
        cache is derived state and is rebuilt on demand.
        """
        return {
            "thresh": self.thresh,
            "single_client_thresh": self.single_client_thresh,
            "window": self.window.to_dict(),
            "tracker": self.tracker.to_dict(),
        }

    @classmethod
    def from_state_dict(
        cls,
        state: dict[str, object],
        config: SmashConfig | None = None,
        sinks: tuple[AlertSink, ...] = (),
    ) -> "StreamingSmash":
        window = RollingWindow.from_dict(state["window"])  # type: ignore[arg-type]
        single = state.get("single_client_thresh")
        engine = cls(
            config=config,
            window_size=window.size,
            tracker=CampaignTracker.from_dict(state["tracker"]),  # type: ignore[arg-type]
            sinks=sinks,
            thresh=float(state.get("thresh", DEFAULT_THRESH)),  # type: ignore[arg-type]
            single_client_thresh=None if single is None else float(single),  # type: ignore[arg-type]
        )
        engine.window = window
        return engine
