"""Rolling multi-day window over HTTP log partitions.

The streaming engine ingests one :class:`DayPartition` per trace day and
keeps the most recent *N* of them.  Each partition bundles the day's
trace with its oracle sidecars (Whois registry, redirect oracle) — the
same triple :meth:`~repro.core.pipeline.SmashPipeline.run` consumes —
so the window can hand the pipeline a combined view of the whole window
without regenerating or re-reading any per-day input.

Combined views are cached per window state: advancing the window
invalidates them, re-running the same window (e.g. a second threshold)
reuses them.

With a :class:`~repro.stream.store.TraceStore` attached the window holds
:class:`~repro.stream.store.PartitionRef` handles instead of full
partitions: every appended day is persisted to the store, serialisation
emits ``(day, digest)`` references instead of embedding requests, and a
resumed window loads partitions back lazily on first use.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from dataclasses import dataclass

from repro.errors import StreamError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (store imports window)
    from repro.stream.store import PartitionRef, TraceStore
from repro.httplog.records import HttpRequest
from repro.httplog.trace import HttpTrace
from repro.synth.oracles import RedirectOracle
from repro.whois.record import WhoisRecord
from repro.whois.registry import WhoisRegistry


def whois_to_list(registry: WhoisRegistry | None) -> list[dict[str, object]]:
    """Serialise a Whois registry to JSON-compatible records."""
    if registry is None:
        return []
    return [
        record.to_dict() for record in sorted(registry, key=lambda r: r.domain)
    ]


def whois_from_list(entries: list[dict[str, object]]) -> WhoisRegistry | None:
    """Inverse of :func:`whois_to_list` (empty list -> ``None``)."""
    if not entries:
        return None
    return WhoisRegistry(WhoisRecord.from_dict(entry) for entry in entries)


def redirects_to_dict(oracle: RedirectOracle | None) -> dict[str, str]:
    """Serialise a redirect oracle to its landing-server mapping."""
    if oracle is None:
        return {}
    return oracle.to_dict()


def redirects_from_dict(mapping: dict[str, str]) -> RedirectOracle | None:
    """Inverse of :func:`redirects_to_dict` (empty dict -> ``None``)."""
    if not mapping:
        return None
    return RedirectOracle.from_dict(mapping)


@dataclass(frozen=True)
class DayPartition:
    """One ingested day: trace plus oracle sidecars."""

    day: int
    trace: HttpTrace
    whois: WhoisRegistry | None = None
    redirects: RedirectOracle | None = None

    def to_dict(self) -> dict[str, object]:
        return {
            "day": self.day,
            "trace_name": self.trace.name,
            "requests": [request.to_dict() for request in self.trace],
            "whois": whois_to_list(self.whois),
            "redirects": redirects_to_dict(self.redirects),
        }

    @classmethod
    def from_dict(cls, data: dict[str, object]) -> "DayPartition":
        requests = [
            HttpRequest.from_dict(entry)  # type: ignore[arg-type]
            for entry in data.get("requests", ())  # type: ignore[union-attr]
        ]
        return cls(
            day=int(data["day"]),  # type: ignore[arg-type]
            trace=HttpTrace(requests, name=str(data.get("trace_name", "trace"))),
            whois=whois_from_list(data.get("whois", [])),  # type: ignore[arg-type]
            redirects=redirects_from_dict(data.get("redirects", {})),  # type: ignore[arg-type]
        )


class RollingWindow:
    """The most recent *size* day partitions, oldest evicted first.

    Days must be appended in strictly increasing order — the window
    models a forward-moving stream, not random access.

    With *store* attached, appended partitions are persisted immediately
    and the window keeps :class:`~repro.stream.store.PartitionRef`
    handles; without one it keeps the partitions in memory exactly as
    before.
    """

    def __init__(self, size: int = 1, store: "TraceStore | None" = None) -> None:
        if size < 1:
            raise StreamError(f"window size must be >= 1, got {size}")
        self.size = size
        self.store = store
        self._slots: list["DayPartition | PartitionRef"] = []
        self._combined: tuple[HttpTrace, WhoisRegistry | None, RedirectOracle | None] | None = None
        self._sidecars: tuple[WhoisRegistry | None, RedirectOracle | None] | None = None

    @staticmethod
    def _materialise(slot: "DayPartition | PartitionRef") -> DayPartition:
        return slot if isinstance(slot, DayPartition) else slot.load()

    def __len__(self) -> int:
        return len(self._slots)

    @property
    def partitions(self) -> tuple[DayPartition, ...]:
        return tuple(self._materialise(slot) for slot in self._slots)

    @property
    def days(self) -> tuple[int, ...]:
        """Day indices currently inside the window, oldest first."""
        return tuple(slot.day for slot in self._slots)

    def append(self, partition: DayPartition) -> "tuple[DayPartition | PartitionRef, ...]":
        """Add the next day; return the slots evicted to make room.

        Evicted days stay resident in the attached store (the stream's
        history); only the in-memory window forgets them.  With a store
        the evicted entries are :class:`~repro.stream.store.PartitionRef`
        handles, returned *without* forcing a disk load — call
        ``.load()`` if the full partition is wanted.
        """
        if self._slots and partition.day <= self._slots[-1].day:
            raise StreamError(
                f"stream days must be strictly increasing: got day "
                f"{partition.day} after day {self._slots[-1].day}"
            )
        slot = partition if self.store is None else self.store.put(partition)
        self._slots.append(slot)
        evicted = tuple(self._slots[: -self.size])
        self._slots = self._slots[-self.size:]
        self._combined = None
        self._sidecars = None
        return evicted

    def partition_request_counts(self) -> tuple[int, ...]:
        """Per-day request counts, oldest first — the shard boundaries.

        The combined window trace concatenates partitions in this order,
        so these counts let :meth:`~repro.core.pipeline.SmashPipeline.mine`
        align shard cuts with stored day partitions (partition-scoped
        shard loads instead of arbitrary mid-day slices).
        """
        return tuple(
            len(self._materialise(slot).trace) for slot in self._slots
        )

    def partition_refs(self) -> "tuple[PartitionRef, ...]":
        """The window's store references, oldest first.

        The out-of-core mine hands these straight to store-direct shard
        jobs; no partition is materialised here.  Requires an attached
        store — an in-memory window has nothing to reference.
        """
        if self.store is None:
            raise StreamError(
                "partition_refs() needs a trace store; this window holds "
                "in-memory partitions"
            )
        return tuple(self._slots)  # type: ignore[return-value]

    def combined_sidecars(self) -> tuple[WhoisRegistry | None, RedirectOracle | None]:
        """The window's merged (whois, redirects) without the trace.

        Same merge semantics (and results) as :meth:`combined`, but
        partitions are loaded one at a time and released immediately, so
        at most one day's requests are resident — the out-of-core
        coordinator's way to get the window sidecars without holding the
        window trace.
        """
        if not self._slots:
            raise StreamError("cannot combine an empty window")
        if self._combined is not None:
            return self._combined[1], self._combined[2]
        if self._sidecars is None:
            whois: WhoisRegistry | None = None
            landing: dict[str, str] = {}
            for slot in self._slots:
                partition = self._materialise(slot)
                if partition.whois is not None:
                    whois = (
                        partition.whois
                        if whois is None
                        else whois.merged_with(partition.whois)
                    )
                if partition.redirects is not None:
                    landing.update(redirects_to_dict(partition.redirects))
                if not isinstance(slot, DayPartition):
                    slot.release()
            redirects = RedirectOracle(landing_of=landing) if landing else None
            self._sidecars = (whois, redirects)
        return self._sidecars

    def combined(self) -> tuple[HttpTrace, WhoisRegistry | None, RedirectOracle | None]:
        """The window's merged (trace, whois, redirects) pipeline inputs."""
        if not self._slots:
            raise StreamError("cannot combine an empty window")
        if self._combined is None:
            partitions = self.partitions
            traces = [partition.trace for partition in partitions]
            name = f"window-days-{self.days[0]}-{self.days[-1]}"
            trace = traces[0] if len(traces) == 1 else HttpTrace.concat(traces, name=name)

            whois: WhoisRegistry | None = None
            for partition in partitions:
                if partition.whois is None:
                    continue
                whois = partition.whois if whois is None else whois.merged_with(partition.whois)

            landing: dict[str, str] = {}
            for partition in partitions:
                if partition.redirects is None:
                    continue
                landing.update(redirects_to_dict(partition.redirects))
            redirects = RedirectOracle(landing_of=landing) if landing else None
            self._combined = (trace, whois, redirects)
        return self._combined

    # -- checkpoint support -------------------------------------------------------

    def to_dict(self) -> dict[str, object]:
        if self.store is not None:
            return {
                "size": self.size,
                "store": True,
                "partitions": [
                    {"day": slot.day, "digest": slot.digest}  # type: ignore[union-attr]
                    for slot in self._slots
                ],
            }
        return {
            "size": self.size,
            "partitions": [
                self._materialise(slot).to_dict() for slot in self._slots
            ],
        }

    @classmethod
    def from_dict(
        cls, data: dict[str, object], store: "TraceStore | None" = None
    ) -> "RollingWindow":
        if data.get("store") and store is None:
            raise StreamError(
                "window state references a trace store; pass the store "
                "(load_checkpoint(..., store_dir=...) or --store) to restore it"
            )
        window = cls(size=int(data.get("size", 1)), store=store)  # type: ignore[arg-type]
        if data.get("store"):
            assert store is not None
            for entry in data.get("partitions", ()):  # type: ignore[union-attr]
                window._slots.append(
                    store.ref(int(entry["day"]), str(entry["digest"]))
                )
        else:
            for entry in data.get("partitions", ()):  # type: ignore[union-attr]
                window.append(DayPartition.from_dict(entry))  # type: ignore[arg-type]
        return window
