"""Rolling multi-day window over HTTP log partitions.

The streaming engine ingests one :class:`DayPartition` per trace day and
keeps the most recent *N* of them.  Each partition bundles the day's
trace with its oracle sidecars (Whois registry, redirect oracle) — the
same triple :meth:`~repro.core.pipeline.SmashPipeline.run` consumes —
so the window can hand the pipeline a combined view of the whole window
without regenerating or re-reading any per-day input.

Combined views are cached per window state: advancing the window
invalidates them, re-running the same window (e.g. a second threshold)
reuses them.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import StreamError
from repro.httplog.records import HttpRequest
from repro.httplog.trace import HttpTrace
from repro.synth.oracles import RedirectOracle
from repro.whois.record import WhoisRecord
from repro.whois.registry import WhoisRegistry


def whois_to_list(registry: WhoisRegistry | None) -> list[dict[str, object]]:
    """Serialise a Whois registry to JSON-compatible records."""
    if registry is None:
        return []
    return [
        record.to_dict() for record in sorted(registry, key=lambda r: r.domain)
    ]


def whois_from_list(entries: list[dict[str, object]]) -> WhoisRegistry | None:
    """Inverse of :func:`whois_to_list` (empty list -> ``None``)."""
    if not entries:
        return None
    return WhoisRegistry(WhoisRecord.from_dict(entry) for entry in entries)


def redirects_to_dict(oracle: RedirectOracle | None) -> dict[str, str]:
    """Serialise a redirect oracle to its landing-server mapping."""
    if oracle is None:
        return {}
    return oracle.to_dict()


def redirects_from_dict(mapping: dict[str, str]) -> RedirectOracle | None:
    """Inverse of :func:`redirects_to_dict` (empty dict -> ``None``)."""
    if not mapping:
        return None
    return RedirectOracle.from_dict(mapping)


@dataclass(frozen=True)
class DayPartition:
    """One ingested day: trace plus oracle sidecars."""

    day: int
    trace: HttpTrace
    whois: WhoisRegistry | None = None
    redirects: RedirectOracle | None = None

    def to_dict(self) -> dict[str, object]:
        return {
            "day": self.day,
            "trace_name": self.trace.name,
            "requests": [request.to_dict() for request in self.trace],
            "whois": whois_to_list(self.whois),
            "redirects": redirects_to_dict(self.redirects),
        }

    @classmethod
    def from_dict(cls, data: dict[str, object]) -> "DayPartition":
        requests = [
            HttpRequest.from_dict(entry)  # type: ignore[arg-type]
            for entry in data.get("requests", ())  # type: ignore[union-attr]
        ]
        return cls(
            day=int(data["day"]),  # type: ignore[arg-type]
            trace=HttpTrace(requests, name=str(data.get("trace_name", "trace"))),
            whois=whois_from_list(data.get("whois", [])),  # type: ignore[arg-type]
            redirects=redirects_from_dict(data.get("redirects", {})),  # type: ignore[arg-type]
        )


class RollingWindow:
    """The most recent *size* day partitions, oldest evicted first.

    Days must be appended in strictly increasing order — the window
    models a forward-moving stream, not random access.
    """

    def __init__(self, size: int = 1) -> None:
        if size < 1:
            raise StreamError(f"window size must be >= 1, got {size}")
        self.size = size
        self._partitions: list[DayPartition] = []
        self._combined: tuple[HttpTrace, WhoisRegistry | None, RedirectOracle | None] | None = None

    def __len__(self) -> int:
        return len(self._partitions)

    @property
    def partitions(self) -> tuple[DayPartition, ...]:
        return tuple(self._partitions)

    @property
    def days(self) -> tuple[int, ...]:
        """Day indices currently inside the window, oldest first."""
        return tuple(partition.day for partition in self._partitions)

    def append(self, partition: DayPartition) -> tuple[DayPartition, ...]:
        """Add the next day; return the partitions evicted to make room."""
        if self._partitions and partition.day <= self._partitions[-1].day:
            raise StreamError(
                f"stream days must be strictly increasing: got day "
                f"{partition.day} after day {self._partitions[-1].day}"
            )
        self._partitions.append(partition)
        evicted = tuple(self._partitions[: -self.size])
        self._partitions = self._partitions[-self.size:]
        self._combined = None
        return evicted

    def combined(self) -> tuple[HttpTrace, WhoisRegistry | None, RedirectOracle | None]:
        """The window's merged (trace, whois, redirects) pipeline inputs."""
        if not self._partitions:
            raise StreamError("cannot combine an empty window")
        if self._combined is None:
            traces = [partition.trace for partition in self._partitions]
            name = f"window-days-{self.days[0]}-{self.days[-1]}"
            trace = traces[0] if len(traces) == 1 else HttpTrace.concat(traces, name=name)

            whois: WhoisRegistry | None = None
            for partition in self._partitions:
                if partition.whois is None:
                    continue
                whois = partition.whois if whois is None else whois.merged_with(partition.whois)

            landing: dict[str, str] = {}
            for partition in self._partitions:
                if partition.redirects is None:
                    continue
                landing.update(redirects_to_dict(partition.redirects))
            redirects = RedirectOracle(landing_of=landing) if landing else None
            self._combined = (trace, whois, redirects)
        return self._combined

    # -- checkpoint support -------------------------------------------------------

    def to_dict(self) -> dict[str, object]:
        return {
            "size": self.size,
            "partitions": [partition.to_dict() for partition in self._partitions],
        }

    @classmethod
    def from_dict(cls, data: dict[str, object]) -> "RollingWindow":
        window = cls(size=int(data.get("size", 1)))  # type: ignore[arg-type]
        for entry in data.get("partitions", ()):  # type: ignore[union-attr]
            window.append(DayPartition.from_dict(entry))  # type: ignore[arg-type]
        return window
