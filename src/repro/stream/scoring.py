"""Evidence-driven alert scoring for tracked campaigns.

The tracker (:mod:`repro.stream.tracker`) fires an event for *every*
new, grown or died campaign identity, which at production volume is an
unreadable feed.  Section V of the paper never treats all detections
equally either: campaigns are validated against external evidence — IDS
signature hits (including the IDS2013-only "zero-day" set) and blacklist
confirmations — and the longitudinal analysis separates fast-growing
agile campaigns from stable persistent ones.  This module turns those
distinctions into an alert pipeline:

* :class:`EvidenceSource` — accumulates external confirmations for
  servers as the stream advances.  Concrete providers wrap the existing
  ground-truth substrate: :class:`IdsEvidence` runs a
  :class:`~repro.groundtruth.ids.SignatureIds` generation over each
  day's traffic (with an ``exclude`` hook that derives the 2013-only
  zero-day set), :class:`BlacklistEvidence` checks observed servers
  against a :class:`~repro.groundtruth.blacklist.BlacklistAggregator`,
  and :class:`StaticEvidence` carries a fixed feed (CLI files, tests).

* :class:`CampaignScorer` — computes per-identity
  :class:`RiskFeatures` from a
  :class:`~repro.stream.tracker.TrackedCampaign`'s history (server
  growth and churn per matched advance, lifetime, client- and
  server-set sizes) plus per-source evidence counts, and combines them
  into one deterministic risk score via saturating transforms
  ``x / (x + scale)`` — smooth, monotone, and byte-stable under any
  ``PYTHONHASHSEED``.

* :class:`AlertPolicy` — maps an event + its features to a severity
  (``info`` | ``warning`` | ``critical``): growth above a configurable
  rate or a score past ``warning_score`` is a warning, any zero-day or
  blacklist evidence (or ``critical_score``) escalates to critical, and
  events below ``min_severity`` are suppressed before they reach the
  alert sinks.

The engine (:class:`~repro.stream.engine.StreamingSmash`) owns the
wiring: it feeds each ingested day to every evidence source, attaches
``severity`` and ``score`` to every
:class:`~repro.stream.tracker.TrackEvent`, and only emits events the
policy lets through.  Evidence accumulations are checkpointed with the
tracker so a resumed stream scores identically to an uninterrupted one.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field

from repro.domains.names import normalize_server_name
from repro.errors import StreamError
from repro.groundtruth.blacklist import BlacklistAggregator
from repro.groundtruth.ids import SignatureIds
from repro.httplog.trace import HttpTrace
from repro.stream.tracker import TrackedCampaign, TrackEvent

#: Severity levels, least to most severe.
SEVERITIES: tuple[str, ...] = ("info", "warning", "critical")

#: Severity -> rank, for ordering comparisons.
SEVERITY_RANK: dict[str, int] = {name: rank for rank, name in enumerate(SEVERITIES)}


def _check_severity(value: str) -> str:
    if value not in SEVERITY_RANK:
        raise StreamError(f"unknown severity {value!r}; expected one of {', '.join(SEVERITIES)}")
    return value


def severity_at_least(severity: str, floor: str) -> bool:
    """True when *severity* is at least as severe as *floor*."""
    return SEVERITY_RANK[_check_severity(severity)] >= SEVERITY_RANK[_check_severity(floor)]


# -- evidence providers ---------------------------------------------------------------


class EvidenceSource:
    """Accumulating feed of externally confirmed servers.

    ``name`` identifies the source in event details and checkpoints;
    ``kind`` drives scoring/policy semantics: ``"ids"`` (signature hit),
    ``"zero_day"`` (hit only the newer signature generation knows),
    ``"blacklist"`` (blacklist confirmation) or ``"custom"``.
    """

    name: str = "evidence"
    kind: str = "custom"

    def observe_day(self, day: int, trace: HttpTrace) -> None:
        """Update the accumulated hit set from one day of traffic."""

    def bind_dataset(self, dataset) -> None:
        """Adopt a :class:`~repro.synth.generator.SyntheticDataset`'s
        ground-truth object for the coming day (scenario streams rebuild
        IDS/blacklist content per day as campaigns rotate servers)."""

    def matched(self) -> frozenset[str]:
        """All servers with at least one hit so far."""
        raise NotImplementedError

    def hits_among(self, servers: Iterable[str]) -> frozenset[str]:
        """Subset of *servers* this source has evidence for."""
        return frozenset(servers) & self.matched()

    # -- checkpoint support -----------------------------------------------------

    def state_dict(self) -> dict[str, object]:
        return {"kind": self.kind, "matched": sorted(self.matched())}

    def load_state(self, state: dict[str, object]) -> None:
        """Restore the accumulated hits from :meth:`state_dict` output."""


class StaticEvidence(EvidenceSource):
    """A fixed set of known-bad servers (feed files, tests)."""

    def __init__(self, name: str, servers: Iterable[str], kind: str = "custom") -> None:
        self.name = name
        self.kind = kind
        self._servers = frozenset(servers)

    def matched(self) -> frozenset[str]:
        return self._servers


class IdsEvidence(EvidenceSource):
    """Run one IDS signature generation over each ingested day.

    ``exclude`` subtracts another :class:`IdsEvidence`'s hits at read
    time: ``IdsEvidence(name="ids2013_zero_day", dataset_attr="ids2013",
    exclude=ids2012_source)`` yields exactly the paper's zero-day set —
    servers only the newer 2013 signatures know.  ``dataset_attr`` names
    the :class:`~repro.synth.generator.SyntheticDataset` attribute
    :meth:`bind_dataset` adopts (default: the source's name).
    """

    kind = "ids"

    def __init__(
        self,
        ids: SignatureIds | None = None,
        name: str | None = None,
        exclude: "IdsEvidence | None" = None,
        dataset_attr: str | None = None,
    ) -> None:
        if ids is None and name is None:
            raise StreamError("IdsEvidence needs an ids object or a name")
        self.ids = ids
        self.name = name if name is not None else ids.name  # type: ignore[union-attr]
        self.exclude = exclude
        self.dataset_attr = dataset_attr or self.name
        if exclude is not None:
            self.kind = "zero_day"
        self._hits: set[str] = set()

    def observe_day(self, day: int, trace: HttpTrace) -> None:
        if self.ids is not None:
            self._hits |= self.ids.detected_servers(trace, normalize_server_name)

    def bind_dataset(self, dataset) -> None:
        ids = getattr(dataset, self.dataset_attr, None)
        if ids is not None:
            self.ids = ids

    def matched(self) -> frozenset[str]:
        hits = frozenset(self._hits)
        if self.exclude is not None:
            hits -= self.exclude.matched()
        return hits

    def state_dict(self) -> dict[str, object]:
        # Raw hits, not the exclude-adjusted view: the excluded source
        # checkpoints its own hits, and applying the subtraction at read
        # time keeps the pair consistent however they are restored.
        return {"kind": self.kind, "matched": sorted(self._hits)}

    def load_state(self, state: dict[str, object]) -> None:
        self._hits = {str(server) for server in state.get("matched", ())}


class BlacklistEvidence(EvidenceSource):
    """Check each day's observed servers against a blacklist aggregator."""

    kind = "blacklist"

    def __init__(
        self,
        blacklists: BlacklistAggregator | None = None,
        name: str = "blacklist",
    ) -> None:
        self.blacklists = blacklists
        self.name = name
        self._hits: set[str] = set()

    def observe_day(self, day: int, trace: HttpTrace) -> None:
        if self.blacklists is None:
            return
        servers = {normalize_server_name(host) for host in trace.servers}
        self._hits |= {s for s in servers if self.blacklists.is_confirmed(s)}

    def bind_dataset(self, dataset) -> None:
        blacklists = getattr(dataset, "blacklists", None)
        if blacklists is not None:
            self.blacklists = blacklists

    def matched(self) -> frozenset[str]:
        return frozenset(self._hits)

    def load_state(self, state: dict[str, object]) -> None:
        self._hits = {str(server) for server in state.get("matched", ())}


def scenario_ids_evidence() -> tuple[IdsEvidence, IdsEvidence]:
    """The paired IDS generations: ``(ids2012, ids2013 zero-day)``.

    Both sources adopt a
    :class:`~repro.synth.generator.SyntheticDataset`'s signature sets
    via :meth:`EvidenceSource.bind_dataset`; the second subtracts the
    first's hits, yielding the servers only the 2013 signatures know.
    """
    ids2012 = IdsEvidence(name="ids2012")
    zero_day = IdsEvidence(name="ids2013_zero_day", dataset_attr="ids2013", exclude=ids2012)
    return (ids2012, zero_day)


def scenario_evidence() -> tuple[EvidenceSource, ...]:
    """The standard provider trio for synthetic-scenario streams.

    Returns ``(ids2012, ids2013 zero-day, blacklist)`` sources that
    adopt each :class:`~repro.synth.generator.SyntheticDataset`'s
    ground-truth objects via :meth:`EvidenceSource.bind_dataset` — pass
    them to :class:`~repro.stream.engine.StreamingSmash` and drive it
    with :meth:`~repro.stream.engine.StreamingSmash.ingest_dataset`.
    """
    return (*scenario_ids_evidence(), BlacklistEvidence())


# -- risk features and scoring --------------------------------------------------------


@dataclass(frozen=True)
class RiskFeatures:
    """Per-identity risk inputs, derived from tracker history + evidence."""

    #: Servers that joined per matched advance (agile/fast-growing
    #: campaigns rotate or add infrastructure daily — Section V-B).
    growth_rate: float
    #: Servers that joined or left per matched advance.
    churn_rate: float
    #: Number of days the identity was sighted.
    lifetime_days: int
    num_servers: int
    num_clients: int
    #: Evidence-source name -> number of the identity's all-time servers
    #: that source has confirmed.
    evidence: dict[str, int] = field(default_factory=dict)
    #: Evidence kind ("ids" | "zero_day" | "blacklist" | "custom") ->
    #: total confirmed-server count across sources of that kind.
    evidence_by_kind: dict[str, int] = field(default_factory=dict)

    @property
    def total_evidence(self) -> int:
        return sum(self.evidence.values())

    def evidence_of_kind(self, kind: str) -> int:
        return self.evidence_by_kind.get(kind, 0)


def _saturate(value: float, scale: float) -> float:
    """Monotone map of ``[0, inf)`` onto ``[0, 1)``; 0.5 at ``scale``."""
    if value <= 0.0:
        return 0.0
    return value / (value + scale)


@dataclass(frozen=True)
class ScorerConfig:
    """Weights and scales of :class:`CampaignScorer`.

    Each behavioural feature contributes ``weight * x / (x + scale)``
    (half the weight at ``x == scale``); evidence adds a saturating
    per-source term plus flat bonuses for the strongest evidence kinds.
    The defaults put a quiet single-day campaign well under 1.0, a
    fast-growing or long-lived one above ``warning_score`` and any
    zero-day/blacklist-confirmed one above ``critical_score`` of the
    default :class:`AlertPolicy`.
    """

    growth_weight: float = 1.0
    growth_scale: float = 2.0
    churn_weight: float = 0.5
    churn_scale: float = 4.0
    lifetime_weight: float = 0.5
    lifetime_scale: float = 3.0
    size_weight: float = 0.5
    size_scale: float = 10.0
    clients_weight: float = 0.25
    clients_scale: float = 10.0
    evidence_weight: float = 1.0
    evidence_scale: float = 2.0
    #: Flat bonus when any server is confirmed by a zero-day source.
    zero_day_bonus: float = 1.0
    #: Flat bonus when any server is blacklist-confirmed.
    blacklist_bonus: float = 0.75
    #: Decimal places scores are rounded to (byte-stable JSON output).
    precision: int = 4

    def validate(self) -> None:
        for name in (
            "growth_scale",
            "churn_scale",
            "lifetime_scale",
            "size_scale",
            "clients_scale",
            "evidence_scale",
        ):
            if getattr(self, name) <= 0.0:
                raise StreamError(f"{name} must be > 0")
        for name in (
            "growth_weight",
            "churn_weight",
            "lifetime_weight",
            "size_weight",
            "clients_weight",
            "evidence_weight",
            "zero_day_bonus",
            "blacklist_bonus",
        ):
            if getattr(self, name) < 0.0:
                raise StreamError(f"{name} must be >= 0")
        if self.precision < 0:
            raise StreamError("precision must be >= 0")


class CampaignScorer:
    """Deterministic per-identity risk score from history + evidence."""

    def __init__(self, config: ScorerConfig | None = None) -> None:
        self.config = config or ScorerConfig()
        self.config.validate()

    def features(
        self,
        campaign: TrackedCampaign,
        evidence: Sequence[EvidenceSource] = (),
    ) -> RiskFeatures:
        """Risk features of one tracked identity.

        Evidence is counted against the identity's *all-time* server set:
        an agile campaign that rotated away from a blacklisted server is
        still a confirmed campaign.
        """
        advances = max(1, len(campaign.days_seen) - 1)
        counts: dict[str, int] = {}
        by_kind: dict[str, int] = {}
        for source in evidence:
            hits = len(source.hits_among(campaign.all_servers))
            counts[source.name] = hits
            by_kind[source.kind] = by_kind.get(source.kind, 0) + hits
        return RiskFeatures(
            growth_rate=campaign.servers_added / advances,
            churn_rate=(campaign.servers_added + campaign.servers_removed) / advances,
            lifetime_days=len(campaign.days_seen),
            num_servers=len(campaign.servers),
            num_clients=len(campaign.clients),
            evidence=counts,
            evidence_by_kind=by_kind,
        )

    def score(self, features: RiskFeatures) -> float:
        """Combine *features* into one score (rounded, order-free)."""
        config = self.config
        total = config.growth_weight * _saturate(features.growth_rate, config.growth_scale)
        total += config.churn_weight * _saturate(features.churn_rate, config.churn_scale)
        total += config.lifetime_weight * _saturate(features.lifetime_days, config.lifetime_scale)
        total += config.size_weight * _saturate(features.num_servers, config.size_scale)
        total += config.clients_weight * _saturate(features.num_clients, config.clients_scale)
        # Per-source terms are summed in sorted-name order; float addition
        # is not associative, so a fixed order keeps the score independent
        # of how the caller happened to arrange the sources.
        for name in sorted(features.evidence):
            total += config.evidence_weight * _saturate(
                features.evidence[name], config.evidence_scale
            )
        if features.evidence_of_kind("zero_day") > 0:
            total += config.zero_day_bonus
        if features.evidence_of_kind("blacklist") > 0:
            total += config.blacklist_bonus
        return round(total, config.precision)

    def assess(
        self,
        campaign: TrackedCampaign,
        evidence: Sequence[EvidenceSource] = (),
    ) -> tuple[RiskFeatures, float]:
        features = self.features(campaign, evidence)
        return features, self.score(features)


# -- alert policy ---------------------------------------------------------------------


@dataclass(frozen=True)
class AlertPolicy:
    """Severity rules and the suppression floor for tracker events.

    Severity is the strongest applicable rule:

    * **critical** — any evidence of a kind in ``critical_evidence``
      (zero-day signature hits and blacklist confirmations by default),
      or score at least ``critical_score``;
    * **warning** — a growth event at or above ``growth_rate`` servers
      per advance, any evidence at all, or score at least
      ``warning_score``;
    * **info** — everything else.

    Events strictly below ``min_severity`` never reach the alert sinks
    (they still appear, scored, on the
    :class:`~repro.stream.engine.StreamUpdate`).
    """

    min_severity: str = "info"
    #: Growth (servers added per matched advance) that makes a
    #: ``campaign_growth`` event at least a warning.
    growth_rate: float = 3.0
    warning_score: float = 1.0
    critical_score: float = 2.0
    #: Evidence kinds whose presence alone escalates to critical.
    critical_evidence: tuple[str, ...] = ("zero_day", "blacklist")

    def validate(self) -> None:
        _check_severity(self.min_severity)
        if self.growth_rate < 0.0:
            raise StreamError("growth_rate must be >= 0")
        if self.warning_score < 0.0:
            raise StreamError("warning_score must be >= 0")
        if self.critical_score < self.warning_score:
            raise StreamError("critical_score must be >= warning_score")

    def severity(self, event: TrackEvent, features: RiskFeatures, score: float) -> str:
        if score >= self.critical_score or any(
            features.evidence_of_kind(kind) > 0 for kind in self.critical_evidence
        ):
            return "critical"
        if (
            score >= self.warning_score
            or features.total_evidence > 0
            or (event.kind == "campaign_growth" and features.growth_rate >= self.growth_rate)
        ):
            return "warning"
        return "info"

    def passes(self, severity: str) -> bool:
        return severity_at_least(severity, self.min_severity)

    def to_dict(self) -> dict[str, object]:
        return {
            "min_severity": self.min_severity,
            "growth_rate": self.growth_rate,
            "warning_score": self.warning_score,
            "critical_score": self.critical_score,
            "critical_evidence": list(self.critical_evidence),
        }

    @classmethod
    def from_dict(cls, data: dict[str, object]) -> "AlertPolicy":
        critical_kinds = data.get("critical_evidence", ("zero_day", "blacklist"))
        policy = cls(
            min_severity=str(data.get("min_severity", "info")),
            growth_rate=float(data.get("growth_rate", 3.0)),  # type: ignore[arg-type]
            warning_score=float(data.get("warning_score", 1.0)),  # type: ignore[arg-type]
            critical_score=float(data.get("critical_score", 2.0)),  # type: ignore[arg-type]
            critical_evidence=tuple(critical_kinds),  # type: ignore[arg-type]
        )
        policy.validate()
        return policy
