"""Cross-day campaign identity tracking.

A daily SMASH run numbers its campaigns from zero, so campaign #3 today
and campaign #7 tomorrow may be the same herd.  :class:`CampaignTracker`
assigns *stable* identifiers by matching each run's campaigns against the
campaigns it already tracks:

* primary match — Jaccard overlap of **server** sets (persistent
  campaigns keep most of their infrastructure day over day);
* fallback match — Jaccard overlap of **client** sets (agile campaigns
  rotate every server daily but reuse the same infected bots; server
  overlap alone would mint a fresh identity each day — Section V-B).

Matching is greedy best-score one-to-one, so a campaign that splits into
two keeps its identity on the better-matching half and the other half
becomes a new campaign.  With the tracker in place the paper's
longitudinal analyses fall out of bookkeeping: Figure 7's
persistent/agile decomposition is recorded as the tracker advances, and
campaign lifetimes/churn are per-identity counters instead of post-hoc
set comparisons.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING

from repro.core.results import Campaign
from repro.errors import StreamError

if TYPE_CHECKING:  # imported lazily at runtime: repro.eval imports
    # repro.eval.streaming, which imports this module — a module-level
    # import of repro.eval.figures here would close that cycle.
    from repro.eval.figures import PersistenceDay


def jaccard(left: frozenset[str], right: frozenset[str]) -> float:
    """Jaccard similarity of two sets (0.0 when both are empty).

    The intersection is materialised once; the union size is
    ``|A| + |B| - |A ∩ B|`` — same integer, one temporary set fewer.
    """
    if not left and not right:
        return 0.0
    intersection = len(left & right)
    return intersection / (len(left) + len(right) - intersection)


@dataclass(frozen=True)
class TrackerConfig:
    """Matching and expiry tunables of :class:`CampaignTracker`."""

    #: Minimum server-set Jaccard for two campaigns to be the same herd.
    server_jaccard: float = 0.3

    #: Minimum client-set Jaccard for the agile-campaign fallback match.
    client_jaccard: float = 0.5

    #: Whether the client-set fallback is used at all.
    match_clients: bool = True

    #: A tracked campaign unseen for more than this many consecutive
    #: stream advances is declared dead (its ID is never reused).
    max_gap_days: int = 2

    def validate(self) -> None:
        if not 0.0 < self.server_jaccard <= 1.0:
            raise StreamError("server_jaccard must be in (0, 1]")
        if not 0.0 < self.client_jaccard <= 1.0:
            raise StreamError("client_jaccard must be in (0, 1]")
        if self.max_gap_days < 0:
            raise StreamError("max_gap_days must be >= 0")


@dataclass(frozen=True)
class TrackedCampaign:
    """One campaign identity and its cross-day history."""

    uid: str
    first_seen: int
    last_seen: int
    days_seen: tuple[int, ...]
    servers: frozenset[str]
    clients: frozenset[str]
    #: Every server ever attributed to this identity.
    all_servers: frozenset[str]
    #: Cumulative servers that joined/left across matched advances.
    servers_added: int = 0
    servers_removed: int = 0
    alive: bool = True
    #: Numeric creation counter — the age order used for match
    #: tie-breaking.  The zero-padded ``uid`` string stops sorting in age
    #: order at ``C10000`` (``"C10000" < "C9999"`` lexicographically), so
    #: age comparisons must never fall back to it.
    serial: int = 0

    @property
    def num_servers(self) -> int:
        return len(self.servers)

    @property
    def span_days(self) -> int:
        """Calendar span from first to last sighting, inclusive."""
        return self.last_seen - self.first_seen + 1

    @property
    def max_consecutive_days(self) -> int:
        """Length of the longest run of consecutive sighting days."""
        if not self.days_seen:
            return 0
        best = run = 1
        for previous, current in zip(self.days_seen, self.days_seen[1:]):
            run = run + 1 if current == previous + 1 else 1
            best = max(best, run)
        return best

    def to_dict(self) -> dict[str, object]:
        return {
            "uid": self.uid,
            "first_seen": self.first_seen,
            "last_seen": self.last_seen,
            "days_seen": list(self.days_seen),
            "servers": sorted(self.servers),
            "clients": sorted(self.clients),
            "all_servers": sorted(self.all_servers),
            "servers_added": self.servers_added,
            "servers_removed": self.servers_removed,
            "alive": self.alive,
            "serial": self.serial,
        }

    @classmethod
    def from_dict(cls, data: dict[str, object]) -> "TrackedCampaign":
        uid = str(data["uid"])
        serial = data.get("serial")
        if serial is None:
            # Checkpoints written before the serial field derive age from
            # the uid's digits ("C0042" -> 42), which is exact for every
            # tracker-minted id.
            digits = "".join(ch for ch in uid if ch.isdigit())
            serial = int(digits) if digits else 0
        return cls(
            uid=uid,
            first_seen=int(data["first_seen"]),  # type: ignore[arg-type]
            last_seen=int(data["last_seen"]),  # type: ignore[arg-type]
            days_seen=tuple(data["days_seen"]),  # type: ignore[arg-type]
            servers=frozenset(data["servers"]),  # type: ignore[arg-type]
            clients=frozenset(data["clients"]),  # type: ignore[arg-type]
            all_servers=frozenset(data["all_servers"]),  # type: ignore[arg-type]
            servers_added=int(data.get("servers_added", 0)),  # type: ignore[arg-type]
            servers_removed=int(data.get("servers_removed", 0)),  # type: ignore[arg-type]
            alive=bool(data.get("alive", True)),
            serial=int(serial),  # type: ignore[arg-type]
        )


#: ``TrackEvent.to_dict`` flattens ``detail`` into the envelope; these
#: envelope keys may therefore never appear as detail keys (a detail
#: named ``"day"`` would silently overwrite the event's day).
RESERVED_EVENT_KEYS = frozenset({"kind", "day", "uid", "severity", "score"})


@dataclass(frozen=True)
class TrackEvent:
    """One alertable tracker observation (see :mod:`repro.stream.alerts`).

    ``severity`` and ``score`` are attached by the engine's alert-scoring
    layer (:mod:`repro.stream.scoring`); raw tracker output leaves them
    unset.
    """

    kind: str  # "new_campaign" | "campaign_growth" | "campaign_died"
    day: int
    uid: str
    detail: dict[str, object] = field(default_factory=dict)
    severity: str | None = None
    score: float | None = None

    def __post_init__(self) -> None:
        clash = RESERVED_EVENT_KEYS & self.detail.keys()
        if clash:
            raise StreamError(
                f"TrackEvent detail may not use reserved envelope keys: "
                f"{sorted(clash)}"
            )

    def to_dict(self) -> dict[str, object]:
        payload: dict[str, object] = {
            "kind": self.kind,
            "day": self.day,
            "uid": self.uid,
            **self.detail,
        }
        if self.severity is not None:
            payload["severity"] = self.severity
        if self.score is not None:
            payload["score"] = self.score
        return payload


class CampaignTracker:
    """Assign stable cross-day identities to per-run campaigns."""

    def __init__(self, config: TrackerConfig | None = None) -> None:
        self.config = config or TrackerConfig()
        self.config.validate()
        self._campaigns: dict[str, TrackedCampaign] = {}
        self._next_id = 1
        self._last_day: int | None = None
        #: All servers/clients ever seen in any tracked campaign — the
        #: "seen before" baselines of the Figure-7 classification.
        self._seen_servers: set[str] = set()
        self._seen_clients: set[str] = set()
        self._persistence: list["PersistenceDay"] = []

    # -- read API -----------------------------------------------------------------

    @property
    def campaigns(self) -> tuple[TrackedCampaign, ...]:
        """All identities ever tracked, in creation order."""
        return tuple(self._campaigns.values())

    @property
    def active(self) -> tuple[TrackedCampaign, ...]:
        return tuple(c for c in self._campaigns.values() if c.alive)

    @property
    def last_day(self) -> int | None:
        return self._last_day

    def get(self, uid: str) -> TrackedCampaign:
        try:
            return self._campaigns[uid]
        except KeyError:
            raise StreamError(f"unknown campaign id {uid!r}") from None

    def persistence_series(self) -> list["PersistenceDay"]:
        """Figure 7's persistent/agile decomposition, recorded live.

        Equivalent to
        :func:`repro.eval.figures.persistence_series_detailed` over the
        same per-day campaign lists, but accumulated as the stream
        advances instead of recomputed from retained daily results.
        """
        return list(self._persistence)

    def lifetimes(self) -> list[dict[str, object]]:
        """Per-identity lifetime/churn rows (campaign lifetime analysis)."""
        return [
            {
                "uid": c.uid,
                "first_seen": c.first_seen,
                "last_seen": c.last_seen,
                "days_seen": len(c.days_seen),
                "span_days": c.span_days,
                "max_consecutive_days": c.max_consecutive_days,
                "servers": len(c.servers),
                "all_servers": len(c.all_servers),
                "servers_added": c.servers_added,
                "servers_removed": c.servers_removed,
                "alive": c.alive,
            }
            for c in self._campaigns.values()
        ]

    # -- advance ------------------------------------------------------------------

    def advance(self, day: int, campaigns: list[Campaign]) -> list[TrackEvent]:
        """Match *day*'s campaigns against tracked identities.

        Returns the day's events (new / grown / died) in a deterministic
        order: matches processed best-score first, then new campaigns,
        then deaths.
        """
        if self._last_day is not None and day <= self._last_day:
            raise StreamError(
                f"tracker days must be strictly increasing: got day {day} "
                f"after day {self._last_day}"
            )
        config = self.config
        self._record_persistence(day, campaigns)

        # Score (tracked, observed) pairs that share at least one server
        # (or, for the fallback tier, one client).  The per-advance
        # inverted indexes below find exactly those pairs, so matching
        # work scales with actual overlap instead of tracked x observed;
        # a pair with no overlap at all scores 0.0 on both tiers and
        # could never have been a candidate (both thresholds are > 0).
        # Candidates are ranked server-matches first (tier 0), then
        # client-only fallbacks (tier 1), best score first; ties break on
        # identity age (the numeric creation serial — the uid *string*
        # stops sorting in age order at C10000) then observed order.  The
        # sort key is total per (uid, observed) pair, so the result is
        # deterministic whatever order the indexes surfaced the pairs in.
        server_uids: dict[str, list[str]] = {}
        client_uids: dict[str, list[str]] = {}
        for uid, tracked in self._campaigns.items():
            if not tracked.alive:
                continue
            for server in tracked.servers:
                server_uids.setdefault(server, []).append(uid)
            if config.match_clients:
                for client in tracked.clients:
                    client_uids.setdefault(client, []).append(uid)

        candidates: list[tuple[int, float, int, int, str]] = []
        for index, observed in enumerate(campaigns):
            server_overlap: dict[str, int] = {}
            for server in observed.servers:
                for uid in server_uids.get(server, ()):
                    server_overlap[uid] = server_overlap.get(uid, 0) + 1
            client_overlap: dict[str, int] = {}
            if config.match_clients:
                for client in observed.clients:
                    for uid in client_uids.get(client, ()):
                        client_overlap[uid] = client_overlap.get(uid, 0) + 1
            num_servers = len(observed.servers)
            num_clients = len(observed.clients)
            for uid in server_overlap.keys() | client_overlap.keys():
                tracked = self._campaigns[uid]
                shared = server_overlap.get(uid, 0)
                if shared:
                    server_score = shared / (
                        len(tracked.servers) + num_servers - shared
                    )
                    if server_score >= config.server_jaccard:
                        candidates.append(
                            (0, server_score, tracked.serial, index, uid)
                        )
                        continue
                shared_clients = client_overlap.get(uid, 0)
                if shared_clients:
                    client_score = shared_clients / (
                        len(tracked.clients) + num_clients - shared_clients
                    )
                    if client_score >= config.client_jaccard:
                        candidates.append(
                            (1, client_score, tracked.serial, index, uid)
                        )
        candidates.sort(key=lambda entry: (entry[0], -entry[1], entry[2], entry[3]))

        events: list[TrackEvent] = []
        matched_uids: set[str] = set()
        matched_observed: set[int] = set()
        for tier, score, _serial, index, uid in candidates:
            if uid in matched_uids or index in matched_observed:
                continue
            matched_uids.add(uid)
            matched_observed.add(index)
            events.extend(self._update_matched(day, uid, campaigns[index], score, tier))

        for index, observed in enumerate(campaigns):
            if index in matched_observed:
                continue
            events.append(self._track_new(day, observed))

        events.extend(self._expire(day, matched_uids))

        for campaign in campaigns:
            self._seen_servers |= campaign.servers
            self._seen_clients |= campaign.clients
        self._last_day = day
        return events

    def _record_persistence(self, day: int, campaigns: list[Campaign]) -> None:
        from repro.eval.figures import PersistenceDay

        old = new_old = new_new = 0
        for campaign in campaigns:
            campaign_is_old_clients = bool(campaign.clients & self._seen_clients)
            for server in campaign.servers:
                if server in self._seen_servers:
                    old += 1
                elif campaign_is_old_clients:
                    new_old += 1
                else:
                    new_new += 1
        self._persistence.append(
            PersistenceDay(
                day=day,
                old_servers=old,
                new_servers_old_clients=new_old,
                new_servers_new_clients=new_new,
            )
        )

    def _update_matched(
        self, day: int, uid: str, observed: Campaign, score: float, tier: int
    ) -> list[TrackEvent]:
        tracked = self._campaigns[uid]
        added = observed.servers - tracked.servers
        removed = tracked.servers - observed.servers
        updated = replace(
            tracked,
            last_seen=day,
            days_seen=tracked.days_seen + (day,),
            servers=observed.servers,
            clients=observed.clients,
            all_servers=tracked.all_servers | observed.servers,
            servers_added=tracked.servers_added + len(added),
            servers_removed=tracked.servers_removed + len(removed),
        )
        self._campaigns[uid] = updated
        if len(observed.servers) > len(tracked.servers):
            return [
                TrackEvent(
                    kind="campaign_growth",
                    day=day,
                    uid=uid,
                    detail={
                        "servers": len(observed.servers),
                        "previous_servers": len(tracked.servers),
                        "added": sorted(added),
                        "match_score": round(score, 4),
                        "matched_on": "servers" if tier == 0 else "clients",
                    },
                )
            ]
        return []

    def _track_new(self, day: int, observed: Campaign) -> TrackEvent:
        serial = self._next_id
        uid = f"C{serial:04d}"
        self._next_id += 1
        self._campaigns[uid] = TrackedCampaign(
            uid=uid,
            first_seen=day,
            last_seen=day,
            days_seen=(day,),
            servers=observed.servers,
            clients=observed.clients,
            all_servers=observed.servers,
            serial=serial,
        )
        return TrackEvent(
            kind="new_campaign",
            day=day,
            uid=uid,
            detail={
                "servers": len(observed.servers),
                "clients": len(observed.clients),
            },
        )

    def _expire(self, day: int, matched_uids: set[str]) -> list[TrackEvent]:
        events = []
        for uid, tracked in self._campaigns.items():
            if not tracked.alive or uid in matched_uids:
                continue
            if day - tracked.last_seen > self.config.max_gap_days:
                self._campaigns[uid] = replace(tracked, alive=False)
                events.append(
                    TrackEvent(
                        kind="campaign_died",
                        day=day,
                        uid=uid,
                        detail={
                            "last_seen": tracked.last_seen,
                            "days_seen": len(tracked.days_seen),
                            "servers": len(tracked.servers),
                        },
                    )
                )
        return events

    # -- checkpoint support -------------------------------------------------------

    def to_dict(self) -> dict[str, object]:
        return {
            "config": {
                "server_jaccard": self.config.server_jaccard,
                "client_jaccard": self.config.client_jaccard,
                "match_clients": self.config.match_clients,
                "max_gap_days": self.config.max_gap_days,
            },
            "next_id": self._next_id,
            "last_day": self._last_day,
            "seen_servers": sorted(self._seen_servers),
            "seen_clients": sorted(self._seen_clients),
            "campaigns": [c.to_dict() for c in self._campaigns.values()],
            "persistence": [
                {
                    "day": p.day,
                    "old_servers": p.old_servers,
                    "new_servers_old_clients": p.new_servers_old_clients,
                    "new_servers_new_clients": p.new_servers_new_clients,
                }
                for p in self._persistence
            ],
        }

    @classmethod
    def from_dict(cls, data: dict[str, object]) -> "CampaignTracker":
        from repro.eval.figures import PersistenceDay

        config_data = data.get("config", {})
        tracker = cls(
            TrackerConfig(
                server_jaccard=float(config_data.get("server_jaccard", 0.3)),  # type: ignore[union-attr]
                client_jaccard=float(config_data.get("client_jaccard", 0.5)),  # type: ignore[union-attr]
                match_clients=bool(config_data.get("match_clients", True)),  # type: ignore[union-attr]
                max_gap_days=int(config_data.get("max_gap_days", 2)),  # type: ignore[union-attr]
            )
        )
        tracker._next_id = int(data.get("next_id", 1))  # type: ignore[arg-type]
        last_day = data.get("last_day")
        tracker._last_day = None if last_day is None else int(last_day)  # type: ignore[arg-type]
        tracker._seen_servers = set(data.get("seen_servers", ()))  # type: ignore[arg-type]
        tracker._seen_clients = set(data.get("seen_clients", ()))  # type: ignore[arg-type]
        for entry in data.get("campaigns", ()):  # type: ignore[union-attr]
            campaign = TrackedCampaign.from_dict(entry)  # type: ignore[arg-type]
            tracker._campaigns[campaign.uid] = campaign
        tracker._persistence = [
            PersistenceDay(
                day=int(entry["day"]),  # type: ignore[arg-type, index]
                old_servers=int(entry["old_servers"]),  # type: ignore[arg-type, index]
                new_servers_old_clients=int(entry["new_servers_old_clients"]),  # type: ignore[arg-type, index]
                new_servers_new_clients=int(entry["new_servers_new_clients"]),  # type: ignore[arg-type, index]
            )
            for entry in data.get("persistence", ())  # type: ignore[union-attr]
        ]
        return tracker
