"""JSON checkpoints for the streaming engine.

A checkpoint freezes a :class:`~repro.stream.engine.StreamingSmash` —
its rolling window (per-day traces and oracle sidecars) and its
:class:`~repro.stream.tracker.CampaignTracker` state — so a multi-day
stream killed mid-week resumes with identical identities, persistence
series and window contents.  The :class:`~repro.config.SmashConfig` and
alert sinks are process-level wiring, not stream state; pass the same
ones to :func:`load_checkpoint` that the original engine used.

Writes are atomic (temp file + rename) so a crash during ``save``
never corrupts the previous checkpoint.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.config import SmashConfig
from repro.errors import CheckpointError
from repro.stream.alerts import AlertSink
from repro.stream.engine import StreamingSmash

#: Bump on any incompatible change to the checkpoint layout.
CHECKPOINT_VERSION = 1


def save_checkpoint(engine: StreamingSmash, path: str | Path) -> Path:
    """Atomically write *engine*'s state to *path*; returns the path."""
    path = Path(path)
    payload = {
        "format": "repro.stream.checkpoint",
        "version": CHECKPOINT_VERSION,
        "state": engine.state_dict(),
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(json.dumps(payload, sort_keys=True) + "\n")
    os.replace(tmp, path)
    return path


def load_checkpoint(
    path: str | Path,
    config: SmashConfig | None = None,
    sinks: tuple[AlertSink, ...] = (),
) -> StreamingSmash:
    """Rebuild an engine from a checkpoint written by :func:`save_checkpoint`."""
    path = Path(path)
    if not path.exists():
        raise CheckpointError(f"no checkpoint at {path}")
    try:
        payload = json.loads(path.read_text())
    except json.JSONDecodeError as error:
        raise CheckpointError(f"corrupt checkpoint {path}: {error}") from error
    if not isinstance(payload, dict) or payload.get("format") != "repro.stream.checkpoint":
        raise CheckpointError(f"{path} is not a streaming checkpoint")
    version = payload.get("version")
    if version != CHECKPOINT_VERSION:
        raise CheckpointError(
            f"checkpoint version {version!r} unsupported "
            f"(this build reads version {CHECKPOINT_VERSION})"
        )
    try:
        return StreamingSmash.from_state_dict(payload["state"], config=config, sinks=sinks)
    except (KeyError, TypeError, ValueError) as error:
        raise CheckpointError(f"malformed checkpoint {path}: {error}") from error
