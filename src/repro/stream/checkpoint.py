"""JSON checkpoints for the streaming engine.

A checkpoint freezes a :class:`~repro.stream.engine.StreamingSmash` —
its rolling window (per-day traces and oracle sidecars) and its
:class:`~repro.stream.tracker.CampaignTracker` state — so a multi-day
stream killed mid-week resumes with identical identities, persistence
series and window contents.  The :class:`~repro.config.SmashConfig` and
alert sinks are process-level wiring, not stream state; pass the same
ones to :func:`load_checkpoint` that the original engine used.

Engines with a :class:`~repro.stream.store.TraceStore` attached write
*metadata* checkpoints (version 2): the window serialises as per-day
``(day, digest)`` store references instead of embedded traces, so the
file stays a few KB however long the window is.  :func:`load_checkpoint`
reopens the store recorded in the checkpoint automatically, or takes an
explicit ``store``/``store_dir`` when the store has moved.  Version-1
checkpoints (fully inline windows) still load.

Writes are atomic (temp file + rename) so a crash during ``save``
never corrupts the previous checkpoint.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.config import SmashConfig
from repro.errors import CheckpointError, StreamError
from repro.stream.alerts import AlertSink
from repro.stream.engine import StreamingSmash
from repro.stream.scoring import AlertPolicy, CampaignScorer, EvidenceSource, ScorerConfig
from repro.stream.store import TraceStore

#: Bump on any incompatible change to the checkpoint layout.  Version 2
#: added store-referenced windows; version-1 (inline) payloads are a
#: subset and remain readable.
CHECKPOINT_VERSION = 2

_READABLE_VERSIONS = frozenset({1, CHECKPOINT_VERSION})


def save_checkpoint(engine: StreamingSmash, path: str | Path) -> Path:
    """Atomically write *engine*'s state to *path*; returns the path.

    Storeless engines produce a payload that is byte-compatible with
    version 1, and are stamped as such so older builds can still resume
    them; only store-referenced windows need version 2.
    """
    path = Path(path)
    payload = {
        "format": "repro.stream.checkpoint",
        "version": CHECKPOINT_VERSION if engine.store is not None else 1,
        "state": engine.state_dict(),
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(json.dumps(payload, sort_keys=True) + "\n")
    os.replace(tmp, path)
    engine.metrics.gauge(
        "smash_checkpoint_bytes", "Size of the most recently written checkpoint."
    ).set(path.stat().st_size)
    return path


def load_checkpoint(
    path: str | Path,
    config: SmashConfig | None = None,
    sinks: tuple[AlertSink, ...] = (),
    store: TraceStore | None = None,
    store_dir: str | Path | None = None,
    incremental: bool | None = None,
    evidence: tuple[EvidenceSource, ...] = (),
    policy: AlertPolicy | None = None,
    scorer: CampaignScorer | ScorerConfig | None = None,
    metrics=None,
) -> StreamingSmash:
    """Rebuild an engine from a checkpoint written by :func:`save_checkpoint`.

    For store-referenced checkpoints, *store*/*store_dir* override the
    store root recorded in the checkpoint (use when the store moved);
    with neither given, the recorded root is reopened.  A missing store
    or a missing/corrupt partition raises
    :class:`~repro.errors.StreamError`.

    Like sinks, *evidence* sources are process wiring: pass the same
    ones the original engine used and each gets its accumulated hits
    restored by name; the checkpointed :class:`AlertPolicy` applies
    unless an explicit *policy* overrides it.
    """
    path = Path(path)
    if not path.exists():
        raise CheckpointError(f"no checkpoint at {path}")
    if store is not None and store_dir is not None:
        raise CheckpointError("pass either store or store_dir, not both")
    if store_dir is not None:
        store = TraceStore(store_dir)
    try:
        payload = json.loads(path.read_text())
    except json.JSONDecodeError as error:
        raise CheckpointError(f"corrupt checkpoint {path}: {error}") from error
    if not isinstance(payload, dict) or payload.get("format") != "repro.stream.checkpoint":
        raise CheckpointError(f"{path} is not a streaming checkpoint")
    version = payload.get("version")
    if version not in _READABLE_VERSIONS:
        raise CheckpointError(
            f"checkpoint version {version!r} unsupported (this build reads "
            f"versions {sorted(_READABLE_VERSIONS)})"
        )
    try:
        return StreamingSmash.from_state_dict(
            payload["state"],
            config=config,
            sinks=sinks,
            store=store,
            incremental=incremental,
            evidence=evidence,
            policy=policy,
            scorer=scorer,
            metrics=metrics,
        )
    except StreamError:
        raise
    except (KeyError, TypeError, ValueError) as error:
        raise CheckpointError(f"malformed checkpoint {path}: {error}") from error
