"""Domain-name substrate: public-suffix handling and SLD aggregation."""

from repro.domains.publicsuffix import PublicSuffixList, DEFAULT_SUFFIXES
from repro.domains.names import (
    is_ip_address,
    normalize_server_name,
    second_level_domain,
)

__all__ = [
    "DEFAULT_SUFFIXES",
    "PublicSuffixList",
    "is_ip_address",
    "normalize_server_name",
    "second_level_domain",
]
