"""Server-name normalisation.

The paper treats "servers" as both IP addresses and domain names
(Section I, footnote 1).  Preprocessing aggregates domain names to their
second-level domain while leaving raw IP addresses untouched.
"""

from __future__ import annotations

import ipaddress

from repro.domains.publicsuffix import PublicSuffixList, default_psl


def is_ip_address(server: str) -> bool:
    """True when *server* is a literal IPv4/IPv6 address.

    The common case by far is a domain name, and ``ipaddress.ip_address``
    rejects those by raising — an expensive way to say no.  A textual
    IPv4 address always starts with a digit and a textual IPv6 address
    always contains a colon, so anything failing both screens is a
    domain, no exception required.
    """
    if not server:
        return False
    if ":" not in server and not server[0].isdigit():
        return False
    try:
        ipaddress.ip_address(server)
    except ValueError:
        return False
    return True


def second_level_domain(domain: str, psl: PublicSuffixList | None = None) -> str:
    """Aggregate *domain* to its registrable (second-level) domain.

    Falls back to the last two labels when no public suffix matches, and to
    the raw name for single-label hosts and bare suffixes.

    >>> second_level_domain("img3.fbcdn.net")
    'fbcdn.net'
    >>> second_level_domain("eu-west.compute.amazonaws.com")
    'amazonaws.com'
    """
    psl = psl or default_psl()
    cleaned = domain.strip().strip(".").lower()
    if not cleaned:
        raise ValueError("empty domain name")
    registrable = psl.registrable_domain(cleaned)
    if registrable is not None:
        return registrable
    labels = cleaned.split(".")
    if len(labels) >= 2:
        return ".".join(labels[-2:])
    return cleaned


def normalize_server_name(server: str, psl: PublicSuffixList | None = None) -> str:
    """Normalise a server identifier for SMASH processing.

    IP addresses are returned verbatim; domain names are lower-cased and
    aggregated to their second-level domain.
    """
    cleaned = server.strip().lower()
    if not cleaned:
        raise ValueError("empty server name")
    if is_ip_address(cleaned):
        return cleaned
    return second_level_domain(cleaned, psl)
