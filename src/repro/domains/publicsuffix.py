"""A small public-suffix list implementation.

The paper aggregates fully-qualified domain names to their second-level
domain ("a.xyz.com and b.xyz.com both belong to xyz.com").  Doing that
correctly requires knowing *effective* top-level domains: ``foo.co.uk``
must aggregate to ``foo.co.uk``, not ``co.uk``, and the Zeus case study in
the paper (Table X) lives under the ``cz.cc`` free-hosting suffix, where
each ``*.cz.cc`` registrant is a distinct organisation.

We embed a compact suffix list sufficient for the synthetic traces and for
realistic operation; the full Mozilla list can be loaded with
:meth:`PublicSuffixList.from_lines` at runtime if available.
"""

from __future__ import annotations

from collections.abc import Iterable

#: A compact but realistic slice of the public-suffix list.  Includes the
#: multi-label suffixes exercised by the paper's case studies (``cz.cc``)
#: and common country-code second-level registrations.
DEFAULT_SUFFIXES: frozenset[str] = frozenset(
    {
        # Generic TLDs.
        "com", "net", "org", "info", "biz", "edu", "gov", "mil", "int",
        "name", "pro", "aero", "coop", "museum", "xyz", "top", "site",
        "online", "club", "io",
        # Country codes used by the paper's examples and our scenarios.
        "it", "sk", "nl", "cz", "uk", "de", "fr", "es", "pl", "ru", "cn",
        "jp", "kr", "br", "in", "au", "ca", "us", "ch", "se", "no", "tr",
        "cc", "tv", "ws", "su", "me", "eu", "ly", "to",
        # Effective second-level suffixes.
        "co.uk", "org.uk", "ac.uk", "gov.uk", "me.uk",
        "com.au", "net.au", "org.au",
        "com.br", "net.br", "org.br",
        "com.cn", "net.cn", "org.cn",
        "co.jp", "ne.jp", "or.jp",
        "co.kr", "or.kr",
        "co.in", "net.in", "org.in",
        "com.tr", "net.tr",
        "com.ru", "net.ru", "org.ru",
        # Free/dynamic hosting suffixes behaving like TLDs (paper Table X
        # uses *.cz.cc; Section VI discusses dynamic DNS).
        "cz.cc", "co.cc", "cu.cc", "uni.cc",
        "dyndns.org", "no-ip.org", "no-ip.biz", "hopto.org",
    }
)


class PublicSuffixList:
    """Longest-match public-suffix lookup.

    The matcher is intentionally simple: it supports exact suffix entries
    (no wildcard/exception rules), which covers the suffixes used by this
    repository and keeps behaviour easy to reason about in tests.
    """

    def __init__(self, suffixes: Iterable[str] = DEFAULT_SUFFIXES) -> None:
        cleaned = {self._clean(s) for s in suffixes}
        cleaned.discard("")
        if not cleaned:
            raise ValueError("suffix list must not be empty")
        self._suffixes = frozenset(cleaned)
        self._max_labels = max(s.count(".") + 1 for s in self._suffixes)

    @staticmethod
    def _clean(suffix: str) -> str:
        return suffix.strip().strip(".").lower()

    @classmethod
    def from_lines(cls, lines: Iterable[str]) -> "PublicSuffixList":
        """Build a list from ``public_suffix_list.dat``-style lines.

        Comment (``//``) and empty lines are skipped; wildcard and exception
        rules are skipped as unsupported.
        """
        suffixes = []
        for line in lines:
            entry = line.strip()
            if not entry or entry.startswith("//"):
                continue
            if entry.startswith(("*", "!")):
                continue
            suffixes.append(entry)
        return cls(suffixes)

    @property
    def suffixes(self) -> frozenset[str]:
        return self._suffixes

    def public_suffix(self, domain: str) -> str | None:
        """Return the longest matching public suffix of *domain*, or None.

        A domain equal to a suffix has that suffix (``cz.cc`` -> ``cz.cc``).
        """
        labels = self._clean(domain).split(".")
        if labels == [""]:
            return None
        # Try longest candidate suffixes first.
        for take in range(min(self._max_labels, len(labels)), 0, -1):
            candidate = ".".join(labels[-take:])
            if candidate in self._suffixes:
                return candidate
        return None

    def registrable_domain(self, domain: str) -> str | None:
        """Return the registrable ("second-level") domain of *domain*.

        This is the public suffix plus one label.  Returns ``None`` when the
        domain *is* a bare public suffix or no suffix matches (in which case
        callers typically fall back to the raw name).

        >>> psl = PublicSuffixList()
        >>> psl.registrable_domain("a.b.xyz.com")
        'xyz.com'
        >>> psl.registrable_domain("4k0t155m.cz.cc")
        '4k0t155m.cz.cc'
        """
        cleaned = self._clean(domain)
        suffix = self.public_suffix(cleaned)
        if suffix is None:
            return None
        if cleaned == suffix:
            return None
        suffix_labels = suffix.count(".") + 1
        labels = cleaned.split(".")
        if len(labels) < suffix_labels + 1:
            return None
        return ".".join(labels[-(suffix_labels + 1):])


_DEFAULT_PSL = PublicSuffixList()


def default_psl() -> PublicSuffixList:
    """The module-level default list built from :data:`DEFAULT_SUFFIXES`."""
    return _DEFAULT_PSL
