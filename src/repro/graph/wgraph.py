"""A weighted undirected graph, integer-indexed with string-friendly labels.

This is the data structure underneath every similarity dimension: nodes
are servers, edge weights are similarity scores.  The public API speaks
node *labels* (strings in the pipeline), but the backend stores a dense
integer adjacency — ``_labels[i]`` names node ``i`` and ``_adj[i]`` maps
neighbour ids to weights — so the hot consumers can work on small ints:

* builders insert nodes pre-sorted and edges in ascending id order, which
  the graph tracks with a *canonical* flag;
* :func:`~repro.graph.louvain.louvain_communities` consumes the indexed
  adjacency of a canonical graph directly (via :meth:`louvain_view`),
  with no per-call re-indexing or re-sorting;
* :meth:`density_of` measures induced-subgraph density (the ASH weight of
  eq. 9) without materialising the subgraph.

Insertion order is preserved exactly as the label-keyed implementation
preserved it (ids mirror insertion; per-row neighbour order mirrors edge
insertion), so every float accumulation that iterates the graph —
modularity, Louvain degrees — visits weights in the same order and the
outputs stay byte-identical.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Iterator

from repro.errors import GraphError

Node = Hashable


def node_sort_key(node: Node) -> str:
    """Canonical sort key for graph nodes.

    ``repr`` is total and stable across processes for the label types the
    pipeline uses (strings, ints, tuples of those), unlike ``hash`` which
    varies with ``PYTHONHASHSEED``.  Every place that materialises a node
    *set* into an iteration order sorts with this key, so graph contents —
    not interpreter hash state — determine downstream behaviour.
    """
    return repr(node)


def canonical_nodes(nodes: Iterable[Node]) -> list[Node]:
    """Sort *nodes* into the canonical deterministic order."""
    return sorted(nodes, key=node_sort_key)


class WeightedGraph:
    """Undirected graph with non-negative edge weights and optional self-loops.

    Adding an edge twice accumulates the weight, which is convenient when
    building similarity graphs incrementally.
    """

    __slots__ = (
        "_labels",
        "_index",
        "_adj",
        "_total_weight",
        "_canonical",
        "_last_key",
        "_num_loops",
        "_has_nonpositive",
        "build_stats",
    )

    def __init__(self) -> None:
        self._labels: list[Node] = []
        self._index: dict[Node, int] = {}
        self._adj: list[dict[int, float]] = []
        self._total_weight: float = 0.0  # sum of edge weights (each edge once)
        #: True while nodes were appended in canonical ``node_sort_key``
        #: order and every row's neighbour ids were inserted ascending —
        #: the precondition for handing ``_adj`` to Louvain untouched.
        self._canonical: bool = True
        self._last_key: str | None = None
        self._num_loops: int = 0
        self._has_nonpositive: bool = False
        #: Builder-attached diagnostics (candidate-pair accounting etc.);
        #: purely informational, never read by the algorithms.
        self.build_stats: dict[str, object] = {}

    # -- construction --------------------------------------------------------------

    @classmethod
    def from_sorted_labels(cls, labels: Iterable[Node]) -> "WeightedGraph":
        """Graph with nodes pre-inserted from an already-sorted iterable."""
        graph = cls()
        for label in labels:
            graph.add_node(label)
        return graph

    def add_node(self, node: Node) -> None:
        if node in self._index:
            return
        if self._canonical:
            key = node_sort_key(node)
            if self._last_key is not None and key < self._last_key:
                self._canonical = False
            self._last_key = key
        self._index[node] = len(self._labels)
        self._labels.append(node)
        self._adj.append({})

    def add_edge(self, u: Node, v: Node, weight: float = 1.0) -> None:
        """Add (or reinforce) the undirected edge ``{u, v}``.

        Self-loops are allowed and count once toward the total weight; their
        full weight contributes to the node degree (the 2x convention is
        handled inside the modularity computation).
        """
        iu = self._index.get(u)
        if iu is None:
            self.add_node(u)
            iu = self._index[u]
        iv = self._index.get(v)
        if iv is None:
            self.add_node(v)
            iv = self._index[v]
        self.add_edge_ids(iu, iv, weight)

    def add_edge_ids(self, iu: int, iv: int, weight: float = 1.0) -> None:
        """``add_edge`` addressed by node ids (the builders' fast path)."""
        if weight < 0:
            raise GraphError(f"edge weight must be non-negative, got {weight}")
        row_u = self._adj[iu]
        if iu == iv:
            if iu not in row_u:
                self._num_loops += 1
            stored = row_u.get(iu, 0.0) + weight
            row_u[iu] = stored
        else:
            row_v = self._adj[iv]
            existing = row_u.get(iv)
            if existing is None:
                if self._canonical and (
                    (row_u and next(reversed(row_u)) > iv)
                    or (row_v and next(reversed(row_v)) > iu)
                ):
                    self._canonical = False
                stored = weight
                row_u[iv] = weight
                row_v[iu] = weight
            else:
                stored = existing + weight
                row_u[iv] = stored
                row_v[iu] = stored
        if stored <= 0.0:
            self._has_nonpositive = True
        self._total_weight += weight

    def add_sorted_edges(
        self, edges: Iterable[tuple[int, int, float]]
    ) -> None:
        """Bulk ``add_edge_ids`` for builder output, checks elided.

        The caller guarantees what the dimension builders guarantee by
        construction: pairs are distinct, non-negative-weighted, with
        ``iu < iv``, and strictly ascending in ``(iu, iv)``.  Under those
        preconditions the per-edge canonical/loop tracking of
        :meth:`add_edge_ids` is a no-op, so this path skips it; the
        stored weights and the total-weight accumulation sequence are
        exactly what the one-at-a-time path produces.
        """
        adj = self._adj
        total = self._total_weight
        for iu, iv, weight in edges:
            adj[iu][iv] = weight
            adj[iv][iu] = weight
            if weight <= 0.0:
                self._has_nonpositive = True
            total += weight
        self._total_weight = total

    def remove_node(self, node: Node) -> None:
        target = self._index.get(node)
        if target is None:
            raise GraphError(f"node not in graph: {node!r}")
        for neighbor, weight in self._adj[target].items():
            self._total_weight -= weight
            if neighbor != target:
                del self._adj[neighbor][target]
            else:
                self._num_loops -= 1
        # Compact the index space: ids above the removed node shift down
        # by one, preserving relative (and therefore canonical) order.
        del self._labels[target]
        del self._adj[target]
        self._index = {label: i for i, label in enumerate(self._labels)}
        self._adj = [
            {(j - 1 if j > target else j): w for j, w in row.items()}
            for row in self._adj
        ]
        if self._canonical:
            self._last_key = (
                node_sort_key(self._labels[-1]) if self._labels else None
            )

    # -- id-level queries ----------------------------------------------------------

    def id_of(self, node: Node) -> int:
        """Dense id of *node*; raises :class:`GraphError` when absent."""
        try:
            return self._index[node]
        except KeyError:
            raise GraphError(f"node not in graph: {node!r}") from None

    def label_of(self, index: int) -> Node:
        return self._labels[index]

    def louvain_view(self) -> tuple[list[Node], list[dict[int, float]]] | None:
        """The indexed adjacency, when Louvain may consume it directly.

        Returns ``(labels, adjacency)`` — live internals, callers must
        not mutate — iff the graph was built canonically (node ids in
        ``node_sort_key`` order, rows ascending), has no self-loops and
        no non-positive edge weights.  Otherwise ``None``, and the caller
        falls back to the re-index + re-sort bridge, which handles every
        graph shape (and is exactly the pre-interning behaviour).
        """
        if self._canonical and self._num_loops == 0 and not self._has_nonpositive:
            return self._labels, self._adj
        return None

    # -- queries -------------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        """Structural equality: same nodes, edges and weights.

        Insertion order is ignored, so two graphs built by different
        executions compare equal exactly when they describe the same
        weighted topology.
        """
        if not isinstance(other, WeightedGraph):
            return NotImplemented
        return self._label_adjacency() == other._label_adjacency()

    __hash__ = None  # mutable container; unhashable like list/dict

    def _label_adjacency(self) -> dict[Node, dict[Node, float]]:
        labels = self._labels
        return {
            labels[i]: {labels[j]: w for j, w in row.items()}
            for i, row in enumerate(self._adj)
        }

    def __contains__(self, node: Node) -> bool:
        return node in self._index

    def __len__(self) -> int:
        return len(self._labels)

    def __iter__(self) -> Iterator[Node]:
        return iter(self._labels)

    @property
    def nodes(self) -> list[Node]:
        return list(self._labels)

    def edges(self) -> Iterator[tuple[Node, Node, float]]:
        """Yield each undirected edge once as ``(u, v, weight)``.

        A pair is yielded from the endpoint with the smaller id — the row
        where it was scanned first in the label-keyed implementation — so
        the sequence (and with it every downstream float accumulation)
        matches the old first-occurrence order without a seen-set.
        """
        labels = self._labels
        for i, row in enumerate(self._adj):
            label = labels[i]
            for j, weight in row.items():
                if j >= i:
                    yield label, labels[j], weight

    def num_edges(self) -> int:
        """Number of undirected edges (self-loops count once)."""
        entries = sum(len(row) for row in self._adj)
        return (entries - self._num_loops) // 2 + self._num_loops

    def neighbors(self, node: Node) -> dict[Node, float]:
        """Neighbor -> weight mapping (includes the node itself for loops)."""
        index = self._index.get(node)
        if index is None:
            raise GraphError(f"node not in graph: {node!r}")
        labels = self._labels
        return {labels[j]: w for j, w in self._adj[index].items()}

    def has_edge(self, u: Node, v: Node) -> bool:
        iu = self._index.get(u)
        if iu is None:
            return False
        iv = self._index.get(v)
        return iv is not None and iv in self._adj[iu]

    def edge_weight(self, u: Node, v: Node) -> float:
        """Weight of edge ``{u, v}``; 0.0 when absent."""
        iu = self._index.get(u)
        if iu is None:
            return 0.0
        iv = self._index.get(v)
        if iv is None:
            return 0.0
        return self._adj[iu].get(iv, 0.0)

    def degree(self, node: Node) -> float:
        """Weighted degree; a self-loop contributes twice its weight."""
        index = self._index.get(node)
        if index is None:
            raise GraphError(f"node not in graph: {node!r}")
        row = self._adj[index]
        return sum(row.values()) + row.get(index, 0.0)

    @property
    def total_weight(self) -> float:
        """Sum of all edge weights, each undirected edge counted once."""
        return self._total_weight

    # -- derived graphs --------------------------------------------------------------

    def subgraph(self, nodes: Iterable[Node]) -> "WeightedGraph":
        """Induced subgraph on *nodes* (missing nodes are ignored).

        Nodes are inserted in canonical order so the subgraph's iteration
        order depends only on its contents, never on the hash order of the
        *nodes* set handed in (communities are usually frozensets).
        """
        index = self._index
        keep = {index[node] for node in nodes if node in index}
        if self._canonical:
            ordered = sorted(keep)
        else:
            labels = self._labels
            ordered = sorted(keep, key=lambda i: node_sort_key(labels[i]))
        sub = WeightedGraph()
        for i in ordered:
            sub.add_node(self._labels[i])
        local = {i: k for k, i in enumerate(ordered)}
        sub_adj = sub._adj
        for i in ordered:
            li = local[i]
            row_li = sub_adj[li]
            for j, weight in self._adj[i].items():
                lj = local.get(j)
                if lj is None:
                    continue
                if i == j or lj not in row_li:
                    sub.add_edge_ids(li, lj, weight)
        return sub

    def density(self) -> float:
        """Edge density ``2|e| / (|v| (|v|-1))`` used as the ASH weight.

        Matches Section III-C: the number of edges in the group over the
        number of edges of the complete graph on the same vertices.
        Self-loops are excluded.  A graph with fewer than two nodes has
        density 0 (a single server cannot be "well connected").
        """
        n = len(self._labels)
        if n < 2:
            return 0.0
        edges = (sum(len(row) for row in self._adj) - self._num_loops) // 2
        return 2.0 * edges / (n * (n - 1))

    def density_of(self, nodes: Iterable[Node]) -> float:
        """Density of the induced subgraph, without materialising it.

        Exactly ``self.subgraph(nodes).density()`` — the edge count is the
        same integer — at a fraction of the cost; correlation measures
        every intersection-ASH weight (eq. 9) through this.
        """
        index = self._index
        members = {index[node] for node in nodes if node in index}
        n = len(members)
        if n < 2:
            return 0.0
        adj = self._adj
        edges = 0
        for i in members:
            row = adj[i]
            if len(row) <= n:
                shared = sum(1 for j in row if j in members)
            else:
                shared = sum(1 for j in members if j in row)
            if i in row:
                shared -= 1
            edges += shared
        edges //= 2
        return 2.0 * edges / (n * (n - 1))
