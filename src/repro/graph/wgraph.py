"""A weighted undirected graph with string-friendly node labels.

This is the data structure underneath every similarity dimension: nodes are
servers, edge weights are similarity scores.  It is a plain adjacency-map
implementation — simple, deterministic, and fast enough for the graph sizes
SMASH produces after preprocessing (tens of thousands of nodes).
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Iterator

from repro.errors import GraphError

Node = Hashable


def node_sort_key(node: Node) -> str:
    """Canonical sort key for graph nodes.

    ``repr`` is total and stable across processes for the label types the
    pipeline uses (strings, ints, tuples of those), unlike ``hash`` which
    varies with ``PYTHONHASHSEED``.  Every place that materialises a node
    *set* into an iteration order sorts with this key, so graph contents —
    not interpreter hash state — determine downstream behaviour.
    """
    return repr(node)


def canonical_nodes(nodes: Iterable[Node]) -> list[Node]:
    """Sort *nodes* into the canonical deterministic order."""
    return sorted(nodes, key=node_sort_key)


class WeightedGraph:
    """Undirected graph with non-negative edge weights and optional self-loops.

    Adding an edge twice accumulates the weight, which is convenient when
    building similarity graphs incrementally.
    """

    def __init__(self) -> None:
        self._adj: dict[Node, dict[Node, float]] = {}
        self._total_weight: float = 0.0  # sum of edge weights (each edge once)

    # -- construction --------------------------------------------------------------

    def add_node(self, node: Node) -> None:
        self._adj.setdefault(node, {})

    def add_edge(self, u: Node, v: Node, weight: float = 1.0) -> None:
        """Add (or reinforce) the undirected edge ``{u, v}``.

        Self-loops are allowed and count once toward the total weight; their
        full weight contributes to the node degree (the 2x convention is
        handled inside the modularity computation).
        """
        if weight < 0:
            raise GraphError(f"edge weight must be non-negative, got {weight}")
        self.add_node(u)
        self.add_node(v)
        self._adj[u][v] = self._adj[u].get(v, 0.0) + weight
        if u != v:
            self._adj[v][u] = self._adj[v].get(u, 0.0) + weight
        self._total_weight += weight

    def remove_node(self, node: Node) -> None:
        if node not in self._adj:
            raise GraphError(f"node not in graph: {node!r}")
        for neighbor, weight in list(self._adj[node].items()):
            self._total_weight -= weight
            if neighbor != node:
                del self._adj[neighbor][node]
        del self._adj[node]

    # -- queries -------------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        """Structural equality: same nodes, edges and weights.

        Insertion order is ignored (``dict`` equality is order-blind), so
        two graphs built by different executions compare equal exactly when
        they describe the same weighted topology.
        """
        if not isinstance(other, WeightedGraph):
            return NotImplemented
        return self._adj == other._adj

    __hash__ = None  # mutable container; unhashable like list/dict

    def __contains__(self, node: Node) -> bool:
        return node in self._adj

    def __len__(self) -> int:
        return len(self._adj)

    def __iter__(self) -> Iterator[Node]:
        return iter(self._adj)

    @property
    def nodes(self) -> list[Node]:
        return list(self._adj)

    def edges(self) -> Iterator[tuple[Node, Node, float]]:
        """Yield each undirected edge once as ``(u, v, weight)``."""
        seen: set[frozenset] = set()
        for u, neighbors in self._adj.items():
            for v, weight in neighbors.items():
                pair = frozenset((u, v))
                if pair in seen:
                    continue
                seen.add(pair)
                yield u, v, weight

    def num_edges(self) -> int:
        """Number of undirected edges (self-loops count once)."""
        loops = sum(1 for node in self._adj if node in self._adj[node])
        non_loops = (sum(len(n) for n in self._adj.values()) - loops) // 2
        return non_loops + loops

    def neighbors(self, node: Node) -> dict[Node, float]:
        """Neighbor -> weight mapping (includes the node itself for loops)."""
        if node not in self._adj:
            raise GraphError(f"node not in graph: {node!r}")
        return dict(self._adj[node])

    def has_edge(self, u: Node, v: Node) -> bool:
        return u in self._adj and v in self._adj[u]

    def edge_weight(self, u: Node, v: Node) -> float:
        """Weight of edge ``{u, v}``; 0.0 when absent."""
        if u not in self._adj:
            return 0.0
        return self._adj[u].get(v, 0.0)

    def degree(self, node: Node) -> float:
        """Weighted degree; a self-loop contributes twice its weight."""
        if node not in self._adj:
            raise GraphError(f"node not in graph: {node!r}")
        total = sum(self._adj[node].values())
        loop = self._adj[node].get(node, 0.0)
        return total + loop

    @property
    def total_weight(self) -> float:
        """Sum of all edge weights, each undirected edge counted once."""
        return self._total_weight

    # -- derived graphs --------------------------------------------------------------

    def subgraph(self, nodes: Iterable[Node]) -> "WeightedGraph":
        """Induced subgraph on *nodes* (missing nodes are ignored).

        Nodes are inserted in canonical order so the subgraph's iteration
        order depends only on its contents, never on the hash order of the
        *nodes* set handed in (communities are usually frozensets).
        """
        keep = {node for node in nodes if node in self._adj}
        ordered = canonical_nodes(keep)
        sub = WeightedGraph()
        for node in ordered:
            sub.add_node(node)
        for u in ordered:
            for v, weight in self._adj[u].items():
                if v in keep and (u == v or not sub.has_edge(u, v)):
                    sub.add_edge(u, v, weight)
        return sub

    def density(self) -> float:
        """Edge density ``2|e| / (|v| (|v|-1))`` used as the ASH weight.

        Matches Section III-C: the number of edges in the group over the
        number of edges of the complete graph on the same vertices.
        Self-loops are excluded.  A graph with fewer than two nodes has
        density 0 (a single server cannot be "well connected").
        """
        n = len(self._adj)
        if n < 2:
            return 0.0
        edges = sum(
            1
            for u, neighbors in self._adj.items()
            for v in neighbors
            if u != v
        ) // 2
        return 2.0 * edges / (n * (n - 1))
