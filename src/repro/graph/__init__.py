"""Graph substrate: weighted graphs, modularity, Louvain communities."""

from repro.graph.wgraph import WeightedGraph
from repro.graph.modularity import modularity
from repro.graph.louvain import LouvainResult, louvain_communities
from repro.graph.components import connected_components

__all__ = [
    "LouvainResult",
    "WeightedGraph",
    "connected_components",
    "louvain_communities",
    "modularity",
]
