"""Graph substrate: weighted graphs, modularity, Louvain communities.

Two interchangeable graph backends live here: the pure-python
:class:`WeightedGraph` (the reference implementation) and the
numpy-array-backed :class:`CsrGraph` (the fast path, used automatically
when numpy is available).  They produce byte-identical pipeline output;
:func:`new_graph` picks one from the ``use_csr`` config flag.
"""

from repro.graph.wgraph import WeightedGraph
from repro.graph.csr import HAVE_NUMPY, CsrGraph, new_graph, resolve_use_csr
from repro.graph.modularity import modularity
from repro.graph.louvain import LouvainResult, louvain_communities
from repro.graph.components import connected_components

__all__ = [
    "HAVE_NUMPY",
    "CsrGraph",
    "LouvainResult",
    "WeightedGraph",
    "connected_components",
    "louvain_communities",
    "modularity",
    "new_graph",
    "resolve_use_csr",
]
