"""Louvain community detection (Blondel, Guillaume, Lambiotte, Lefebvre 2008).

This is the algorithm the paper uses for ASH extraction ([17] in the
references): it "automatically finds high modularity partitions of large
networks in short time".  The implementation follows the original
two-phase scheme:

1. **Local move** — repeatedly move each node to the neighbouring community
   with the largest positive modularity gain until no move improves Q.
2. **Aggregation** — collapse communities into super-nodes (preserving
   intra-community weight as self-loops) and repeat on the coarser graph.

The node visiting order is shuffled with a seeded RNG so results are both
randomised (as in the reference implementation) and reproducible.

Determinism
-----------
The run is a pure function of the graph's *contents* and the config seed,
independent of graph insertion order and of ``PYTHONHASHSEED``: nodes are
indexed in canonical sorted order and the integer adjacency lists are
sorted once per level, so the seeded shuffle, the neighbour-community
accumulation order, and therefore every equal-gain tie-break are fixed by
construction.

Index fast path
---------------
:class:`~repro.graph.wgraph.WeightedGraph` is integer-indexed internally;
when a graph reports (via ``louvain_view``) that its ids are already in
canonical order with ascending, loop-free, positive-weight rows — true
for every graph the dimension builders produce — the entry level consumes
the graph's adjacency directly, skipping the re-index/re-accumulate/
re-sort bridge entirely.  The bridge remains as the fallback for
arbitrary graphs and is byte-identical to the fast path on graphs where
both apply (same ids, same row order, same float accumulation order).
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Hashable
from dataclasses import dataclass

from repro.config import LouvainConfig
from repro.graph.modularity import modularity
from repro.graph.wgraph import WeightedGraph, canonical_nodes
from repro.util.rng import make_rng

Node = Hashable


@dataclass(frozen=True)
class LouvainResult:
    """Outcome of a Louvain run.

    Attributes
    ----------
    communities:
        The final partition as a list of frozensets of original nodes,
        sorted by decreasing size then lexicographic representative for
        determinism.
    partition:
        node -> community index into :attr:`communities`.
    modularity:
        Modularity Q of the final partition on the input graph.
    levels:
        Number of coarsening levels executed.
    moves:
        Total number of accepted node moves across all levels.
    sweeps:
        Total number of local-move sweeps executed across all levels.
    """

    communities: tuple[frozenset[Node], ...]
    partition: dict[Node, int]
    modularity: float
    levels: int
    moves: int = 0
    sweeps: int = 0

    def community_of(self, node: Node) -> frozenset[Node]:
        return self.communities[self.partition[node]]


class _Level:
    """One coarsening level: dense-int adjacency plus community bookkeeping."""

    def __init__(self, adjacency: list[dict[int, float]], loops: list[float]) -> None:
        self.adjacency = adjacency
        self.loops = loops  # self-loop weight per node (counted once)
        self.n = len(adjacency)
        # Weighted degree: neighbours + 2 * self-loop.
        self.degree = [
            sum(neigh.values()) + 2.0 * loops[i]
            for i, neigh in enumerate(adjacency)
        ]
        self.total_weight = (
            sum(sum(neigh.values()) for neigh in adjacency) / 2.0 + sum(loops)
        )
        self.community = list(range(self.n))
        # Sum of degrees per community.
        self.community_degree = list(self.degree)


def _local_move(level: _Level, config: LouvainConfig, rng) -> tuple[int, int]:
    """Phase 1: greedy node moves.  Returns ``(moves, sweeps)`` counts.

    The loop is the pipeline's single hottest region, so the invariants
    are hoisted (``m2 * total_weight`` is the same float every
    evaluation; ``community_degree[current]`` does not change while the
    node is detached) and the neighbour-community accumulation is
    inlined.  Every arithmetic operation, accumulation order and
    tie-break is exactly the original's — outputs are byte-identical.
    """
    m2 = 2.0 * level.total_weight
    if m2 == 0.0:
        return 0, 0
    total_weight = level.total_weight
    m2_total = m2 * total_weight
    adjacency = level.adjacency
    degrees = level.degree
    community_of = level.community
    community_degree = level.community_degree
    min_gain = config.min_modularity_gain
    moves = 0
    sweeps = 0
    order = list(range(level.n))
    for _ in range(config.max_sweeps):
        rng.shuffle(order)
        sweeps += 1
        moved_this_sweep = False
        for node in order:
            current = community_of[node]
            degree = degrees[node]
            # Total edge weight from `node` to each neighbouring
            # community, accumulated in row order (ascending neighbour
            # ids — the order that fixes every equal-gain tie-break).
            neighbor_weights: dict[int, float] = {}
            get_weight = neighbor_weights.get
            for neighbor, weight in adjacency[node].items():
                community = community_of[neighbor]
                seen = get_weight(community)
                neighbor_weights[community] = (
                    weight if seen is None else seen + weight
                )
            # Remove the node from its community for gain computation.
            community_degree[current] -= degree
            current_degree = community_degree[current]
            weight_to_current = get_weight(current, 0.0)
            best_community = current
            best_gain = 0.0
            for community, weight_to in neighbor_weights.items():
                if community == current:
                    continue  # gain 0.0 can never beat best_gain + min_gain
                # Delta-Q of moving `node` from `current` to `community`,
                # both evaluated with the node removed.
                gain = (weight_to - weight_to_current) / total_weight - (
                    degree * (community_degree[community] - current_degree)
                ) / m2_total
                if gain > best_gain + min_gain:
                    best_gain = gain
                    best_community = community
            community_of[node] = best_community
            community_degree[best_community] += degree
            if best_community != current:
                moved_this_sweep = True
                moves += 1
        if not moved_this_sweep:
            break
    return moves, sweeps


def _aggregate(level: _Level) -> tuple[_Level, list[int]]:
    """Phase 2: collapse communities into super-nodes.

    Returns the coarser level and the mapping node -> super-node index.
    """
    labels = sorted(set(level.community))
    relabel = {label: index for index, label in enumerate(labels)}
    mapping = [relabel[c] for c in level.community]
    n_coarse = len(labels)
    adjacency: list[dict[int, float]] = [defaultdict(float) for _ in range(n_coarse)]
    loops = [0.0] * n_coarse
    for node in range(level.n):
        cu = mapping[node]
        loops[cu] += level.loops[node]
        for neighbor, weight in level.adjacency[node].items():
            cv = mapping[neighbor]
            if cu == cv:
                if node < neighbor:
                    loops[cu] += weight
            else:
                adjacency[cu][cv] += weight
    # Keep the coarse adjacency lists in sorted-index order as well, so
    # every level inherits the entry level's order-independence.
    coarse = _Level([dict(sorted(neigh.items())) for neigh in adjacency], loops)
    return coarse, mapping


def louvain_communities(
    graph: WeightedGraph,
    config: LouvainConfig | None = None,
    use_index: bool = True,
) -> LouvainResult:
    """Run Louvain community detection on *graph*.

    Isolated nodes come back as singleton communities.  The empty graph
    yields an empty result.  ``use_index=False`` forces the rebuild
    bridge even on index-ready graphs (the pre-interning behaviour; the
    equivalence tests and the legacy benchmark core rely on it).
    """
    config = config or LouvainConfig()
    config.validate()
    rng = make_rng(config.seed)

    view = graph.louvain_view() if use_index else None
    if view is not None:
        # Fast path: the graph's ids are already canonical and its rows
        # ascending and loop-free, so its adjacency *is* the entry level.
        # `_Level` and `_aggregate` only read it; the labels are
        # snapshotted because callers may grow the graph afterwards.
        nodes, adjacency = list(view[0]), view[1]
        if not nodes:
            return LouvainResult(
                communities=(), partition={}, modularity=0.0, levels=0
            )
        loops = [0.0] * len(nodes)
    else:
        # Canonical node indexing: the integer id of a node depends only
        # on the node set, not on graph insertion order, so the seeded
        # shuffle visits the same servers in the same order on every run.
        nodes = canonical_nodes(graph.nodes)
        if not nodes:
            return LouvainResult(
                communities=(), partition={}, modularity=0.0, levels=0
            )
        index_of = {node: i for i, node in enumerate(nodes)}

        adjacency = [{} for _ in nodes]
        loops = [0.0] * len(nodes)
        for u, v, weight in graph.edges():
            if weight <= 0.0:
                continue
            if u == v:
                loops[index_of[u]] += weight
            else:
                iu, iv = index_of[u], index_of[v]
                adjacency[iu][iv] = adjacency[iu].get(iv, 0.0) + weight
                adjacency[iv][iu] = adjacency[iv].get(iu, 0.0) + weight
        # Sort each adjacency list by neighbour index: the iteration order
        # of `_local_move`'s neighbour-community accumulation (and with it
        # every equal-gain tie-break) becomes a function of the topology
        # alone.
        adjacency = [dict(sorted(neigh.items())) for neigh in adjacency]

    level = _Level(adjacency, loops)
    # membership[i] = community label of original node i on the current level.
    membership = list(range(len(nodes)))

    levels_run = 0
    total_moves = 0
    total_sweeps = 0
    for _ in range(config.max_levels):
        level_moves, level_sweeps = _local_move(level, config, rng)
        total_moves += level_moves
        total_sweeps += level_sweeps
        levels_run += 1
        coarse, mapping = _aggregate(level)
        # `mapping` already composes the community assignment with the
        # coarse relabeling, so one hop advances each original node.
        membership = [mapping[m] for m in membership]
        if not level_moves or coarse.n == level.n:
            level = coarse
            break
        level = coarse

    groups: dict[int, list[Node]] = defaultdict(list)
    for original_index, community in enumerate(membership):
        groups[community].append(nodes[original_index])
    community_sets = sorted(
        (frozenset(members) for members in groups.values()),
        key=lambda s: (-len(s), min(repr(x) for x in s)),
    )
    partition = {
        node: index
        for index, community in enumerate(community_sets)
        for node in community
    }
    q = modularity(graph, partition)
    return LouvainResult(
        communities=tuple(community_sets),
        partition=partition,
        modularity=q,
        levels=levels_run,
        moves=total_moves,
        sweeps=total_sweeps,
    )
