"""Louvain community detection (Blondel, Guillaume, Lambiotte, Lefebvre 2008).

This is the algorithm the paper uses for ASH extraction ([17] in the
references): it "automatically finds high modularity partitions of large
networks in short time".  The implementation follows the original
two-phase scheme:

1. **Local move** — repeatedly move each node to the neighbouring community
   with the largest positive modularity gain until no move improves Q.
2. **Aggregation** — collapse communities into super-nodes (preserving
   intra-community weight as self-loops) and repeat on the coarser graph.

The node visiting order is shuffled with a seeded RNG so results are both
randomised (as in the reference implementation) and reproducible.

Determinism
-----------
The run is a pure function of the graph's *contents* and the config seed,
independent of graph insertion order and of ``PYTHONHASHSEED``: nodes are
indexed in canonical sorted order and the integer adjacency lists are
sorted once per level, so the seeded shuffle, the neighbour-community
accumulation order, and therefore every equal-gain tie-break are fixed by
construction.

Index fast path
---------------
:class:`~repro.graph.wgraph.WeightedGraph` is integer-indexed internally;
when a graph reports (via ``louvain_view``) that its ids are already in
canonical order with ascending, loop-free, positive-weight rows — true
for every graph the dimension builders produce — the entry level consumes
the graph's adjacency directly, skipping the re-index/re-accumulate/
re-sort bridge entirely.  The bridge remains as the fallback for
arbitrary graphs and is byte-identical to the fast path on graphs where
both apply (same ids, same row order, same float accumulation order).
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Hashable
from dataclasses import dataclass

from repro.config import LouvainConfig
from repro.graph.csr import np as _np
from repro.graph.modularity import modularity
from repro.graph.wgraph import WeightedGraph, canonical_nodes
from repro.util.rng import make_rng

Node = Hashable

#: Degree at which the vector local-move path beats the scalar dict
#: walk.  Measured crossover (uniform-degree graphs, CPython 3.11 +
#: numpy 2.x): the per-node ``unique``/``bincount``/gather overhead only
#: amortises around average degree ~650, and the win stays marginal
#: below ~1000.  The CSR entry level is therefore engaged per *graph*
#: (max row degree >= this) and per *node* (row degree >= this) — both
#: paths compute bit-identical gains, so the threshold is purely a
#: performance knob.
_VECTOR_MIN_DEGREE = 640


@dataclass(frozen=True)
class LouvainResult:
    """Outcome of a Louvain run.

    Attributes
    ----------
    communities:
        The final partition as a list of frozensets of original nodes,
        sorted by decreasing size then lexicographic representative for
        determinism.
    partition:
        node -> community index into :attr:`communities`.
    modularity:
        Modularity Q of the final partition on the input graph.
    levels:
        Number of coarsening levels executed.
    moves:
        Total number of accepted node moves across all levels.
    sweeps:
        Total number of local-move sweeps executed across all levels.
    """

    communities: tuple[frozenset[Node], ...]
    partition: dict[Node, int]
    modularity: float
    levels: int
    moves: int = 0
    sweeps: int = 0

    def community_of(self, node: Node) -> frozenset[Node]:
        return self.communities[self.partition[node]]


class _Level:
    """One coarsening level: dense-int adjacency plus community bookkeeping."""

    def __init__(self, adjacency: list[dict[int, float]], loops: list[float]) -> None:
        self.adjacency = adjacency
        self.loops = loops  # self-loop weight per node (counted once)
        self.n = len(adjacency)
        # Weighted degree: neighbours + 2 * self-loop.
        self.degree = [
            sum(neigh.values()) + 2.0 * loops[i]
            for i, neigh in enumerate(adjacency)
        ]
        self.total_weight = (
            sum(sum(neigh.values()) for neigh in adjacency) / 2.0 + sum(loops)
        )
        self.community = list(range(self.n))
        # Sum of degrees per community.
        self.community_degree = list(self.degree)


class _CsrLevel:
    """Vectorised entry level over a graph's frozen CSR arrays.

    Holds the arrays for the vector gain path plus python-scalar mirrors
    (``tolist`` once per level) for the small-degree scalar path, and
    keeps the community bookkeeping in a synced list/array pair so both
    paths read identical floats.  Only ever the *entry* level: CSR
    graphs are loop-free, so the reference's ``loops`` interleaving is
    all exact no-op zero-adds and the vectorised sums reproduce the
    scalar accumulation bit for bit; aggregation returns an ordinary
    ``_Level`` for the coarse graphs (small, loop-carrying).
    """

    def __init__(self, view) -> None:
        indptr = view.indptr
        self.indices = view.indices
        self.weights = view.weights
        n = len(indptr) - 1
        self.n = n
        self.indptr_list = indptr.tolist()
        self.cols_list = self.indices.tolist()
        self.w_list = self.weights.tolist()
        if len(self.indices):
            self.rows = _np.repeat(
                _np.arange(n, dtype=_np.int64), _np.diff(indptr)
            )
            row_sums = _np.bincount(self.rows, weights=self.weights, minlength=n)
        else:
            self.rows = _np.zeros(0, dtype=_np.int64)
            row_sums = _np.zeros(n, dtype=_np.float64)
        # bincount accumulates each row's weights sequentially in slice
        # order — the reference's per-row ``sum(neigh.values())``.
        self.degree = row_sums.tolist()
        self.total_weight = sum(self.degree) / 2.0
        self.community = list(range(n))
        self.community_arr = _np.arange(n, dtype=_np.int64)
        self.community_degree = list(self.degree)
        self.community_degree_arr = row_sums.copy()


def _local_move_csr(
    level: _CsrLevel, config: LouvainConfig, rng
) -> tuple[int, int]:
    """Phase 1 over a CSR level; bit-identical to :func:`_local_move`.

    Per-node neighbor-community sums come from ``np.unique`` +
    ``np.bincount`` over the node's contiguous slice (sequential
    accumulation in slice order, like the dict walk), gains from one
    elementwise float64 expression (no fused operations, so each lane
    equals the scalar arithmetic), and the winning community from a
    scan in first-occurrence order — preserving the reference's strict
    ``gain > best_gain + min_gain`` tie-break, which an argmax would
    break.  Nodes below ``_VECTOR_MIN_DEGREE`` run the scalar walk on
    python mirrors of the same slices.
    """
    m2 = 2.0 * level.total_weight
    if m2 == 0.0:
        return 0, 0
    total_weight = level.total_weight
    m2_total = m2 * total_weight
    ip = level.indptr_list
    cols = level.cols_list
    wts = level.w_list
    indices_arr = level.indices
    weights_arr = level.weights
    community_of = level.community
    community_arr = level.community_arr
    community_degree = level.community_degree
    community_degree_arr = level.community_degree_arr
    degrees = level.degree
    min_gain = config.min_modularity_gain
    unique = _np.unique
    bincount = _np.bincount
    argsort = _np.argsort
    searchsorted = _np.searchsorted
    moves = 0
    sweeps = 0
    order = list(range(level.n))
    for _ in range(config.max_sweeps):
        rng.shuffle(order)
        sweeps += 1
        moved_this_sweep = False
        for node in order:
            current = community_of[node]
            degree = degrees[node]
            start = ip[node]
            end = ip[node + 1]
            if end - start < _VECTOR_MIN_DEGREE:
                neighbor_weights: dict[int, float] = {}
                get_weight = neighbor_weights.get
                for k in range(start, end):
                    community = community_of[cols[k]]
                    seen = get_weight(community)
                    weight = wts[k]
                    neighbor_weights[community] = (
                        weight if seen is None else seen + weight
                    )
                community_degree[current] -= degree
                community_degree_arr[current] = community_degree[current]
                current_degree = community_degree[current]
                weight_to_current = get_weight(current, 0.0)
                best_community = current
                best_gain = 0.0
                for community, weight_to in neighbor_weights.items():
                    if community == current:
                        continue
                    gain = (weight_to - weight_to_current) / total_weight - (
                        degree * (community_degree[community] - current_degree)
                    ) / m2_total
                    if gain > best_gain + min_gain:
                        best_gain = gain
                        best_community = community
            else:
                communities = community_arr[indices_arr[start:end]]
                uniq, first_idx, inverse = unique(
                    communities, return_index=True, return_inverse=True
                )
                weight_sums = bincount(inverse, weights=weights_arr[start:end])
                community_degree[current] -= degree
                community_degree_arr[current] = community_degree[current]
                current_degree = community_degree[current]
                pos = searchsorted(uniq, current)
                if pos < len(uniq) and uniq[pos] == current:
                    weight_to_current = float(weight_sums[pos])
                else:
                    weight_to_current = 0.0
                gains = (weight_sums - weight_to_current) / total_weight - (
                    degree * (community_degree_arr[uniq] - current_degree)
                ) / m2_total
                uniq_l = uniq.tolist()
                gains_l = gains.tolist()
                best_community = current
                best_gain = 0.0
                for position in argsort(first_idx).tolist():
                    community = uniq_l[position]
                    if community == current:
                        continue
                    gain = gains_l[position]
                    if gain > best_gain + min_gain:
                        best_gain = gain
                        best_community = community
            community_of[node] = best_community
            community_arr[node] = best_community
            community_degree[best_community] += degree
            community_degree_arr[best_community] = community_degree[best_community]
            if best_community != current:
                moved_this_sweep = True
                moves += 1
        if not moved_this_sweep:
            break
    return moves, sweeps


def _aggregate_csr(level: _CsrLevel) -> tuple["_Level", list[int]]:
    """Phase 2 for a CSR entry level; bit-identical to :func:`_aggregate`.

    Coarse edge and self-loop weights are grouped segment sums over the
    entry arrays in row-major entry order — the order the reference's
    node-major dict walk accumulates them in.
    """
    uniq = _np.unique(level.community_arr)
    n_coarse = len(uniq)
    mapping_arr = _np.searchsorted(uniq, level.community_arr)
    mapping = mapping_arr.tolist()
    loops = [0.0] * n_coarse
    adjacency: list[dict[int, float]] = [{} for _ in range(n_coarse)]
    if len(level.indices):
        rows = level.rows
        cols_arr = level.indices
        cu = mapping_arr[rows]
        cv = mapping_arr[cols_arr]
        internal = cu == cv
        loop_mask = internal & (rows < cols_arr)
        if loop_mask.any():
            loops = _np.bincount(
                cu[loop_mask], weights=level.weights[loop_mask], minlength=n_coarse
            ).tolist()
        external = ~internal
        keys = cu[external] * n_coarse + cv[external]
        if len(keys):
            unique_keys, compact = _np.unique(keys, return_inverse=True)
            sums = _np.bincount(compact, weights=level.weights[external])
            for key, weight in zip(unique_keys.tolist(), sums.tolist()):
                adjacency[key // n_coarse][key % n_coarse] = weight
    coarse = _Level(adjacency, loops)
    return coarse, mapping


def _local_move(level: _Level, config: LouvainConfig, rng) -> tuple[int, int]:
    """Phase 1: greedy node moves.  Returns ``(moves, sweeps)`` counts.

    The loop is the pipeline's single hottest region, so the invariants
    are hoisted (``m2 * total_weight`` is the same float every
    evaluation; ``community_degree[current]`` does not change while the
    node is detached) and the neighbour-community accumulation is
    inlined.  Every arithmetic operation, accumulation order and
    tie-break is exactly the original's — outputs are byte-identical.
    """
    m2 = 2.0 * level.total_weight
    if m2 == 0.0:
        return 0, 0
    total_weight = level.total_weight
    m2_total = m2 * total_weight
    adjacency = level.adjacency
    degrees = level.degree
    community_of = level.community
    community_degree = level.community_degree
    min_gain = config.min_modularity_gain
    moves = 0
    sweeps = 0
    order = list(range(level.n))
    for _ in range(config.max_sweeps):
        rng.shuffle(order)
        sweeps += 1
        moved_this_sweep = False
        for node in order:
            current = community_of[node]
            degree = degrees[node]
            # Total edge weight from `node` to each neighbouring
            # community, accumulated in row order (ascending neighbour
            # ids — the order that fixes every equal-gain tie-break).
            neighbor_weights: dict[int, float] = {}
            get_weight = neighbor_weights.get
            for neighbor, weight in adjacency[node].items():
                community = community_of[neighbor]
                seen = get_weight(community)
                neighbor_weights[community] = (
                    weight if seen is None else seen + weight
                )
            # Remove the node from its community for gain computation.
            community_degree[current] -= degree
            current_degree = community_degree[current]
            weight_to_current = get_weight(current, 0.0)
            best_community = current
            best_gain = 0.0
            for community, weight_to in neighbor_weights.items():
                if community == current:
                    continue  # gain 0.0 can never beat best_gain + min_gain
                # Delta-Q of moving `node` from `current` to `community`,
                # both evaluated with the node removed.
                gain = (weight_to - weight_to_current) / total_weight - (
                    degree * (community_degree[community] - current_degree)
                ) / m2_total
                if gain > best_gain + min_gain:
                    best_gain = gain
                    best_community = community
            community_of[node] = best_community
            community_degree[best_community] += degree
            if best_community != current:
                moved_this_sweep = True
                moves += 1
        if not moved_this_sweep:
            break
    return moves, sweeps


def _aggregate(level: _Level) -> tuple[_Level, list[int]]:
    """Phase 2: collapse communities into super-nodes.

    Returns the coarser level and the mapping node -> super-node index.
    """
    labels = sorted(set(level.community))
    relabel = {label: index for index, label in enumerate(labels)}
    mapping = [relabel[c] for c in level.community]
    n_coarse = len(labels)
    adjacency: list[dict[int, float]] = [defaultdict(float) for _ in range(n_coarse)]
    loops = [0.0] * n_coarse
    for node in range(level.n):
        cu = mapping[node]
        loops[cu] += level.loops[node]
        for neighbor, weight in level.adjacency[node].items():
            cv = mapping[neighbor]
            if cu == cv:
                if node < neighbor:
                    loops[cu] += weight
            else:
                adjacency[cu][cv] += weight
    # Keep the coarse adjacency lists in sorted-index order as well, so
    # every level inherits the entry level's order-independence.
    coarse = _Level([dict(sorted(neigh.items())) for neigh in adjacency], loops)
    return coarse, mapping


def louvain_communities(
    graph: WeightedGraph,
    config: LouvainConfig | None = None,
    use_index: bool = True,
) -> LouvainResult:
    """Run Louvain community detection on *graph*.

    Isolated nodes come back as singleton communities.  The empty graph
    yields an empty result.  ``use_index=False`` forces the rebuild
    bridge even on index-ready graphs (the pre-interning behaviour; the
    equivalence tests and the legacy benchmark core rely on it).
    """
    config = config or LouvainConfig()
    config.validate()
    rng = make_rng(config.seed)

    csr_level: _CsrLevel | None = None
    if use_index:
        view_of = getattr(graph, "csr_view", None)
        csr = view_of() if view_of is not None else None
        if csr is not None and len(csr.indices):
            # Vector entry level, only when some row is heavy enough for
            # the per-node vector path to pay for itself; lighter CSR
            # graphs take the dict-row louvain_view below instead.
            max_degree = int(_np.diff(csr.indptr).max())
            if max_degree >= _VECTOR_MIN_DEGREE:
                nodes = list(csr.labels)
                csr_level = _CsrLevel(csr)

    view = graph.louvain_view() if use_index and csr_level is None else None
    if csr_level is not None:
        pass
    elif view is not None:
        # Fast path: the graph's ids are already canonical and its rows
        # ascending and loop-free, so its adjacency *is* the entry level.
        # `_Level` and `_aggregate` only read it; the labels are
        # snapshotted because callers may grow the graph afterwards.
        nodes, adjacency = list(view[0]), view[1]
        if not nodes:
            return LouvainResult(
                communities=(), partition={}, modularity=0.0, levels=0
            )
        loops = [0.0] * len(nodes)
    else:
        # Canonical node indexing: the integer id of a node depends only
        # on the node set, not on graph insertion order, so the seeded
        # shuffle visits the same servers in the same order on every run.
        nodes = canonical_nodes(graph.nodes)
        if not nodes:
            return LouvainResult(
                communities=(), partition={}, modularity=0.0, levels=0
            )
        index_of = {node: i for i, node in enumerate(nodes)}

        adjacency = [{} for _ in nodes]
        loops = [0.0] * len(nodes)
        for u, v, weight in graph.edges():
            if weight <= 0.0:
                continue
            if u == v:
                loops[index_of[u]] += weight
            else:
                iu, iv = index_of[u], index_of[v]
                adjacency[iu][iv] = adjacency[iu].get(iv, 0.0) + weight
                adjacency[iv][iu] = adjacency[iv].get(iu, 0.0) + weight
        # Sort each adjacency list by neighbour index: the iteration order
        # of `_local_move`'s neighbour-community accumulation (and with it
        # every equal-gain tie-break) becomes a function of the topology
        # alone.
        adjacency = [dict(sorted(neigh.items())) for neigh in adjacency]

    level = csr_level if csr_level is not None else _Level(adjacency, loops)
    # membership[i] = community label of original node i on the current level.
    membership = list(range(len(nodes)))

    levels_run = 0
    total_moves = 0
    total_sweeps = 0
    for _ in range(config.max_levels):
        if isinstance(level, _CsrLevel):
            level_moves, level_sweeps = _local_move_csr(level, config, rng)
        else:
            level_moves, level_sweeps = _local_move(level, config, rng)
        total_moves += level_moves
        total_sweeps += level_sweeps
        levels_run += 1
        if isinstance(level, _CsrLevel):
            coarse, mapping = _aggregate_csr(level)
        else:
            coarse, mapping = _aggregate(level)
        # `mapping` already composes the community assignment with the
        # coarse relabeling, so one hop advances each original node.
        membership = [mapping[m] for m in membership]
        if not level_moves or coarse.n == level.n:
            level = coarse
            break
        level = coarse

    groups: dict[int, list[Node]] = defaultdict(list)
    for original_index, community in enumerate(membership):
        groups[community].append(nodes[original_index])
    community_sets = sorted(
        (frozenset(members) for members in groups.values()),
        key=lambda s: (-len(s), min(repr(x) for x in s)),
    )
    partition = {
        node: index
        for index, community in enumerate(community_sets)
        for node in community
    }
    q = modularity(graph, partition)
    return LouvainResult(
        communities=tuple(community_sets),
        partition=partition,
        modularity=q,
        levels=levels_run,
        moves=total_moves,
        sweeps=total_sweeps,
    )
