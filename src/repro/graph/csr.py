"""CSR (compressed sparse row) backend for the similarity graphs.

:class:`CsrGraph` stores the symmetric adjacency of a canonically built
dimension graph as three numpy arrays — ``indptr``/``indices``/
``weights`` — instead of one python dict per row.  It is a drop-in for
:class:`~repro.graph.wgraph.WeightedGraph` across the whole mining API
(same methods, same float accumulation orders, byte-identical pipeline
output) while giving the hot consumers contiguous neighbor slices:

* Louvain's local-move phase computes per-node gains with
  bincount/segment sums over the slices (``csr_view`` hands the arrays
  over directly);
* modularity becomes masked segment sums over the edge arrays;
* ``subgraph`` extracts refinement communities with vectorised row
  gathers, returning another ``CsrGraph``.

Byte-identity with the dict backend is an invariant, not an accident:
``np.bincount`` accumulates its weights sequentially in input order
(exactly the dict-accumulation order), elementwise float64 arithmetic is
bit-identical to python scalar arithmetic, and every order-sensitive
reduction (total weight, modularity Q) stays a sequential python-float
sum.  Pairwise reductions (``np.sum``, ``np.add.reduceat``) are never
used on weights.

Construction mirrors the builders' contract (sorted labels, then one
bulk load of ascending ``iu < iv`` edges); the arrays are frozen after
that.  Post-construction mutation — the pipeline appends single-client
herd edges to the built main graph — goes to a small dict overlay with
the dict backend's exact insertion-order semantics, and disables the
vectorised views (queries stay correct via the merged rows).

numpy is optional: when it is unavailable this module still imports and
``HAVE_NUMPY`` is False; callers fall back to the pure-python
``WeightedGraph`` (see :func:`resolve_use_csr` / :func:`new_graph`).
"""

from __future__ import annotations

from bisect import bisect_left
from collections.abc import Hashable, Iterable, Iterator

from repro.errors import GraphError
from repro.graph.wgraph import WeightedGraph, node_sort_key

try:  # pragma: no cover - exercised via both CI paths
    import numpy as np
except ImportError:  # pragma: no cover
    np = None  # type: ignore[assignment]

HAVE_NUMPY = np is not None

Node = Hashable


def resolve_use_csr(use_csr: bool | None) -> bool:
    """Resolve the three-state ``use_csr`` config flag.

    ``None`` (the default) auto-detects: CSR when numpy is importable,
    pure python otherwise.  ``True`` demands numpy and raises
    :class:`GraphError` when it is missing; ``False`` always selects the
    pure-python reference path.
    """
    if use_csr is None:
        return HAVE_NUMPY
    if use_csr and not HAVE_NUMPY:
        raise GraphError("use_csr=True requires numpy, which is not installed")
    return bool(use_csr)


def new_graph(
    sorted_labels: Iterable[Node], use_csr: bool | None = None
) -> "WeightedGraph | CsrGraph":
    """Dimension-builder graph factory: dict or CSR backend.

    *sorted_labels* must already be in canonical order (every builder
    sorts its namespace first); the choice of backend never changes any
    output, only the representation the hot paths run on.
    """
    if resolve_use_csr(use_csr):
        return CsrGraph.from_sorted_labels(sorted_labels)
    return WeightedGraph.from_sorted_labels(sorted_labels)


class CsrView:
    """The frozen CSR arrays of a pure-base canonical graph.

    Handed to Louvain's vectorised entry level by :meth:`CsrGraph.csr_view`;
    all fields are live internals and must not be mutated.
    """

    __slots__ = ("labels", "indptr", "indices", "weights")

    def __init__(self, labels, indptr, indices, weights) -> None:
        self.labels = labels
        self.indptr = indptr
        self.indices = indices
        self.weights = weights


class CsrGraph:
    """Array-backed weighted undirected graph (see module docstring).

    The semantic contract is :class:`WeightedGraph`'s: same node/edge
    API, structural ``__eq__`` across both backends, and every float
    visible to callers is a python ``float`` produced by the same
    accumulation sequence the dict backend runs.
    """

    __slots__ = (
        "_labels",
        "_index",
        "_canonical",
        "_last_key",
        "_total_weight",
        "_has_nonpositive",
        "_num_loops",
        "_finalized",
        "_n0",
        "_pend_u",
        "_pend_v",
        "_pend_w",
        "_indptr",
        "_indices",
        "_weights",
        "_indptr_list",
        "_indices_list",
        "_weights_list",
        "_extra_adj",
        "_extra_pairs",
        "build_stats",
    )

    def __init__(self) -> None:
        if not HAVE_NUMPY:
            raise GraphError("CsrGraph requires numpy, which is not installed")
        self._labels: list[Node] = []
        self._index: dict[Node, int] = {}
        self._canonical: bool = True
        self._last_key: str | None = None
        self._total_weight: float = 0.0
        self._has_nonpositive: bool = False
        self._num_loops: int = 0
        self._finalized: bool = False
        self._n0: int = 0
        # Pending half-edge batches (ascending iu < iv), frozen into the
        # CSR arrays on first query.
        self._pend_u: list = []
        self._pend_v: list = []
        self._pend_w: list = []
        self._indptr = None
        self._indices = None
        self._weights = None
        # Python-int/float mirrors of the arrays, built lazily for the
        # per-row scalar paths (density_of, merged rows).
        self._indptr_list: list[int] | None = None
        self._indices_list: list[int] | None = None
        self._weights_list: list[float] | None = None
        # Post-freeze mutation overlay: id -> {neighbor id: weight delta}
        # per direction, plus the set of overlay pairs (iu <= iv).
        self._extra_adj: dict[int, dict[int, float]] = {}
        self._extra_pairs: set[tuple[int, int]] = set()
        self.build_stats: dict[str, object] = {}

    # -- construction --------------------------------------------------------------

    @classmethod
    def from_sorted_labels(cls, labels: Iterable[Node]) -> "CsrGraph":
        """Graph with nodes pre-inserted from an already-sorted iterable."""
        graph = cls()
        for label in labels:
            graph.add_node(label)
        return graph

    @classmethod
    def _from_arrays(
        cls, labels: list[Node], indptr, indices, weights, total_weight: float
    ) -> "CsrGraph":
        """Internal: wrap already-built CSR arrays (subgraph fast path)."""
        graph = cls()
        graph._labels = labels
        graph._index = {label: i for i, label in enumerate(labels)}
        graph._last_key = node_sort_key(labels[-1]) if labels else None
        graph._total_weight = total_weight
        graph._finalized = True
        graph._n0 = len(labels)
        graph._indptr = indptr
        graph._indices = indices
        graph._weights = weights
        return graph

    def add_node(self, node: Node) -> None:
        if node in self._index:
            return
        if self._canonical:
            key = node_sort_key(node)
            if self._last_key is not None and key < self._last_key:
                self._canonical = False
            self._last_key = key
        self._index[node] = len(self._labels)
        self._labels.append(node)

    def add_sorted_edges(self, edges: Iterable[tuple[int, int, float]]) -> None:
        """Bulk edge load (same contract as ``WeightedGraph.add_sorted_edges``).

        Pairs are distinct with ``iu < iv``, ascending in ``(iu, iv)``.
        Accepts any iterable of triples; :meth:`add_sorted_edge_arrays`
        is the zero-copy variant for array-producing builders.
        """
        if self._finalized:
            # Rare path (tests): the arrays are frozen, route through the
            # overlay one edge at a time.
            for iu, iv, weight in edges:
                self.add_edge_ids(iu, iv, weight)
            return
        us: list[int] = []
        vs: list[int] = []
        ws: list[float] = []
        for iu, iv, weight in edges:
            us.append(iu)
            vs.append(iv)
            ws.append(weight)
        self._pend_u.append(us)
        self._pend_v.append(vs)
        self._pend_w.append(ws)
        self._accumulate_total(ws)

    def add_sorted_edge_arrays(self, us, vs, ws) -> None:
        """Array-input twin of :meth:`add_sorted_edges` (numpy int64/float64)."""
        if self._finalized:
            self.add_sorted_edges(zip(us.tolist(), vs.tolist(), ws.tolist()))
            return
        self._pend_u.append(us)
        self._pend_v.append(vs)
        self._pend_w.append(ws)
        self._accumulate_total(ws.tolist())

    def _accumulate_total(self, ws: list[float]) -> None:
        # Sequential accumulation, exactly the dict backend's
        # ``total += weight`` loop.  sum() starts from exact 0, so the
        # fast path is bit-identical when nothing was accumulated yet.
        if self._total_weight == 0.0:
            self._total_weight = float(sum(ws))
        else:
            total = self._total_weight
            for weight in ws:
                total += weight
            self._total_weight = total
        for weight in ws:
            if weight <= 0.0:
                self._has_nonpositive = True
                break

    def _finalize(self) -> None:
        if self._finalized:
            return
        self._finalized = True
        n0 = len(self._labels)
        self._n0 = n0
        if self._pend_u:
            us = np.concatenate(
                [np.asarray(part, dtype=np.int64) for part in self._pend_u]
            )
            vs = np.concatenate(
                [np.asarray(part, dtype=np.int64) for part in self._pend_v]
            )
            ws = np.concatenate(
                [np.asarray(part, dtype=np.float64) for part in self._pend_w]
            )
        else:
            us = np.zeros(0, dtype=np.int64)
            vs = np.zeros(0, dtype=np.int64)
            ws = np.zeros(0, dtype=np.float64)
        self._pend_u = self._pend_v = self._pend_w = []
        # Symmetrise: each half-edge (u, v) appears as entries (u, v) and
        # (v, u); row-major/ascending-column order reproduces the dict
        # backend's insertion order for ascending (iu, iv) input.
        rows = np.concatenate([us, vs])
        cols = np.concatenate([vs, us])
        both = np.concatenate([ws, ws])
        order = np.lexsort((cols, rows))
        self._indices = cols[order]
        self._weights = both[order]
        indptr = np.zeros(n0 + 1, dtype=np.int64)
        if len(rows):
            np.cumsum(np.bincount(rows, minlength=n0), out=indptr[1:])
        self._indptr = indptr

    def _lists(self) -> tuple[list[int], list[int], list[float]]:
        """Python mirrors of the arrays for per-row scalar iteration."""
        self._finalize()
        if self._indptr_list is None:
            self._indptr_list = self._indptr.tolist()
            self._indices_list = self._indices.tolist()
            self._weights_list = self._weights.tolist()
        return self._indptr_list, self._indices_list, self._weights_list

    @property
    def _mutated(self) -> bool:
        return bool(self._extra_adj) or (
            self._finalized and len(self._labels) != self._n0
        )

    # -- mutation overlay ----------------------------------------------------------

    def add_edge(self, u: Node, v: Node, weight: float = 1.0) -> None:
        """Add (or reinforce) edge ``{u, v}`` post-construction."""
        iu = self._index.get(u)
        if iu is None:
            self.add_node(u)
            iu = self._index[u]
        iv = self._index.get(v)
        if iv is None:
            self.add_node(v)
            iv = self._index[v]
        self.add_edge_ids(iu, iv, weight)

    def add_edge_ids(self, iu: int, iv: int, weight: float = 1.0) -> None:
        if weight < 0:
            raise GraphError(f"edge weight must be non-negative, got {weight}")
        self._finalize()
        pair = (iu, iv) if iu <= iv else (iv, iu)
        row_u = self._extra_adj.setdefault(iu, {})
        if iu == iv:
            if pair not in self._extra_pairs:
                self._num_loops += 1
            delta = row_u.get(iu, 0.0) + weight
            row_u[iu] = delta
            stored = delta  # the base never holds self-loops
        else:
            row_v = self._extra_adj.setdefault(iv, {})
            delta = row_u.get(iv, 0.0) + weight
            row_u[iv] = delta
            row_v[iu] = delta
            stored = self._base_weight(iu, iv) + delta
        self._extra_pairs.add(pair)
        if stored <= 0.0:
            self._has_nonpositive = True
        self._total_weight += weight

    def remove_node(self, node: Node) -> None:
        raise GraphError(
            "CsrGraph is frozen after construction and does not support "
            "remove_node; use the pure-python WeightedGraph"
        )

    def _base_slice(self, index: int) -> tuple[int, int]:
        self._finalize()
        if 0 <= index < self._n0:
            ip = self._indptr_list
            if ip is None:
                ip, _, _ = self._lists()
            return ip[index], ip[index + 1]
        return 0, 0

    def _base_weight(self, iu: int, iv: int) -> float:
        start, end = self._base_slice(iu)
        if start == end:
            return 0.0
        _, cols, wts = self._lists()
        pos = bisect_left(cols, iv, start, end)
        if pos < end and cols[pos] == iv:
            return wts[pos]
        return 0.0

    def _base_has(self, iu: int, iv: int) -> bool:
        start, end = self._base_slice(iu)
        if start == end:
            return False
        _, cols, _ = self._lists()
        pos = bisect_left(cols, iv, start, end)
        return pos < end and cols[pos] == iv

    def _merged_row(self, index: int) -> dict[int, float]:
        """Row ``index`` as the dict backend would hold it.

        Base entries in ascending-column order, overlay-only neighbors
        appended in overlay insertion order, deltas on base entries
        folded in place — exactly the dict backend's insertion-order
        semantics for a canonically built then mutated graph.
        """
        start, end = self._base_slice(index)
        if start == end:
            row: dict[int, float] = {}
        else:
            _, cols, wts = self._lists()
            row = dict(zip(cols[start:end], wts[start:end]))
        extra = self._extra_adj.get(index)
        if extra:
            for j, delta in extra.items():
                base = row.get(j)
                row[j] = delta if base is None else base + delta
        return row

    # -- id-level queries ----------------------------------------------------------

    def id_of(self, node: Node) -> int:
        try:
            return self._index[node]
        except KeyError:
            raise GraphError(f"node not in graph: {node!r}") from None

    def label_of(self, index: int) -> Node:
        return self._labels[index]

    def louvain_view(self):
        """Dict-row entry view, same contract as ``WeightedGraph.louvain_view``.

        Rows are materialised with ``dict(zip(...))`` over the list
        mirrors — C-speed, ascending-column by construction, so the
        existing scalar local-move consumes them exactly as it consumes
        the dict backend's rows.  Louvain prefers :meth:`csr_view` when
        the degree distribution makes the vector path worthwhile.
        """
        if self.csr_view() is None:
            return None
        ip, cols, wts = self._lists()
        adjacency = [
            dict(zip(cols[ip[i] : ip[i + 1]], wts[ip[i] : ip[i + 1]]))
            for i in range(self._n0)
        ]
        return self._labels, adjacency

    def csr_view(self) -> CsrView | None:
        """The frozen arrays, when Louvain may consume them directly.

        Same contract as ``WeightedGraph.louvain_view``: non-``None``
        iff the graph is canonical, loop-free, all-positive — and, for
        this backend, unmutated since construction.
        """
        self._finalize()
        if (
            self._canonical
            and not self._mutated
            and self._num_loops == 0
            and not self._has_nonpositive
        ):
            return CsrView(self._labels, self._indptr, self._indices, self._weights)
        return None

    # -- queries -------------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, (CsrGraph, WeightedGraph)):
            return NotImplemented
        return self._label_adjacency() == other._label_adjacency()

    __hash__ = None  # mutable container; unhashable like list/dict

    def _label_adjacency(self) -> dict[Node, dict[Node, float]]:
        labels = self._labels
        return {
            labels[i]: {labels[j]: w for j, w in self._merged_row(i).items()}
            for i in range(len(labels))
        }

    def __contains__(self, node: Node) -> bool:
        return node in self._index

    def __len__(self) -> int:
        return len(self._labels)

    def __iter__(self) -> Iterator[Node]:
        return iter(self._labels)

    @property
    def nodes(self) -> list[Node]:
        return list(self._labels)

    def edges(self) -> Iterator[tuple[Node, Node, float]]:
        """Yield each undirected edge once (same order as the dict backend)."""
        labels = self._labels
        for i in range(len(labels)):
            label = labels[i]
            for j, weight in self._merged_row(i).items():
                if j >= i:
                    yield label, labels[j], weight

    def num_edges(self) -> int:
        self._finalize()
        base = len(self._indices) // 2
        extra = sum(
            1
            for iu, iv in self._extra_pairs
            if iu == iv or not self._base_has(iu, iv)
        )
        return base + extra

    def neighbors(self, node: Node) -> dict[Node, float]:
        index = self._index.get(node)
        if index is None:
            raise GraphError(f"node not in graph: {node!r}")
        labels = self._labels
        return {labels[j]: w for j, w in self._merged_row(index).items()}

    def has_edge(self, u: Node, v: Node) -> bool:
        iu = self._index.get(u)
        if iu is None:
            return False
        iv = self._index.get(v)
        if iv is None:
            return False
        extra = self._extra_adj.get(iu)
        if extra is not None and iv in extra:
            return True
        return self._base_has(iu, iv)

    def edge_weight(self, u: Node, v: Node) -> float:
        iu = self._index.get(u)
        if iu is None:
            return 0.0
        iv = self._index.get(v)
        if iv is None:
            return 0.0
        weight = self._base_weight(iu, iv)
        extra = self._extra_adj.get(iu)
        if extra is not None:
            weight += extra.get(iv, 0.0)
        return weight

    def degree(self, node: Node) -> float:
        index = self._index.get(node)
        if index is None:
            raise GraphError(f"node not in graph: {node!r}")
        row = self._merged_row(index)
        return sum(row.values()) + row.get(index, 0.0)

    @property
    def total_weight(self) -> float:
        return self._total_weight

    # -- derived graphs ------------------------------------------------------------

    def subgraph(self, nodes: Iterable[Node]) -> "CsrGraph | WeightedGraph":
        """Induced subgraph on *nodes* (missing nodes are ignored)."""
        self._finalize()
        index = self._index
        keep = {index[node] for node in nodes if node in index}
        if self._canonical:
            ordered = sorted(keep)
        else:
            labels = self._labels
            ordered = sorted(keep, key=lambda i: node_sort_key(labels[i]))
        if self._mutated or not self._canonical:
            return self._subgraph_generic(ordered)
        return self._subgraph_arrays(ordered)

    def _subgraph_arrays(self, ordered: list[int]) -> "CsrGraph":
        labels = [self._labels[i] for i in ordered]
        k = len(ordered)
        indptr = self._indptr
        ids = np.asarray(ordered, dtype=np.int64)
        counts = indptr[ids + 1] - indptr[ids] if k else np.zeros(0, dtype=np.int64)
        total = int(counts.sum()) if k else 0
        if not total:
            return CsrGraph._from_arrays(
                labels,
                np.zeros(k + 1, dtype=np.int64),
                np.zeros(0, dtype=np.int64),
                np.zeros(0, dtype=np.float64),
                0.0,
            )
        # Gather every member row's entry positions in row-major order.
        starts = indptr[ids]
        offsets = np.concatenate(([0], np.cumsum(counts)[:-1]))
        pos = np.repeat(starts - offsets, counts) + np.arange(total)
        cols_sel = self._indices[pos]
        w_sel = self._weights[pos]
        rows_local = np.repeat(np.arange(k, dtype=np.int64), counts)
        remap = np.full(self._n0, -1, dtype=np.int64)
        remap[ids] = np.arange(k, dtype=np.int64)
        cols_local = remap[cols_sel]
        mask = cols_local >= 0
        rows_f = rows_local[mask]
        cols_f = cols_local[mask]
        w_f = w_sel[mask]
        sub_indptr = np.zeros(k + 1, dtype=np.int64)
        np.cumsum(np.bincount(rows_f, minlength=k), out=sub_indptr[1:])
        # Total weight: the dict backend adds each edge at its first
        # encounter — upper-triangle entries in row-major order.
        upper = w_f[cols_f > rows_f]
        total_weight = float(sum(upper.tolist()))
        return CsrGraph._from_arrays(labels, sub_indptr, cols_f, w_f, total_weight)

    def _subgraph_generic(self, ordered: list[int]) -> WeightedGraph:
        # Mutated/non-canonical source: replicate WeightedGraph.subgraph
        # over the merged rows (identical insertion and accumulation
        # order); the result is a dict-backend graph, which every
        # consumer accepts interchangeably.
        sub = WeightedGraph()
        for i in ordered:
            sub.add_node(self._labels[i])
        local = {i: k for k, i in enumerate(ordered)}
        sub_adj = sub._adj
        for i in ordered:
            li = local[i]
            row_li = sub_adj[li]
            for j, weight in self._merged_row(i).items():
                lj = local.get(j)
                if lj is None:
                    continue
                if i == j or lj not in row_li:
                    sub.add_edge_ids(li, lj, weight)
        return sub

    def density(self) -> float:
        n = len(self._labels)
        if n < 2:
            return 0.0
        edges = self.num_edges() - self._num_loops
        return 2.0 * edges / (n * (n - 1))

    def density_of(self, nodes: Iterable[Node]) -> float:
        """Density of the induced subgraph (same integer count as the
        dict backend, without materialising anything).

        The edge count is an integer — no float accumulation — so the
        base count runs as one gather + searchsorted over the member
        rows' entries with nothing to prove about ordering.
        """
        index = self._index
        members = {index[node] for node in nodes if node in index}
        n = len(members)
        if n < 2:
            return 0.0
        self._finalize()
        ids = np.fromiter(members, dtype=np.int64, count=n)
        ids.sort()
        base_ids = ids[ids < self._n0] if len(self._labels) != self._n0 else ids
        edges = 0
        if len(base_ids) and len(self._indices):
            starts = self._indptr[base_ids]
            counts = self._indptr[base_ids + 1] - starts
            total = int(counts.sum())
            if total:
                offsets = np.concatenate(([0], np.cumsum(counts)[:-1]))
                pos = np.repeat(starts - offsets, counts) + np.arange(total)
                cols_sel = self._indices[pos]
                loc = np.minimum(np.searchsorted(ids, cols_sel), n - 1)
                # Every internal adjacency shows up in both endpoint rows.
                edges = int((ids[loc] == cols_sel).sum()) // 2
        if self._extra_pairs:
            for iu, iv in self._extra_pairs:
                if (
                    iu != iv
                    and iu in members
                    and iv in members
                    and not self._base_has(iu, iv)
                ):
                    edges += 1
        return 2.0 * edges / (n * (n - 1))

    # -- modularity ----------------------------------------------------------------

    def _modularity(self, partition) -> float:
        """Newman modularity Q (the ``repro.graph.modularity`` dispatch).

        Vectorised over the frozen arrays when the graph is unmutated;
        the merged-row scalar walk (the dict backend's exact loop)
        otherwise.  Both accumulate Q in first-occurrence community
        order with python floats.
        """
        m2 = 2.0 * self._total_weight
        if m2 == 0.0:
            return 0.0
        self._finalize()
        labels = self._labels
        if self._mutated:
            return self._modularity_generic(partition, m2)
        try:
            communities = [partition[node] for node in labels]
        except KeyError as exc:
            raise GraphError(f"partition is missing node {exc.args[0]!r}") from None
        comm = np.asarray(communities, dtype=np.int64)
        if len(comm) and (comm.min() < 0 or comm.max() > 4 * len(comm) + 16):
            # Sparse or negative community labels: bincount would blow
            # up; the scalar walk handles any labelling.
            return self._modularity_generic(partition, m2)
        n_bins = int(comm.max()) + 1 if len(comm) else 0
        indptr = self._indptr
        rows = np.repeat(
            np.arange(self._n0, dtype=np.int64), np.diff(indptr)
        )
        row_sums = np.bincount(rows, weights=self._weights, minlength=self._n0)
        degree_sum = np.bincount(comm, weights=row_sums, minlength=n_bins)
        comm_rows = comm[rows]
        internal_mask = comm_rows == comm[self._indices]
        internal = np.bincount(
            comm_rows[internal_mask],
            weights=self._weights[internal_mask],
            minlength=n_bins,
        )
        # Q accumulates per community in first-occurrence (node id) order,
        # with python floats — the dict-iteration order of the reference.
        uniq, first_idx = np.unique(comm, return_index=True)
        order = np.argsort(first_idx)
        uniq_l = uniq.tolist()
        internal_l = internal.tolist()
        degree_l = degree_sum.tolist()
        q = 0.0
        for pos in order.tolist():
            community = uniq_l[pos]
            q += internal_l[community] / m2 - (degree_l[community] / m2) ** 2
        return q

    def _modularity_generic(self, partition, m2: float) -> float:
        labels = self._labels
        communities: list[int] = []
        for node in labels:
            if node not in partition:
                raise GraphError(f"partition is missing node {node!r}")
            communities.append(partition[node])
        internal: dict[int, float] = {}
        degree_sum: dict[int, float] = {}
        for index in range(len(labels)):
            community = communities[index]
            row = self._merged_row(index)
            contribution = sum(row.values()) + row.get(index, 0.0)
            degree_sum[community] = degree_sum.get(community, 0.0) + contribution
            for neighbor, weight in row.items():
                if communities[neighbor] == community:
                    add = 2.0 * weight if neighbor == index else weight
                    internal[community] = internal.get(community, 0.0) + add
        q = 0.0
        for community, deg in degree_sum.items():
            q += internal.get(community, 0.0) / m2 - (deg / m2) ** 2
        return q
