"""Connected components of a weighted graph (iterative BFS)."""

from __future__ import annotations

from collections import deque
from collections.abc import Hashable

from repro.graph.wgraph import WeightedGraph

Node = Hashable


def connected_components(graph: WeightedGraph) -> list[frozenset[Node]]:
    """Return the connected components of *graph* as frozensets of nodes.

    Components are ordered by first-seen node (graph insertion order), which
    keeps the output deterministic for a deterministically built graph.
    """
    seen: set[Node] = set()
    components: list[frozenset[Node]] = []
    for start in graph:
        if start in seen:
            continue
        queue: deque[Node] = deque([start])
        seen.add(start)
        members: list[Node] = []
        while queue:
            node = queue.popleft()
            members.append(node)
            for neighbor in graph.neighbors(node):
                if neighbor not in seen:
                    seen.add(neighbor)
                    queue.append(neighbor)
        components.append(frozenset(members))
    return components
