"""Newman modularity of a weighted partition.

Modularity measures "the density of the links inside the community as
compared with the links between communities" (paper Section III-B1, citing
Blondel et al. 2008).  For a weighted graph with total edge weight ``m``:

    Q = (1 / 2m) * sum_ij [ A_ij - k_i k_j / 2m ] * delta(c_i, c_j)

where ``A`` is the weighted adjacency matrix, ``k_i`` the weighted degree
of node ``i`` and ``delta`` the community indicator.  Q lies in [-1, 1].
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Hashable, Mapping

from repro.errors import GraphError
from repro.graph.wgraph import WeightedGraph

Node = Hashable


def modularity(graph: WeightedGraph, partition: Mapping[Node, int]) -> float:
    """Modularity Q of *partition* over *graph*.

    ``partition`` maps every node of the graph to a community label.
    Raises :class:`GraphError` when a node is missing from the partition.
    An empty graph (no edges) has modularity 0 by convention.

    Graphs that carry their own ``_modularity`` implementation (the CSR
    backend, which runs this computation as masked segment sums over its
    edge arrays) dispatch to it; the result is byte-identical to the
    walk below on the same logical graph.
    """
    impl = getattr(graph, "_modularity", None)
    if impl is not None:
        return impl(partition)
    m2 = 2.0 * graph.total_weight  # 2m
    if m2 == 0.0:
        return 0.0
    # Work on the graph's integer backend: same nodes in the same
    # insertion order, same per-row neighbour order, so every float
    # accumulates in exactly the order the label-keyed walk used — just
    # without materialising a label dict per node.
    labels = graph.nodes
    communities: list[int] = []
    for node in labels:
        if node not in partition:
            raise GraphError(f"partition is missing node {node!r}")
        communities.append(partition[node])

    internal: dict[int, float] = defaultdict(float)  # sum of internal weights * 2
    degree_sum: dict[int, float] = defaultdict(float)
    adjacency = graph._adj  # rows are id-indexed; labels[i] names row i
    for index in range(len(labels)):
        community = communities[index]
        row = adjacency[index]
        degree_sum[community] += sum(row.values()) + row.get(index, 0.0)
        for neighbor, weight in row.items():
            if communities[neighbor] == community:
                if neighbor == index:
                    internal[community] += 2.0 * weight
                else:
                    internal[community] += weight

    q = 0.0
    for community, deg in degree_sum.items():
        q += internal[community] / m2 - (deg / m2) ** 2
    return q
