"""An EXPOSURE-style supervised per-domain reputation classifier.

Scores each server *in isolation* from lexical and behavioural features,
trained on labelled seeds (IDS-confirmed malicious servers vs the most
popular benign servers) — the class of system the paper contrasts with
(Bilge et al., "EXPOSURE", NDSS 2011; paper reference [16]).

The point this baseline makes executable: compromised *benign* servers
(the Bagle download tier, iframe-injection victims) have benign features
— real registrations, normal names, diverse content — so a per-domain
classifier cannot flag them, while SMASH's herd correlation can
(Section V-D1: "domain reputation based systems ... would not detect
such malicious servers").

The classifier is a from-scratch logistic regression on numpy (no
external ML dependency), with deterministic full-batch gradient descent.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.domains.names import is_ip_address, normalize_server_name
from repro.groundtruth.ids import SignatureIds
from repro.httplog.trace import HttpTrace
from repro.whois.registry import WhoisRegistry

#: TLDs/suffixes that carry elevated prior badness in reputation systems.
_SUSPICIOUS_SUFFIXES = (".cz.cc", ".co.cc", ".cu.cc", ".su", ".ru", ".ws")

_NUM_FEATURES = 9


def _name_entropy(label: str) -> float:
    counts: dict[str, int] = {}
    for ch in label:
        counts[ch] = counts.get(ch, 0) + 1
    total = len(label)
    return -sum((c / total) * math.log2(c / total) for c in counts.values()) if total else 0.0


def _digit_fraction(label: str) -> float:
    return sum(ch.isdigit() for ch in label) / len(label) if label else 0.0


def server_features(
    server: str,
    trace: HttpTrace,
    whois: "WhoisRegistry | None" = None,
) -> np.ndarray:
    """Feature vector for one (aggregated) server.

    Only signals a real reputation system has: popularity, lexical shape
    of the name, TLD prior, registration age and proxy use, response
    health.  Deliberately *not* trace microstructure (per-server file
    inventories etc.), which a per-domain scorer would not observe.
    """
    clients = trace.clients_by_server.get(server, frozenset())
    requests = trace.requests_by_server.get(server, ())
    label = server.split(".")[0]
    num_requests = len(requests)
    error_rate = (
        sum(1 for r in requests if r.is_error) / num_requests if num_requests else 0.0
    )
    record = whois.lookup(server) if whois is not None else None
    if record is not None:
        # Ages are in days within the synthetic universe's 10-year window.
        registration_age = math.log1p(max(0.0, 3650.0 - record.registered_on))
        proxy = 1.0 if record.is_proxy else 0.0
        unregistered = 0.0
    else:
        registration_age = 0.0
        proxy = 0.0
        unregistered = 1.0
    return np.array(
        [
            math.log1p(len(clients)),
            _name_entropy(label),
            _digit_fraction(label),
            1.0 if any(server.endswith(s) for s in _SUSPICIOUS_SUFFIXES) else 0.0,
            1.0 if is_ip_address(server) else 0.0,
            error_rate,
            registration_age,
            proxy,
            unregistered,
        ],
        dtype=float,
    )


@dataclass
class DomainReputationDetector:
    """Logistic-regression reputation scorer with IDS-seeded training."""

    learning_rate: float = 0.5
    epochs: int = 300
    decision_threshold: float = 0.5
    #: Calibration target: fraction of benign training servers allowed
    #: above the decision threshold.
    target_benign_fpr: float = 0.02
    l2: float = 1e-3
    _weights: np.ndarray = field(default_factory=lambda: np.zeros(_NUM_FEATURES + 1))
    _trained: bool = False
    _feature_mean: np.ndarray | None = None
    _feature_std: np.ndarray | None = None

    # -- training -------------------------------------------------------------------

    def train(
        self,
        trace: HttpTrace,
        seeds: SignatureIds,
        whois: "WhoisRegistry | None" = None,
    ) -> None:
        """Train on IDS-confirmed servers vs the most popular servers.

        This mirrors how reputation systems bootstrap: known-bad seeds
        from a malware feed, known-good seeds from top-popularity lists.
        """
        aggregated = trace.map_hosts(normalize_server_name)
        malicious = seeds.detected_servers(trace, normalize_server_name)
        if not malicious:
            raise ValueError("cannot train without malicious seeds")
        counts = aggregated.client_counts()
        # Benign seeds span the popularity spectrum (top-list domains plus
        # a deterministic sample of ordinary unlabelled ones); training
        # only on top-popularity sites would degenerate the model into a
        # popularity test that flags every small benign site.
        unlabelled = [
            server
            for server, _count in sorted(counts.items(), key=lambda kv: -kv[1])
            if server not in malicious
        ]
        want = max(20, 3 * len(malicious))
        top = unlabelled[: want // 2]
        rest = unlabelled[want // 2:]
        stride = max(1, len(rest) // max(1, want - len(top)))
        spread = rest[::stride][: want - len(top)]
        benign = top + spread
        servers = sorted(malicious) + benign
        labels = np.array([1.0] * len(malicious) + [0.0] * len(benign))
        features = np.stack(
            [server_features(s, aggregated, whois) for s in servers]
        )
        self._feature_mean = features.mean(axis=0)
        self._feature_std = features.std(axis=0)
        self._feature_std[self._feature_std == 0.0] = 1.0
        normalized = (features - self._feature_mean) / self._feature_std
        design = np.hstack([normalized, np.ones((len(servers), 1))])

        weights = np.zeros(design.shape[1])
        for _ in range(self.epochs):
            logits = design @ weights
            probabilities = 1.0 / (1.0 + np.exp(-logits))
            gradient = design.T @ (probabilities - labels) / len(labels)
            gradient += self.l2 * weights
            weights -= self.learning_rate * gradient
        self._weights = weights
        self._trained = True

        # Calibrate the decision threshold at a low-false-positive
        # operating point, the way deployed reputation systems are tuned:
        # allow at most ``target_benign_fpr`` of the benign training
        # sample above the cut-off.  (F1-style calibration is useless
        # here: the IDS seed class is contaminated with compromised
        # benign servers, and the benign base rate in deployment is far
        # larger than in the training sample.)
        probabilities = 1.0 / (1.0 + np.exp(-(design @ weights)))
        benign_scores = np.sort(probabilities[labels == 0.0])
        if benign_scores.size:
            cut = int(np.floor((1.0 - self.target_benign_fpr) * benign_scores.size))
            cut = min(cut, benign_scores.size - 1)
            self.decision_threshold = max(0.5, float(benign_scores[cut]) + 1e-6)

    # -- scoring --------------------------------------------------------------------

    def score(
        self,
        server: str,
        trace: HttpTrace,
        whois: "WhoisRegistry | None" = None,
    ) -> float:
        """Maliciousness probability for one aggregated server name."""
        if not self._trained:
            raise RuntimeError("train() must be called before score()")
        assert self._feature_mean is not None and self._feature_std is not None
        features = (
            server_features(server, trace, whois) - self._feature_mean
        ) / self._feature_std
        logit = float(np.dot(self._weights[:-1], features) + self._weights[-1])
        return 1.0 / (1.0 + math.exp(-logit))

    def detect_servers(
        self,
        trace: HttpTrace,
        whois: "WhoisRegistry | None" = None,
    ) -> frozenset[str]:
        """All servers scoring above the decision threshold."""
        aggregated = trace.map_hosts(normalize_server_name)
        return frozenset(
            server
            for server in aggregated.servers
            if self.score(server, aggregated, whois) >= self.decision_threshold
        )
