"""IDS-as-detector baseline.

Runs a signature generation over the trace and reports the labelled
servers, grouped into campaigns by threat identifier — exactly how the
paper builds its IDS ground truth (Section V-A2).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.domains.names import normalize_server_name
from repro.groundtruth.ids import SignatureIds
from repro.httplog.trace import HttpTrace


@dataclass(frozen=True)
class IdsOnlyDetector:
    """Detect exactly what the signature set knows."""

    ids: SignatureIds

    def detect_servers(self, trace: HttpTrace) -> frozenset[str]:
        return self.ids.detected_servers(trace, normalize_server_name)

    def detect_campaigns(self, trace: HttpTrace) -> dict[str, frozenset[str]]:
        """threat identifier -> servers (the IDS's notion of a campaign)."""
        return self.ids.threat_groups(trace, normalize_server_name)
