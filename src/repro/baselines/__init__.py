"""Baseline detectors SMASH is compared against.

* :mod:`ids_only` / :mod:`blacklist_only` — the paper's ground-truth
  sources used *as detectors* (the "detected by IDS and blacklists"
  rows of Tables II/III);
* :mod:`client_clustering` — a BotMiner/BotSniffer-style client-side
  clustering detector, reproducing the paper's argument that such systems
  need multiple infected clients per campaign (Section V-A3);
* :mod:`domain_reputation` — an EXPOSURE-style supervised per-domain
  reputation classifier, reproducing the argument that per-domain
  features miss compromised benign servers (Section V-D1).
"""

from repro.baselines.ids_only import IdsOnlyDetector
from repro.baselines.blacklist_only import BlacklistOnlyDetector
from repro.baselines.client_clustering import ClientClusteringDetector
from repro.baselines.domain_reputation import DomainReputationDetector

__all__ = [
    "BlacklistOnlyDetector",
    "ClientClusteringDetector",
    "DomainReputationDetector",
    "IdsOnlyDetector",
]
