"""A BotMiner/BotSniffer-style client-side clustering detector.

The paper argues (Section V-A3) that client-side systems "need to
correlate among multiple infected clients in the same network", so the
75% of campaigns with a single involved client escape them.  This
baseline makes that argument executable:

1. cluster *clients* by the similarity of their destination sets
   (restricted to unpopular servers, mirroring C-plane clustering);
2. within every client cluster of at least ``min_cluster_clients``
   members, flag servers contacted by at least ``min_cluster_clients``
   cluster members with a shared non-generic User-Agent or shared URI
   file (the A-plane analog).

By construction nothing contacted by a single client can ever be
flagged.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass

from repro.config import LouvainConfig, PreprocessConfig
from repro.core.preprocess import preprocess
from repro.graph.louvain import louvain_communities
from repro.graph.wgraph import WeightedGraph
from repro.httplog.trace import HttpTrace
from repro.httplog.useragent import is_generic_user_agent
from repro.util.text import jaccard


@dataclass(frozen=True)
class ClientClusteringDetector:
    """Client-plane clustering + activity-plane correlation."""

    min_cluster_clients: int = 2
    min_similarity: float = 0.15
    louvain: LouvainConfig = LouvainConfig()

    def cluster_clients(self, trace: HttpTrace) -> tuple[frozenset[str], ...]:
        """Cluster clients by Jaccard similarity of their destinations."""
        prepared, _ = preprocess(trace, PreprocessConfig())
        servers_by_client = prepared.servers_by_client
        graph = WeightedGraph()
        for client in servers_by_client:
            graph.add_node(client)
        # Candidate pairs via shared servers.
        clients_by_server = prepared.clients_by_server
        pair_common: Counter[tuple[str, str]] = Counter()
        for clients in clients_by_server.values():
            members = sorted(clients)
            if len(members) > 50:
                continue  # too common to be discriminative
            for i, first in enumerate(members):
                for second in members[i + 1:]:
                    pair_common[(first, second)] += 1
        for (first, second), _count in pair_common.items():
            weight = jaccard(servers_by_client[first], servers_by_client[second])
            if weight >= self.min_similarity:
                graph.add_edge(first, second, weight)
        result = louvain_communities(graph, self.louvain)
        return tuple(
            c for c in result.communities if len(c) >= self.min_cluster_clients
        )

    def detect_servers(self, trace: HttpTrace) -> frozenset[str]:
        """Servers flagged through correlated client activity."""
        prepared, _ = preprocess(trace, PreprocessConfig())
        clusters = self.cluster_clients(trace)
        requests_by_server = prepared.requests_by_server
        clients_by_server = prepared.clients_by_server
        flagged: set[str] = set()
        for cluster in clusters:
            cluster_set = set(cluster)
            # Servers contacted by >= min_cluster_clients cluster members.
            shared: dict[str, set[str]] = defaultdict(set)
            for server, clients in clients_by_server.items():
                overlap = clients & cluster_set
                if len(overlap) >= self.min_cluster_clients:
                    shared[server] = overlap
            for server in shared:
                agents = {
                    request.user_agent
                    for request in requests_by_server[server]
                    if request.client in cluster_set
                }
                distinctive = any(not is_generic_user_agent(a) for a in agents)
                if distinctive:
                    flagged.add(server)
        return frozenset(flagged)
