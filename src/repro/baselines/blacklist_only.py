"""Blacklist-as-detector baseline: flag every trace server that the
blacklist ecosystem confirms (paper Section IV-B policy)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.domains.names import normalize_server_name
from repro.groundtruth.blacklist import BlacklistAggregator
from repro.httplog.trace import HttpTrace


@dataclass(frozen=True)
class BlacklistOnlyDetector:
    blacklists: BlacklistAggregator

    def detect_servers(self, trace: HttpTrace) -> frozenset[str]:
        servers = {normalize_server_name(host) for host in trace.servers}
        return self.blacklists.confirmed_among(servers)
