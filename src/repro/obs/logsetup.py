"""Structured logging setup for the CLI.

Library code logs through ``logging.getLogger("repro.<module>")`` and
never attaches handlers — with no handler configured the records go
nowhere, which keeps tests and embedding applications silent by
default.  The CLI calls :func:`configure_logging` once per invocation
to attach a stderr handler at the requested level, either as
human-readable lines or as JSON objects (``--log-json``).

Loggers may attach extra structured fields via
``logger.info("...", extra={"data": {...}})``; the JSON formatter
merges those fields into the emitted object and the text formatter
appends them as ``key=value`` pairs.
"""

from __future__ import annotations

import json
import logging
import sys

ROOT_LOGGER_NAME = "repro"

_LEVELS = {
    "debug": logging.DEBUG,
    "info": logging.INFO,
    "warning": logging.WARNING,
    "error": logging.ERROR,
}

#: Marker so repeated configure_logging calls replace our handler
#: instead of stacking duplicates (repeated main() calls in one process).
_HANDLER_FLAG = "_repro_obs_handler"


class JsonLogFormatter(logging.Formatter):
    """One JSON object per record, with ``record.data`` fields merged in."""

    def format(self, record: logging.LogRecord) -> str:
        payload: dict[str, object] = {
            "level": record.levelname.lower(),
            "logger": record.name,
            "message": record.getMessage(),
        }
        data = getattr(record, "data", None)
        if isinstance(data, dict):
            payload.update(data)
        return json.dumps(payload, sort_keys=True, default=str)


class TextLogFormatter(logging.Formatter):
    """``level logger: message key=value ...`` lines for humans."""

    def format(self, record: logging.LogRecord) -> str:
        line = f"{record.levelname.lower()} {record.name}: {record.getMessage()}"
        data = getattr(record, "data", None)
        if isinstance(data, dict) and data:
            pairs = " ".join(f"{key}={value}" for key, value in data.items())
            line = f"{line} {pairs}"
        return line


def configure_logging(level: str = "info", json_mode: bool = False) -> logging.Logger:
    """Attach (or replace) the CLI stderr handler on the ``repro`` logger."""
    if level not in _LEVELS:
        raise ValueError(f"unknown log level {level!r}; pick from {sorted(_LEVELS)}")
    logger = logging.getLogger(ROOT_LOGGER_NAME)
    logger.setLevel(_LEVELS[level])
    for handler in list(logger.handlers):
        if getattr(handler, _HANDLER_FLAG, False):
            logger.removeHandler(handler)
    handler = logging.StreamHandler(sys.stderr)
    handler.setFormatter(JsonLogFormatter() if json_mode else TextLogFormatter())
    setattr(handler, _HANDLER_FLAG, True)
    logger.addHandler(handler)
    logger.propagate = False
    return logger
