"""Observability: metrics registry, stage spans, exporters, log setup.

See :mod:`repro.obs.metrics` for the recording model and
:mod:`repro.obs.export` for the Prometheus / JSONL snapshot formats.
"""

from repro.obs.export import (
    PROMETHEUS_CONTENT_TYPE,
    parse_prometheus_text,
    read_snapshot,
    serve_prometheus_once,
    snapshot_lines,
    to_prometheus_text,
    write_prometheus,
    write_snapshot,
)
from repro.obs.logsetup import JsonLogFormatter, configure_logging
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    NULL_RECORDER,
    MetricFamily,
    MetricsRegistry,
    NullRecorder,
    Span,
)
from repro.obs.report import detect_format, render_stats

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "NULL_RECORDER",
    "JsonLogFormatter",
    "MetricFamily",
    "MetricsRegistry",
    "NullRecorder",
    "PROMETHEUS_CONTENT_TYPE",
    "Span",
    "configure_logging",
    "detect_format",
    "parse_prometheus_text",
    "read_snapshot",
    "render_stats",
    "serve_prometheus_once",
    "snapshot_lines",
    "to_prometheus_text",
    "write_prometheus",
    "write_snapshot",
]
