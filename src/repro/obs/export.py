"""Exporters for :class:`~repro.obs.metrics.MetricsRegistry`.

Two formats:

* **Prometheus text exposition** (:func:`to_prometheus_text`) — the
  ``# HELP`` / ``# TYPE`` format every Prometheus-compatible scraper
  reads, written to a file (:func:`write_prometheus`) or served one-shot
  over HTTP (:func:`serve_prometheus_once`, the seam the future
  ``smash serve`` mode will keep open permanently).  A minimal parser
  (:func:`parse_prometheus_text`) backs the golden tests, the CI smoke
  check and ``smash stats``.
* **JSONL snapshot** (:func:`write_snapshot` / :func:`read_snapshot`) —
  one JSON object per line: a meta header, every metric sample, every
  span.  This is the machine-readable artifact ``--trace-out`` writes
  and ``smash stats`` renders.
"""

from __future__ import annotations

import json
import math
from http.server import BaseHTTPRequestHandler, HTTPServer
from pathlib import Path

from repro.errors import ObsError
from repro.obs.metrics import COUNTER, GAUGE, HISTOGRAM, Histogram, MetricsRegistry

SNAPSHOT_FORMAT = "repro.obs.snapshot"
SNAPSHOT_VERSION = 1

PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def _format_value(value: float) -> str:
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if math.isnan(value):
        return "NaN"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _render_labels(names: tuple[str, ...], values: tuple[str, ...]) -> str:
    if not names:
        return ""
    inner = ",".join(
        f'{name}="{_escape_label_value(value)}"'
        for name, value in zip(names, values)
    )
    return "{" + inner + "}"


def _merge_labels(base: str, extra: str) -> str:
    """Append one ``name="value"`` pair to a rendered label block."""
    if not base:
        return "{" + extra + "}"
    return base[:-1] + "," + extra + "}"


def to_prometheus_text(registry: MetricsRegistry) -> str:
    """Render the registry in Prometheus text exposition format.

    Families appear in sorted name order and samples in sorted label
    order, so the rendering of a deterministically-built registry is
    itself deterministic (the golden test relies on this).
    """
    lines: list[str] = []
    for family in registry.families():
        if family.help:
            lines.append(f"# HELP {family.name} {_escape_help(family.help)}")
        lines.append(f"# TYPE {family.name} {family.kind}")
        for label_values, child in family.samples():
            labels = _render_labels(family.label_names, label_values)
            if family.kind == HISTOGRAM:
                assert isinstance(child, Histogram)
                for bound, cumulative in child.cumulative_buckets():
                    le = _merge_labels(labels, f'le="{_format_value(bound)}"')
                    lines.append(f"{family.name}_bucket{le} {cumulative}")
                lines.append(f"{family.name}_sum{labels} {_format_value(child.sum)}")
                lines.append(f"{family.name}_count{labels} {child.count}")
            else:
                lines.append(f"{family.name}{labels} {_format_value(child.value)}")
    return "\n".join(lines) + ("\n" if lines else "")


def write_prometheus(registry: MetricsRegistry, path: str | Path) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(to_prometheus_text(registry))
    return path


def parse_prometheus_text(text: str) -> dict[str, list[tuple[dict[str, str], float]]]:
    """Parse exposition text into ``name -> [(labels, value), ...]``.

    Histogram series come back under their ``_bucket`` / ``_sum`` /
    ``_count`` sample names.  Malformed lines raise
    :class:`~repro.errors.ObsError` — the CI smoke job uses this to
    prove the artifact actually parses.
    """
    series: dict[str, list[tuple[dict[str, str], float]]] = {}
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        name_part, _, value_part = line.rpartition(" ")
        name_part = name_part.strip()
        if not name_part or not value_part:
            raise ObsError(f"line {lineno}: not a prometheus sample: {raw!r}")
        labels: dict[str, str] = {}
        if "{" in name_part:
            name, _, label_part = name_part.partition("{")
            if not label_part.endswith("}"):
                raise ObsError(f"line {lineno}: unterminated label block: {raw!r}")
            body = label_part[:-1]
            while body:
                eq = body.index("=")
                key = body[:eq].strip()
                rest = body[eq + 1:].lstrip()
                if not rest.startswith('"'):
                    raise ObsError(f"line {lineno}: unquoted label value: {raw!r}")
                # Scan the quoted value, honouring backslash escapes.
                out: list[str] = []
                i = 1
                while i < len(rest):
                    ch = rest[i]
                    if ch == "\\" and i + 1 < len(rest):
                        nxt = rest[i + 1]
                        out.append({"n": "\n", "\\": "\\", '"': '"'}.get(nxt, nxt))
                        i += 2
                        continue
                    if ch == '"':
                        break
                    out.append(ch)
                    i += 1
                else:
                    raise ObsError(f"line {lineno}: unterminated label value: {raw!r}")
                labels[key] = "".join(out)
                body = rest[i + 1:].lstrip().lstrip(",").lstrip()
        else:
            name = name_part
        value_text = value_part.strip()
        try:
            value = float("inf") if value_text == "+Inf" else float(value_text)
        except ValueError as error:
            raise ObsError(f"line {lineno}: bad sample value {value_text!r}") from error
        series.setdefault(name, []).append((labels, value))
    return series


def serve_prometheus_once(
    registry: MetricsRegistry,
    host: str = "127.0.0.1",
    port: int = 0,
    ready=None,
) -> tuple[str, int]:
    """Serve the current exposition for exactly one HTTP request.

    Binds, invokes *ready* (if given) with the bound ``(host, port)`` so
    the caller learns an ephemeral port, handles one request, closes.
    Returns the address it served on.
    """
    body = to_prometheus_text(registry).encode("utf-8")

    class _Handler(BaseHTTPRequestHandler):
        def do_GET(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
            self.send_response(200)
            self.send_header("Content-Type", PROMETHEUS_CONTENT_TYPE)
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def log_message(self, format: str, *args: object) -> None:  # noqa: A002
            pass  # one-shot debug servers must not spam stderr

    server = HTTPServer((host, port), _Handler)
    try:
        address = (server.server_address[0], server.server_address[1])
        if ready is not None:
            ready(address)
        server.handle_request()
    finally:
        server.server_close()
    return address


# -- JSONL snapshot ----------------------------------------------------------------


def snapshot_lines(registry: MetricsRegistry) -> list[dict[str, object]]:
    """The snapshot as JSON-compatible row dicts (meta, metrics, spans)."""
    rows: list[dict[str, object]] = [
        {
            "type": "meta",
            "format": SNAPSHOT_FORMAT,
            "version": SNAPSHOT_VERSION,
            "families": len(registry.families()),
            "spans": len(registry.spans),
        }
    ]
    for family in registry.families():
        for label_values, child in family.samples():
            row: dict[str, object] = {
                "type": "metric",
                "kind": family.kind,
                "name": family.name,
                "help": family.help,
                "labels": dict(zip(family.label_names, label_values)),
            }
            if family.kind == HISTOGRAM:
                assert isinstance(child, Histogram)
                row["buckets"] = [
                    ["+Inf" if math.isinf(bound) else bound, cumulative]
                    for bound, cumulative in child.cumulative_buckets()
                ]
                row["sum"] = round(child.sum, 9)
                row["count"] = child.count
            else:
                row["value"] = child.value
            rows.append(row)
    for span in registry.spans:
        rows.append({"type": "span", **span.to_dict()})
    return rows


def write_snapshot(registry: MetricsRegistry, path: str | Path) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as handle:
        for row in snapshot_lines(registry):
            handle.write(json.dumps(row, sort_keys=True) + "\n")
    return path


def read_snapshot(path: str | Path) -> dict[str, list[dict[str, object]]]:
    """Load a snapshot file into ``{"metrics": [...], "spans": [...]}``."""
    metrics: list[dict[str, object]] = []
    spans: list[dict[str, object]] = []
    saw_meta = False
    for lineno, line in enumerate(Path(path).read_text().splitlines(), start=1):
        if not line.strip():
            continue
        try:
            row = json.loads(line)
        except json.JSONDecodeError as error:
            raise ObsError(f"{path}:{lineno}: not JSON: {error}") from error
        kind = row.get("type")
        if kind == "meta":
            if row.get("format") != SNAPSHOT_FORMAT:
                raise ObsError(f"{path} is not a {SNAPSHOT_FORMAT} file")
            saw_meta = True
        elif kind == "metric":
            metrics.append(row)
        elif kind == "span":
            spans.append(row)
        else:
            raise ObsError(f"{path}:{lineno}: unknown row type {kind!r}")
    if not saw_meta:
        raise ObsError(f"{path} has no snapshot meta header")
    return {"metrics": metrics, "spans": spans}
