"""Metrics registry and stage-span tracing.

The instrumentation layer every pipeline surface records into:

* :class:`MetricsRegistry` — Prometheus-shaped metric families
  (counters, gauges, histograms with fixed bucket boundaries, all with
  optional labels) plus an append-only list of :class:`Span` records
  (name, parent, wall time, attributes) describing one run's stage
  tree.
* :class:`NullRecorder` — the default everywhere.  Every method is a
  no-op returning shared singletons, so un-instrumented runs pay a few
  attribute lookups and nothing else, and — because nothing here ever
  touches pipeline data — outputs are byte-identical with metrics on or
  off (test-enforced in ``tests/test_obs.py``).

Timings recorded here are **metadata only**: no compared output
(campaign JSON, alert JSONL, checkpoints) may ever include them.

Recording is single-threaded by design: the pipeline fans per-dimension
*jobs* out to workers, but spans and counters are recorded in the
coordinating thread (worker durations are measured in the worker and
reported back as values, see ``repro.core.pipeline``).
"""

from __future__ import annotations

import re
import time

from repro.errors import ObsError

#: Prometheus-style latency buckets, in seconds.  Chosen to resolve both
#: sub-millisecond store operations and multi-second window mines.
DEFAULT_LATENCY_BUCKETS: tuple[float, ...] = (
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
    30.0,
)

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

COUNTER = "counter"
GAUGE = "gauge"
HISTOGRAM = "histogram"


class Counter:
    """A monotonically increasing value (one labelset of a family)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ObsError(f"counters only go up; inc({amount}) is negative")
        self.value += amount


class Gauge:
    """A value that can go up and down (one labelset of a family)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Histogram:
    """Fixed-boundary cumulative histogram (one labelset of a family)."""

    __slots__ = ("bounds", "bucket_counts", "sum", "count")

    def __init__(self, bounds: tuple[float, ...]) -> None:
        self.bounds = bounds
        # One slot per finite bound plus the implicit +Inf bucket.
        self.bucket_counts = [0] * (len(bounds) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.sum += value
        self.count += 1
        for index, bound in enumerate(self.bounds):
            if value <= bound:
                self.bucket_counts[index] += 1
                return
        self.bucket_counts[-1] += 1

    def cumulative_buckets(self) -> list[tuple[float, int]]:
        """``(le, cumulative_count)`` rows, ending with ``(inf, count)``."""
        rows: list[tuple[float, int]] = []
        running = 0
        for bound, bucket in zip(self.bounds, self.bucket_counts):
            running += bucket
            rows.append((bound, running))
        rows.append((float("inf"), self.count))
        return rows


_CHILD_TYPES = {COUNTER: Counter, GAUGE: Gauge, HISTOGRAM: Histogram}


class MetricFamily:
    """One named metric: a kind, a help string and per-labelset children.

    Zero-label families proxy ``inc``/``set``/``observe``/``dec`` to
    their single child, so ``registry.counter("x").inc()`` works without
    an explicit ``labels()`` hop.
    """

    def __init__(
        self,
        name: str,
        kind: str,
        help: str,  # noqa: A002 - prometheus calls this field HELP
        label_names: tuple[str, ...] = (),
        buckets: tuple[float, ...] | None = None,
    ) -> None:
        if not _NAME_RE.match(name):
            raise ObsError(f"invalid metric name {name!r}")
        for label in label_names:
            if not _LABEL_RE.match(label):
                raise ObsError(f"invalid label name {label!r} on metric {name!r}")
        if kind not in _CHILD_TYPES:
            raise ObsError(f"unknown metric kind {kind!r}")
        if kind == HISTOGRAM:
            buckets = tuple(buckets if buckets is not None else DEFAULT_LATENCY_BUCKETS)
            if list(buckets) != sorted(set(buckets)):
                raise ObsError(
                    f"histogram {name!r} bucket bounds must be strictly increasing"
                )
        elif buckets is not None:
            raise ObsError(f"{kind} {name!r} does not take buckets")
        self.name = name
        self.kind = kind
        self.help = help
        self.label_names = tuple(label_names)
        self.buckets = buckets
        self._children: dict[tuple[str, ...], object] = {}

    def _make_child(self):
        if self.kind == HISTOGRAM:
            assert self.buckets is not None
            return Histogram(self.buckets)
        return _CHILD_TYPES[self.kind]()

    def labels(self, **labels: object):
        """The child for one labelset (created on first use)."""
        if set(labels) != set(self.label_names):
            raise ObsError(
                f"metric {self.name!r} takes labels {list(self.label_names)}, "
                f"got {sorted(labels)}"
            )
        key = tuple(str(labels[name]) for name in self.label_names)
        child = self._children.get(key)
        if child is None:
            child = self._make_child()
            self._children[key] = child
        return child

    def samples(self) -> list[tuple[tuple[str, ...], object]]:
        """``(label_values, child)`` rows in sorted label order."""
        return sorted(self._children.items())

    # -- zero-label conveniences ---------------------------------------------------

    def _default_child(self):
        if self.label_names:
            raise ObsError(
                f"metric {self.name!r} has labels {list(self.label_names)}; "
                f"use .labels(...)"
            )
        return self.labels()

    def inc(self, amount: float = 1.0) -> None:
        self._default_child().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self._default_child().dec(amount)

    def set(self, value: float) -> None:
        self._default_child().set(value)

    def observe(self, value: float) -> None:
        self._default_child().observe(value)


class Span:
    """One completed (or live) stage: name, parent, wall time, attributes.

    Created by :meth:`MetricsRegistry.span` and used as a context
    manager; ``seconds`` is valid after the ``with`` block exits.
    ``parent`` is the index of the enclosing span in the registry's
    ``spans`` list (``None`` for roots), so exporters can rebuild the
    stage tree without any global state.
    """

    __slots__ = ("index", "name", "parent", "start", "seconds", "attributes",
                 "_registry", "_metric", "_tick")

    def __init__(
        self,
        index: int,
        name: str,
        parent: int | None,
        start: float,
        registry: "MetricsRegistry",
        metric: str | None = None,
        attributes: dict[str, object] | None = None,
    ) -> None:
        self.index = index
        self.name = name
        self.parent = parent
        self.start = start
        self.seconds = 0.0
        self.attributes: dict[str, object] = dict(attributes or {})
        self._registry = registry
        self._metric = metric
        self._tick = 0.0

    def set(self, **attributes: object) -> None:
        self.attributes.update(attributes)

    def __enter__(self) -> "Span":
        self._registry._stack.append(self.index)
        self._tick = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.seconds = time.perf_counter() - self._tick
        stack = self._registry._stack
        if stack and stack[-1] == self.index:
            stack.pop()
        if self._metric is not None:
            self._registry.histogram(self._metric).observe(self.seconds)
        return False

    def to_dict(self) -> dict[str, object]:
        return {
            "index": self.index,
            "name": self.name,
            "parent": self.parent,
            "start": round(self.start, 6),
            "seconds": round(self.seconds, 6),
            "attributes": self.attributes,
        }

    def __repr__(self) -> str:
        return f"Span({self.name!r}, {self.seconds:.6f}s, parent={self.parent})"


class MetricsRegistry:
    """The live recorder: metric families plus the span list.

    Families are get-or-create — instrumentation sites call
    ``registry.counter(name, help, labels=...)`` at record time and the
    first call wins the metadata; a later call with a conflicting kind,
    label set or bucket layout raises :class:`~repro.errors.ObsError`
    (two sites silently disagreeing about one name is a bug).
    """

    enabled = True

    def __init__(self) -> None:
        self._families: dict[str, MetricFamily] = {}
        self.spans: list[Span] = []
        self._stack: list[int] = []
        self._origin = time.perf_counter()

    # -- metric families -----------------------------------------------------------

    def _family(
        self,
        name: str,
        kind: str,
        help: str,  # noqa: A002
        label_names: tuple[str, ...],
        buckets: tuple[float, ...] | None = None,
    ) -> MetricFamily:
        family = self._families.get(name)
        if family is None:
            family = MetricFamily(name, kind, help, label_names, buckets)
            self._families[name] = family
            return family
        if family.kind != kind:
            raise ObsError(
                f"metric {name!r} already registered as a {family.kind}, "
                f"not a {kind}"
            )
        if label_names and tuple(label_names) != family.label_names:
            raise ObsError(
                f"metric {name!r} already registered with labels "
                f"{list(family.label_names)}, not {list(label_names)}"
            )
        if kind == HISTOGRAM and buckets is not None and tuple(buckets) != family.buckets:
            raise ObsError(f"metric {name!r} already registered with other buckets")
        return family

    def counter(
        self, name: str, help: str = "", labels: tuple[str, ...] = ()  # noqa: A002
    ) -> MetricFamily:
        return self._family(name, COUNTER, help, tuple(labels))

    def gauge(
        self, name: str, help: str = "", labels: tuple[str, ...] = ()  # noqa: A002
    ) -> MetricFamily:
        return self._family(name, GAUGE, help, tuple(labels))

    def histogram(
        self,
        name: str,
        help: str = "",  # noqa: A002
        labels: tuple[str, ...] = (),
        buckets: tuple[float, ...] | None = None,
    ) -> MetricFamily:
        return self._family(name, HISTOGRAM, help, tuple(labels), buckets)

    def families(self) -> list[MetricFamily]:
        """All families, sorted by name (the exposition order)."""
        return [self._families[name] for name in sorted(self._families)]

    def get(self, name: str) -> MetricFamily | None:
        return self._families.get(name)

    # -- spans ---------------------------------------------------------------------

    def span(
        self, name: str, metric: str | None = None, **attributes: object
    ) -> Span:
        """Open a live span nested under the currently active one.

        Use as a context manager; with *metric*, the span's duration is
        additionally observed into that (zero-label) histogram on exit.
        """
        parent = self._stack[-1] if self._stack else None
        span = Span(
            index=len(self.spans),
            name=name,
            parent=parent,
            start=time.perf_counter() - self._origin,
            registry=self,
            metric=metric,
            attributes=attributes or None,
        )
        self.spans.append(span)
        return span

    def record_span(
        self,
        name: str,
        seconds: float,
        attributes: dict[str, object] | None = None,
        metric: str | None = None,
    ) -> Span:
        """Record an externally timed span (e.g. a worker-measured job).

        The span nests under the currently active live span; its
        duration was measured by the caller, so the wall-clock start is
        approximated as "now minus seconds".
        """
        parent = self._stack[-1] if self._stack else None
        span = Span(
            index=len(self.spans),
            name=name,
            parent=parent,
            start=max(0.0, time.perf_counter() - self._origin - seconds),
            registry=self,
            attributes=attributes,
        )
        span.seconds = seconds
        self.spans.append(span)
        if metric is not None:
            self.histogram(metric).observe(seconds)
        return span

    def spans_named(self, name: str) -> list[Span]:
        return [span for span in self.spans if span.name == name]

    def children_of(self, span: Span) -> list[Span]:
        return [s for s in self.spans if s.parent == span.index]

    def __repr__(self) -> str:
        return (
            f"MetricsRegistry({len(self._families)} families, "
            f"{len(self.spans)} spans)"
        )


class _NullSpan:
    """Shared no-op span; supports the full :class:`Span` surface."""

    __slots__ = ()
    seconds = 0.0
    name = ""
    parent = None
    attributes: dict[str, object] = {}

    def set(self, **attributes: object) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


class _NullMetric:
    """Shared no-op metric; absorbs every family/child method."""

    __slots__ = ()

    def labels(self, **labels: object) -> "_NullMetric":
        return self

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


_NULL_SPAN = _NullSpan()
_NULL_METRIC = _NullMetric()


class NullRecorder:
    """The disabled recorder: every call is a no-op on shared singletons.

    This is the default everywhere a recorder is accepted, so the
    un-instrumented path does no timing calls, allocates nothing and —
    because recording never touches pipeline data in the first place —
    is byte-identical to an instrumented run in every compared output.
    """

    enabled = False

    def counter(
        self, name: str, help: str = "", labels: tuple[str, ...] = ()  # noqa: A002
    ) -> _NullMetric:
        return _NULL_METRIC

    def gauge(
        self, name: str, help: str = "", labels: tuple[str, ...] = ()  # noqa: A002
    ) -> _NullMetric:
        return _NULL_METRIC

    def histogram(
        self,
        name: str,
        help: str = "",  # noqa: A002
        labels: tuple[str, ...] = (),
        buckets: tuple[float, ...] | None = None,
    ) -> _NullMetric:
        return _NULL_METRIC

    def span(self, name: str, metric: str | None = None, **attributes: object) -> _NullSpan:
        return _NULL_SPAN

    def record_span(
        self,
        name: str,
        seconds: float,
        attributes: dict[str, object] | None = None,
        metric: str | None = None,
    ) -> _NullSpan:
        return _NULL_SPAN


#: The process-wide disabled recorder instance.
NULL_RECORDER = NullRecorder()
