"""Human-readable rendering of metrics artifacts (``smash stats``).

Accepts either artifact the CLI writes — a Prometheus text exposition
(``--metrics-out``) or a JSONL span/metrics snapshot (``--trace-out``)
— detects which one it was handed, and renders a terminal report:
counters and gauges as a sorted table, histograms with count/sum/mean,
and (snapshot only) the span tree with per-stage wall times and
attributes.
"""

from __future__ import annotations

import json
import math
from pathlib import Path

from repro.errors import ObsError
from repro.obs.export import parse_prometheus_text, read_snapshot


def detect_format(path: str | Path) -> str:
    """``"snapshot"`` (JSONL) or ``"prometheus"`` (text exposition)."""
    text = Path(path).read_text()
    for line in text.splitlines():
        stripped = line.strip()
        if not stripped:
            continue
        if stripped.startswith("{"):
            try:
                row = json.loads(stripped)
            except json.JSONDecodeError:
                break
            if isinstance(row, dict) and "type" in row:
                return "snapshot"
            break
        return "prometheus"
    raise ObsError(f"{path} is neither a metrics snapshot nor an exposition file")


def _fmt_seconds(value: float) -> str:
    if value >= 1.0:
        return f"{value:.3f}s"
    return f"{value * 1000:.2f}ms"


def _fmt_number(value: float) -> str:
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return f"{value:.6g}"


def _fmt_labels(labels: dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{k}="{v}"' for k, v in sorted(labels.items()))
    return "{" + inner + "}"


def _render_metric_rows(rows: list[tuple[str, str, str]]) -> list[str]:
    if not rows:
        return ["  (no metrics recorded)"]
    width_kind = max(len(kind) for kind, _, _ in rows)
    width_name = max(len(name) for _, name, _ in rows)
    return [
        f"  {kind:<{width_kind}}  {name:<{width_name}}  {value}"
        for kind, name, value in rows
    ]


def _histogram_summary(total: float, count: float) -> str:
    if count <= 0:
        return "count=0"
    mean = total / count
    return (
        f"count={_fmt_number(count)} sum={_fmt_seconds(total)} "
        f"mean={_fmt_seconds(mean)}"
    )


def _rows_from_snapshot(metrics: list[dict[str, object]]) -> list[tuple[str, str, str]]:
    rows: list[tuple[str, str, str]] = []
    for row in metrics:
        name = str(row.get("name", "?")) + _fmt_labels(row.get("labels") or {})
        kind = str(row.get("kind", "?"))
        if kind == "histogram":
            value = _histogram_summary(
                float(row.get("sum", 0.0)), float(row.get("count", 0))
            )
        else:
            value = _fmt_number(float(row.get("value", 0.0)))
        rows.append((kind, name, value))
    return sorted(rows, key=lambda item: (item[1], item[0]))


def _rows_from_prometheus(
    series: dict[str, list[tuple[dict[str, str], float]]],
) -> list[tuple[str, str, str]]:
    # Histograms arrive exploded into _bucket/_sum/_count series; regroup
    # them under the base name and render everything else as scalars.
    histogram_bases = {
        name[: -len("_bucket")] for name in series if name.endswith("_bucket")
    }
    rows: list[tuple[str, str, str]] = []
    for base in sorted(histogram_bases):
        sums = {tuple(sorted(lbl.items())): val for lbl, val in series.get(f"{base}_sum", [])}
        counts = {tuple(sorted(lbl.items())): val for lbl, val in series.get(f"{base}_count", [])}
        for key, count in sorted(counts.items()):
            labels = dict(key)
            rows.append(
                (
                    "histogram",
                    base + _fmt_labels(labels),
                    _histogram_summary(sums.get(key, 0.0), count),
                )
            )
    for name in sorted(series):
        if name in histogram_bases or any(
            name.startswith(base) and name[len(base):] in ("_bucket", "_sum", "_count")
            for base in histogram_bases
        ):
            continue
        for labels, value in series[name]:
            if math.isinf(value):
                continue
            rows.append(("metric", name + _fmt_labels(labels), _fmt_number(value)))
    return rows


def _render_span_tree(spans: list[dict[str, object]], max_attrs: int = 6) -> list[str]:
    if not spans:
        return ["  (no spans recorded)"]
    children: dict[object, list[dict[str, object]]] = {}
    for span in spans:
        children.setdefault(span.get("parent"), []).append(span)
    for rows in children.values():
        rows.sort(key=lambda s: s.get("index", 0))

    lines: list[str] = []

    def walk(parent: object, depth: int) -> None:
        for span in children.get(parent, ()):  # missing key: leaf level
            attributes = span.get("attributes") or {}
            shown = {
                key: attributes[key] for key in list(sorted(attributes))[:max_attrs]
            }
            attr_text = (
                "  " + " ".join(f"{k}={v}" for k, v in shown.items()) if shown else ""
            )
            name = str(span.get("name", "?"))
            seconds = float(span.get("seconds", 0.0))
            pad = "  " * depth
            width = max(1, 34 - 2 * depth)
            lines.append(f"  {pad}{name:<{width}} {_fmt_seconds(seconds):>10}{attr_text}")
            walk(span.get("index"), depth + 1)

    walk(None, 0)
    return lines


def render_stats(path: str | Path) -> str:
    """The full ``smash stats`` report for one artifact file."""
    path = Path(path)
    fmt = detect_format(path)
    lines = [f"# stats: {path} ({fmt})"]
    if fmt == "snapshot":
        snapshot = read_snapshot(path)
        lines.append("")
        lines.append(f"metrics ({len(snapshot['metrics'])} samples):")
        lines.extend(_render_metric_rows(_rows_from_snapshot(snapshot["metrics"])))
        lines.append("")
        lines.append(f"spans ({len(snapshot['spans'])}):")
        lines.extend(_render_span_tree(snapshot["spans"]))
    else:
        series = parse_prometheus_text(path.read_text())
        samples = sum(len(rows) for rows in series.values())
        lines.append("")
        lines.append(f"metrics ({samples} samples):")
        lines.extend(_render_metric_rows(_rows_from_prometheus(series)))
    return "\n".join(lines) + "\n"
