"""Plain-text table rendering for the benchmark harness.

The benches print tables in the paper's layout (rows = verification
sources, columns = thresholds or days), so the output can be read next to
the paper's tables directly.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence


def render_table(
    title: str,
    row_labels: Sequence[str],
    columns: Mapping[str, Mapping[str, object]],
) -> str:
    """Render ``{column -> {row -> value}}`` as an aligned text table."""
    column_names = list(columns)
    label_width = max([len(title)] + [len(label) for label in row_labels])
    widths = [
        max(len(name), *(len(str(columns[name].get(label, ""))) for label in row_labels))
        if row_labels
        else len(name)
        for name in column_names
    ]
    lines = []
    header = title.ljust(label_width)
    for name, width in zip(column_names, widths):
        header += "  " + name.rjust(width)
    lines.append(header)
    lines.append("-" * len(header))
    for label in row_labels:
        line = label.ljust(label_width)
        for name, width in zip(column_names, widths):
            line += "  " + str(columns[name].get(label, "")).rjust(width)
        lines.append(line)
    return "\n".join(lines)


def render_mapping(title: str, mapping: Mapping[str, object]) -> str:
    """Render a flat ``{label: value}`` mapping as a two-column table."""
    if not mapping:
        return f"{title}\n(empty)"
    label_width = max(len(str(k)) for k in mapping)
    lines = [title, "-" * max(len(title), label_width + 10)]
    for key, value in mapping.items():
        rendered = f"{value:.4f}" if isinstance(value, float) else str(value)
        lines.append(f"{str(key).ljust(label_width)}  {rendered}")
    return "\n".join(lines)
