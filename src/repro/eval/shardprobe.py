"""Subprocess probe for the sharded-mine benchmark.

``ru_maxrss`` is a *process-lifetime* high-water mark, so peak-memory
comparisons between mining configurations are only honest when every
configuration runs in its own fresh interpreter.  The sharded suite
(:func:`repro.eval.bench.sharded_scaling`) therefore spawns this module
once per ``(shards, workers, executor, dispatch, out_of_core)`` row::

    python -m repro.eval.shardprobe '{"store_root": ..., "day": 0, ...}'

The probe loads the benchmark day from the coordinator's
:class:`~repro.stream.store.TraceStore` (digest-verified, the same
partition every row sees), runs one mine + finish under the requested
configuration, and prints a single JSON object: timings, throughput,
peak RSS (self and, for process-executor rows, the worker children),
and a SHA-256 digest of the full result document so the coordinator can
assert byte-identical output across every shard count.

``ru_maxrss`` never resets, and the partition load (materialising every
request from JSON) sets a high-water mark the mine phase may never
exceed — which would make whole-process peaks identical across rows and
hide what sharding changes.  On Linux the kernel's ``VmHWM`` counter
*can* be reset (``echo 5 > /proc/self/clear_refs``), so the probe resets
it after the load and reports ``mine_peak_rss_kb``: the high-water mark
of the mine phase alone, the number the shard-size-bounded-memory claim
is about.  ``peak_rss_kb`` stays the process-lifetime ``ru_maxrss`` for
context.

The probe separates the coordinator's peak from the workers': this
process *is* the coordinator, so its mine-phase ``VmHWM`` is reported as
``coordinator_peak_rss_kb``, while ``worker_peak_rss_kb`` is the
children's ``ru_maxrss`` (subprocess-dispatched shard jobs, process
executors).  An ``out_of_core`` row additionally drops the loaded
partition before mining and hands the mine ``(day, digest)`` references
instead, so the coordinator never holds a raw request.
"""

from __future__ import annotations

import hashlib
import json
import resource
import sys
import time


def _reset_peak_rss() -> bool:
    """Reset the kernel's VmHWM counter for this process (Linux only)."""
    try:
        with open("/proc/self/clear_refs", "w") as handle:
            handle.write("5")
        return True
    except OSError:
        return False


def _current_peak_rss_kb() -> int:
    """VmHWM in KB — peak RSS since the last :func:`_reset_peak_rss`."""
    try:
        with open("/proc/self/status") as handle:
            for line in handle:
                if line.startswith("VmHWM:"):
                    return int(line.split()[1])
    except OSError:
        pass
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss


def run_probe(spec: dict) -> dict[str, object]:
    from repro.config import SmashConfig
    from repro.core.pipeline import SmashPipeline
    from repro.eval.export import result_to_dict
    from repro.stream.store import TraceStore

    out_of_core = bool(spec.get("out_of_core", False))
    day = int(spec["day"])
    digest = str(spec["digest"])
    tick = time.perf_counter()
    store = TraceStore(spec["store_root"])
    partition = store.ref(day, digest).load()
    load_seconds = time.perf_counter() - tick

    fault_plan = None
    if spec.get("fault_plan") is not None:
        from repro.core.faults import FaultPlan

        fault_plan = FaultPlan.from_dict(spec["fault_plan"])
    config = SmashConfig().replace(
        shards=int(spec["shards"]),
        workers=int(spec["workers"]),
        executor=str(spec["executor"]),
        dispatch=str(spec.get("dispatch", "pool")),
        out_of_core=out_of_core,
        shard_retries=int(spec.get("shard_retries", 2)),
        shard_timeout=float(spec.get("shard_timeout", 600.0)),
        fault_plan=fault_plan,
    )
    config.validate()
    pipeline = SmashPipeline(config)
    if out_of_core:
        # The coordinator's whole point in this mode is never holding the
        # partition: keep only the sidecars, drop the loaded day, and let
        # store-direct shard jobs re-read it in their own processes.
        whois, redirects = partition.whois, partition.redirects
        num_requests = store.request_count(day, digest)
        del partition
        import gc

        gc.collect()
        phase_peaks = _reset_peak_rss()
        tick = time.perf_counter()
        mined = pipeline.mine(
            None,
            whois=whois,
            partitions=[(day, digest)],
            store_root=spec["store_root"],
            shard_boundaries=(num_requests,),
        )
    else:
        whois, redirects = partition.whois, partition.redirects
        num_requests = len(partition.trace)
        phase_peaks = _reset_peak_rss()
        tick = time.perf_counter()
        mined = pipeline.mine(partition.trace, whois=whois)
    mine_seconds = time.perf_counter() - tick
    mine_peak_rss_kb = _current_peak_rss_kb()
    result = pipeline.finish(mined, redirects)
    total_seconds = time.perf_counter() - tick

    document = json.dumps(result_to_dict(result), sort_keys=True)
    usage = resource.getrusage(resource.RUSAGE_SELF)
    children = resource.getrusage(resource.RUSAGE_CHILDREN)
    return {
        "shards": config.shards,
        "workers": config.workers,
        "executor": config.executor,
        "dispatch": config.dispatch,
        "out_of_core": out_of_core,
        "chaos": fault_plan is not None,
        "requests": num_requests,
        "servers_mined": len(mined.trace.servers),
        "campaigns": len(result.campaigns),
        "load_seconds": round(load_seconds, 6),
        "mine_seconds": round(mine_seconds, 6),
        "total_seconds": round(total_seconds, 6),
        "requests_per_second": round(num_requests / mine_seconds, 1),
        "peak_rss_kb": usage.ru_maxrss,
        "mine_peak_rss_kb": mine_peak_rss_kb,
        # The coordinator/worker RSS split: with subprocess dispatch the
        # map phase's memory lives in the children, so the coordinator
        # peak is the out-of-core claim and the worker peak its price.
        "coordinator_peak_rss_kb": mine_peak_rss_kb,
        "worker_peak_rss_kb": children.ru_maxrss,
        "mine_phase_isolated": phase_peaks,
        "children_peak_rss_kb": children.ru_maxrss,
        "digest": hashlib.sha256(document.encode("utf-8")).hexdigest(),
    }


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if len(argv) != 1:
        print("usage: python -m repro.eval.shardprobe '<spec json>'", file=sys.stderr)
        return 2
    print(json.dumps(run_probe(json.loads(argv[0])), sort_keys=True))
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
