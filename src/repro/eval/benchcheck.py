"""Benchmark regression gate (``smash bench --check``).

Compares a freshly-run benchmark document against the committed
baselines (``BENCH_mine.json`` / ``BENCH_stream.json``) and fails on
regressions.  The committed baselines were measured on a developer
machine and CI runs on whatever runner it gets, so absolute timings are
never compared — every gated quantity is a *within-run ratio* that
travels across machines:

* mine suite: the interned-vs-legacy ``speedup`` per matching scale, and
  the hard ``identical_output`` flag;
* sharded suite: ``identical_output``, the within-run invariants that
  the most-sharded serial mine's peak RSS and the out-of-core
  coordinator's mine-phase peak both stay at or below the single-pass
  baseline's (the properties the sharded and out-of-core modes exist
  for), the fault-injected chaos twin's mine-time overhead against the
  fault-free row (``sharded.chaos_overhead_bounded``), and — when the
  baseline holds a row at the same scale — peak-RSS growth and
  coordinator-RSS-reduction shrink against it;
* stream suite: the cold-vs-incremental ``speedup`` per matching
  workload, and the checkpoint ``shrink_factor``.

Rows with no matching baseline row (CI benches at smaller scales than
the committed documents) are reported as ``skipped`` rather than
silently dropped.  Thresholds are noise-tolerant by default: a ratio
must fall more than ``tolerance`` (fractionally) below the baseline to
fail, and an RSS bound must grow more than ``rss_tolerance`` above it.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

#: Fractional slack on ratio regressions (speedup, shrink factor).
DEFAULT_TOLERANCE = 0.35

#: Fractional slack on peak-RSS growth bounds.
DEFAULT_RSS_TOLERANCE = 0.25

#: Ceiling on the sharded suite's fault-free-vs-retrying mine-time
#: ratio.  The chaos twin repeats two shard jobs (a crashed worker, a
#: torn spill) out of the full batch, so its mine time should sit well
#: under double the fault-free row's; 3.0 leaves room for runner noise
#: at CI's small bench scales while still catching a retry loop that
#: re-runs the world.  A within-run ratio, valid on any machine.
CHAOS_OVERHEAD_BOUND = 3.0


def _check(
    checks: list[dict[str, Any]],
    problems: list[str],
    name: str,
    ok: bool | None,
    detail: str,
) -> None:
    """Record one comparison; ``ok=None`` means skipped (no baseline row)."""
    status = "skipped" if ok is None else ("ok" if ok else "fail")
    checks.append({"check": name, "status": status, "detail": detail})
    if ok is False:
        problems.append(f"{name}: {detail}")


def compare_mine(
    fresh: dict[str, Any],
    baseline: dict[str, Any],
    tolerance: float = DEFAULT_TOLERANCE,
    rss_tolerance: float = DEFAULT_RSS_TOLERANCE,
) -> tuple[list[str], list[dict[str, Any]]]:
    """Problems and per-check records for a mine-suite document pair."""
    problems: list[str] = []
    checks: list[dict[str, Any]] = []

    baseline_rows = {
        row["scale"]: row for row in baseline.get("scales", ()) if "scale" in row
    }
    for row in fresh.get("scales", ()):
        scale = row.get("scale")
        _check(
            checks,
            problems,
            f"mine.identical_output[scale={scale}]",
            row.get("identical_output") is True,
            "interned and legacy cores must produce byte-identical output",
        )
        base_row = baseline_rows.get(scale)
        speedup = row.get("speedup")
        base_speedup = base_row.get("speedup") if base_row else None
        if base_speedup is None or speedup is None:
            _check(
                checks,
                problems,
                f"mine.speedup[scale={scale}]",
                None,
                "no baseline row at this scale",
            )
            continue
        floor = base_speedup * (1.0 - tolerance)
        _check(
            checks,
            problems,
            f"mine.speedup[scale={scale}]",
            speedup >= floor,
            f"fresh {speedup} vs baseline {base_speedup} (floor {round(floor, 3)})",
        )

    sharded = fresh.get("sharded")
    if isinstance(sharded, dict):
        base_sharded = baseline.get("sharded")
        base_sharded = base_sharded if isinstance(base_sharded, dict) else {}
        _check(
            checks,
            problems,
            "sharded.identical_output",
            sharded.get("identical_output") is True,
            "every shard configuration must produce byte-identical output",
        )
        chaos = sharded.get("chaos")
        overhead = chaos.get("overhead_ratio") if isinstance(chaos, dict) else None
        if isinstance(overhead, (int, float)):
            _check(
                checks,
                problems,
                "sharded.chaos_overhead_bounded",
                overhead <= CHAOS_OVERHEAD_BOUND,
                f"fault-injected mine took {overhead}x the fault-free row "
                f"(bound {CHAOS_OVERHEAD_BOUND}x)",
            )
        else:
            _check(
                checks,
                problems,
                "sharded.chaos_overhead_bounded",
                None,
                "no chaos twin row in the fresh document",
            )
        single = sharded.get("baseline_mine_peak_rss_kb")
        most = sharded.get("sharded_mine_peak_rss_kb")
        if isinstance(single, (int, float)) and isinstance(most, (int, float)):
            bound = single * (1.0 + rss_tolerance)
            _check(
                checks,
                problems,
                "sharded.mine_rss_bounded",
                most <= bound,
                f"most-sharded mine peak {most} KB vs single-pass "
                f"{single} KB (bound {round(bound)} KB)",
            )
        ooc = sharded.get("out_of_core_coordinator_peak_rss_kb")
        if isinstance(single, (int, float)) and isinstance(ooc, (int, float)):
            # The out-of-core coordinator never assembles the window
            # trace, so its mine-phase peak must stay at or below the
            # single-pass coordinator's — a within-run invariant, valid
            # on any runner.
            bound = single * (1.0 + rss_tolerance)
            _check(
                checks,
                problems,
                "sharded.out_of_core_rss_bounded",
                ooc <= bound,
                f"out-of-core coordinator peak {ooc} KB vs single-pass "
                f"{single} KB (bound {round(bound)} KB)",
            )
        else:
            _check(
                checks,
                problems,
                "sharded.out_of_core_rss_bounded",
                None,
                "no out-of-core row in the fresh document",
            )
        if base_sharded.get("scale") == sharded.get("scale"):
            base_most = base_sharded.get("sharded_mine_peak_rss_kb")
            if isinstance(most, (int, float)) and isinstance(base_most, (int, float)):
                bound = base_most * (1.0 + rss_tolerance)
                _check(
                    checks,
                    problems,
                    "sharded.mine_rss_growth",
                    most <= bound,
                    f"fresh mine peak {most} KB vs baseline {base_most} KB "
                    f"(bound {round(bound)} KB)",
                )
            reduction = sharded.get("coordinator_rss_reduction")
            base_reduction = base_sharded.get("coordinator_rss_reduction")
            if isinstance(reduction, (int, float)) and isinstance(
                base_reduction, (int, float)
            ):
                floor = base_reduction * (1.0 - tolerance)
                _check(
                    checks,
                    problems,
                    "sharded.coordinator_rss_shrink",
                    reduction >= floor,
                    f"fresh coordinator RSS reduction {reduction}x vs baseline "
                    f"{base_reduction}x (floor {round(floor, 3)}x)",
                )
        else:
            _check(
                checks,
                problems,
                "sharded.mine_rss_growth",
                None,
                "no baseline sharded row at this scale",
            )
            _check(
                checks,
                problems,
                "sharded.coordinator_rss_shrink",
                None,
                "no baseline sharded row at this scale",
            )
    return problems, checks


def compare_stream(
    fresh: dict[str, Any],
    baseline: dict[str, Any],
    tolerance: float = DEFAULT_TOLERANCE,
) -> tuple[list[str], list[dict[str, Any]]]:
    """Problems and per-check records for a stream-suite document pair."""
    problems: list[str] = []
    checks: list[dict[str, Any]] = []

    base_workloads = baseline.get("workloads")
    base_workloads = base_workloads if isinstance(base_workloads, dict) else {}
    workloads = fresh.get("workloads")
    workloads = workloads if isinstance(workloads, dict) else {}
    for name in sorted(workloads):
        speedup = workloads[name].get("speedup")
        base_speedup = base_workloads.get(name, {}).get("speedup")
        if speedup is None or base_speedup is None:
            _check(
                checks,
                problems,
                f"stream.speedup[{name}]",
                None,
                "no comparable baseline workload",
            )
            continue
        floor = base_speedup * (1.0 - tolerance)
        _check(
            checks,
            problems,
            f"stream.speedup[{name}]",
            speedup >= floor,
            f"fresh {speedup} vs baseline {base_speedup} (floor {round(floor, 3)})",
        )

    shrink = fresh.get("checkpoint", {}).get("shrink_factor")
    base_shrink = baseline.get("checkpoint", {}).get("shrink_factor")
    if shrink is None or base_shrink is None:
        _check(
            checks, problems, "stream.checkpoint_shrink", None, "no baseline value"
        )
    else:
        floor = base_shrink * (1.0 - tolerance)
        _check(
            checks,
            problems,
            "stream.checkpoint_shrink",
            shrink >= floor,
            f"fresh {shrink} vs baseline {base_shrink} (floor {round(floor, 3)})",
        )
    return problems, checks


def _suite_of(document: dict[str, Any]) -> str:
    """``mine`` or ``stream``, from the document's own shape."""
    if "workloads" in document or document.get("benchmark") == "repro.stream":
        return "stream"
    return "mine"


def baseline_name(document: dict[str, Any]) -> str:
    """The committed baseline filename a fresh document compares against."""
    return "BENCH_stream.json" if _suite_of(document) == "stream" else "BENCH_mine.json"


def run_check(
    fresh_paths: list[Path],
    baseline_dir: Path,
    tolerance: float = DEFAULT_TOLERANCE,
    rss_tolerance: float = DEFAULT_RSS_TOLERANCE,
    report_path: Path | None = None,
) -> int:
    """Compare fresh documents against committed baselines; 0 = green.

    Writes a machine-readable comparison report to *report_path* (kept
    apart from the benchmark documents so a CI check never dirties the
    working tree) and prints a one-line verdict per check.
    """
    suites: list[dict[str, Any]] = []
    all_problems: list[str] = []
    for path in fresh_paths:
        fresh = json.loads(Path(path).read_text())
        base_path = baseline_dir / baseline_name(fresh)
        if not base_path.exists():
            all_problems.append(f"missing committed baseline {base_path}")
            suites.append(
                {
                    "fresh": str(path),
                    "baseline": str(base_path),
                    "problems": [f"missing committed baseline {base_path}"],
                    "checks": [],
                }
            )
            continue
        baseline = json.loads(base_path.read_text())
        if _suite_of(fresh) == "stream":
            problems, checks = compare_stream(fresh, baseline, tolerance)
        else:
            problems, checks = compare_mine(fresh, baseline, tolerance, rss_tolerance)
        all_problems.extend(problems)
        suites.append(
            {
                "fresh": str(path),
                "baseline": str(base_path),
                "problems": problems,
                "checks": checks,
            }
        )

    report = {
        "ok": not all_problems,
        "tolerance": tolerance,
        "rss_tolerance": rss_tolerance,
        "suites": suites,
    }
    if report_path is not None:
        report_path.parent.mkdir(parents=True, exist_ok=True)
        report_path.write_text(json.dumps(report, indent=1, sort_keys=True) + "\n")

    for suite in suites:
        for check in suite["checks"]:
            print(f"check {check['status']:>7}  {check['check']}: {check['detail']}")
    if all_problems:
        print(f"bench check FAILED ({len(all_problems)} problem(s)):")
        for problem in all_problems:
            print(f"  - {problem}")
    else:
        print("bench check passed")
    if report_path is not None:
        print(f"check report -> {report_path}")
    return 1 if all_problems else 0
