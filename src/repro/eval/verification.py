"""Verification of SMASH inferences against the ground-truth sources.

Implements Section V-A1/V-A2's methodology exactly:

**Campaign verdicts** (Table II rows), in precedence order:

1. ``ids2012_total`` — every server confirmed by the 2012 IDS signatures;
2. ``ids2013_total`` — every server confirmed by the 2013 signatures (and
   none by 2012 — otherwise it would fall in a 2012 row);
3. ``ids2012_partial`` — some servers confirmed by 2012 signatures;
4. ``ids2013_partial`` — some servers confirmed only by 2013 signatures;
5. ``blacklist_partial`` — no IDS hit, some servers blacklisted;
6. ``suspicious`` — no IDS/blacklist hit, but at least half of the servers
   either return error codes in the traffic or no longer exist when
   probed (malicious domains are short-lived, footnote 8);
7. ``false_positive`` — everything else (an upper bound: some may be
   unconfirmable malicious campaigns).

``false_positive_updated`` additionally excludes the paper's two noisy
categories (Torrent and TeamViewer-style pools), identified here through
the generator's noise annotations.

**Server labels** (Table III rows): ``ids2012``, ``ids2013`` (2013-only),
``blacklist``, ``suspicious`` (member of a suspicious campaign),
``new_server`` (unconfirmed but sharing requested path, User-Agent or
parameter pattern with a confirmed server — the paper's "New Servers",
i.e. previously undetected malicious servers), ``false_positive``.
"""

from __future__ import annotations

import enum
from collections import Counter, defaultdict
from dataclasses import dataclass, field

from repro.core.results import Campaign, SmashResult
from repro.domains.names import normalize_server_name
from repro.httplog.trace import HttpTrace
from repro.httplog.useragent import is_generic_user_agent
from repro.httplog.uri import split_uri
from repro.synth.generator import SyntheticDataset


class ServerLabel(enum.Enum):
    IDS2012 = "ids2012"
    IDS2013 = "ids2013"
    BLACKLIST = "blacklist"
    SUSPICIOUS = "suspicious"
    NEW_SERVER = "new_server"
    FALSE_POSITIVE = "false_positive"


#: Campaign verdicts in precedence order.
CAMPAIGN_VERDICTS: tuple[str, ...] = (
    "ids2012_total",
    "ids2013_total",
    "ids2012_partial",
    "ids2013_partial",
    "blacklist_partial",
    "suspicious",
    "false_positive",
)

#: Noise categories the paper's "FP (Updated)" row excludes.
NOISY_FP_CATEGORIES = frozenset({"torrent", "collaboration"})


@dataclass(frozen=True)
class CampaignVerdict:
    campaign: Campaign
    verdict: str
    server_labels: dict[str, ServerLabel]
    is_noisy_fp: bool = False


@dataclass
class VerificationSummary:
    """Aggregated counts: one Table-II column + one Table-III column."""

    thresh: float
    num_campaigns: int = 0
    campaign_counts: Counter = field(default_factory=Counter)
    num_servers: int = 0
    server_counts: Counter = field(default_factory=Counter)
    total_trace_servers: int = 0
    verdicts: list[CampaignVerdict] = field(default_factory=list)

    @property
    def fp_campaigns(self) -> int:
        return self.campaign_counts["false_positive"]

    @property
    def fp_campaigns_updated(self) -> int:
        return self.campaign_counts["false_positive"] - self.campaign_counts[
            "false_positive_noisy"
        ]

    @property
    def fp_servers(self) -> int:
        return self.server_counts[ServerLabel.FALSE_POSITIVE.value]

    @property
    def fp_servers_updated(self) -> int:
        return self.fp_servers - self.server_counts["false_positive_noisy"]

    @property
    def fp_rate(self) -> float:
        """FP servers over all servers of the (aggregated) input trace —
        the denominator behind the paper's 0.064% headline."""
        if self.total_trace_servers == 0:
            return 0.0
        return self.fp_servers / self.total_trace_servers

    def table2_row(self) -> dict[str, int]:
        row = {"SMASH": self.num_campaigns}
        row["IDS 2012 total"] = self.campaign_counts["ids2012_total"]
        row["IDS 2013 total"] = self.campaign_counts["ids2013_total"]
        row["IDS 2012 partial"] = self.campaign_counts["ids2012_partial"]
        row["IDS 2013 partial"] = self.campaign_counts["ids2013_partial"]
        row["Blacklist partial"] = self.campaign_counts["blacklist_partial"]
        row["Suspicious"] = self.campaign_counts["suspicious"]
        row["False Positives"] = self.fp_campaigns
        row["FP (Updated)"] = self.fp_campaigns_updated
        return row

    def table3_row(self) -> dict[str, int]:
        row = {"SMASH": self.num_servers}
        row["IDS 2012"] = self.server_counts[ServerLabel.IDS2012.value]
        row["IDS 2013"] = self.server_counts[ServerLabel.IDS2013.value]
        row["Blacklist"] = self.server_counts[ServerLabel.BLACKLIST.value]
        row["New Servers"] = self.server_counts[ServerLabel.NEW_SERVER.value]
        row["Suspicious"] = self.server_counts[ServerLabel.SUSPICIOUS.value]
        row["False Positives"] = self.fp_servers
        row["FP (Updated)"] = self.fp_servers_updated
        return row


@dataclass(frozen=True)
class _ServerProfile:
    """Request-pattern profile used for "New Servers" confirmation."""

    paths: frozenset[str]
    user_agents: frozenset[str]
    parameter_patterns: frozenset[tuple[str, ...]]
    uri_files: frozenset[str]

    def matches(self, other: "_ServerProfile") -> bool:
        """Paper Section V-A2: compare requested path, User-Agent and
        parameter patterns with confirmed servers."""
        if self.user_agents & other.user_agents:
            return True
        if self.parameter_patterns & other.parameter_patterns:
            return True
        if self.paths & other.paths and self.uri_files & other.uri_files:
            return True
        return False


class Verifier:
    """Verify a :class:`SmashResult` against one dataset's ground truth."""

    def __init__(self, dataset: SyntheticDataset) -> None:
        self.dataset = dataset
        trace = dataset.trace
        self.ids2012_servers = frozenset(
            dataset.ids2012.detected_servers(trace, normalize_server_name)
        )
        ids2013_all = frozenset(
            dataset.ids2013.detected_servers(trace, normalize_server_name)
        )
        #: Servers only the newer signature generation knows.
        self.ids2013_servers = ids2013_all - self.ids2012_servers
        self._profiles = self._build_profiles(trace)
        self._error_servers = self._servers_with_errors(trace)

    # -- profile construction ----------------------------------------------------

    @staticmethod
    def _build_profiles(trace: HttpTrace) -> dict[str, _ServerProfile]:
        paths: dict[str, set[str]] = defaultdict(set)
        agents: dict[str, set[str]] = defaultdict(set)
        params: dict[str, set[tuple[str, ...]]] = defaultdict(set)
        files: dict[str, set[str]] = defaultdict(set)
        for request in trace:
            server = normalize_server_name(request.host)
            parts = split_uri(request.uri)
            if parts.path:
                paths[server].add(parts.path)
            if not is_generic_user_agent(request.user_agent):
                agents[server].add(request.user_agent)
            if request.parameter_names:
                params[server].add(request.parameter_names)
            files[server].add(request.uri_file)
        return {
            server: _ServerProfile(
                paths=frozenset(paths[server]),
                user_agents=frozenset(agents.get(server, ())),
                parameter_patterns=frozenset(params.get(server, ())),
                uri_files=frozenset(files[server]),
            )
            for server in files
        }

    @staticmethod
    def _servers_with_errors(trace: HttpTrace) -> frozenset[str]:
        """Servers where at least half of the observed requests errored."""
        total: Counter[str] = Counter()
        errors: Counter[str] = Counter()
        for request in trace:
            server = normalize_server_name(request.host)
            total[server] += 1
            if request.is_error:
                errors[server] += 1
        return frozenset(
            server for server in total if errors[server] * 2 >= total[server]
        )

    # -- verdicts -----------------------------------------------------------------

    def _is_confirmed(self, server: str) -> bool:
        return (
            server in self.ids2012_servers
            or server in self.ids2013_servers
            or self.dataset.blacklists.is_confirmed(server)
        )

    def _campaign_verdict(self, campaign: Campaign) -> str:
        servers = campaign.servers
        in_2012 = {s for s in servers if s in self.ids2012_servers}
        in_2013 = {s for s in servers if s in self.ids2013_servers}
        blacklisted = {
            s for s in servers if self.dataset.blacklists.is_confirmed(s)
        }
        if in_2012 == servers:
            return "ids2012_total"
        if not in_2012 and in_2013 == servers:
            return "ids2013_total"
        if in_2012:
            return "ids2012_partial"
        if in_2013:
            return "ids2013_partial"
        if blacklisted:
            return "blacklist_partial"
        # Suspicious: at least half of the servers error in-traffic or are
        # gone at verification time.
        gone_or_error = sum(
            1
            for s in servers
            if s in self._error_servers or not self.dataset.liveness.is_alive(s)
        )
        if gone_or_error * 2 >= len(servers):
            return "suspicious"
        return "false_positive"

    def _server_labels(
        self,
        campaign: Campaign,
        verdict: str,
        confirmed_profiles: list[_ServerProfile],
    ) -> dict[str, ServerLabel]:
        labels: dict[str, ServerLabel] = {}
        for server in campaign.servers:
            if server in self.ids2012_servers:
                labels[server] = ServerLabel.IDS2012
            elif server in self.ids2013_servers:
                labels[server] = ServerLabel.IDS2013
            elif self.dataset.blacklists.is_confirmed(server):
                labels[server] = ServerLabel.BLACKLIST
            elif verdict == "suspicious":
                labels[server] = ServerLabel.SUSPICIOUS
            elif verdict == "false_positive":
                labels[server] = ServerLabel.FALSE_POSITIVE
            else:
                profile = self._profiles.get(server)
                if profile is not None and any(
                    profile.matches(confirmed) for confirmed in confirmed_profiles
                ):
                    labels[server] = ServerLabel.NEW_SERVER
                else:
                    labels[server] = ServerLabel.FALSE_POSITIVE
        return labels

    def _noisy_fraction(self, campaign: Campaign) -> float:
        noise = self.dataset.truth.noise_category
        noisy = sum(
            1
            for server in campaign.servers
            if noise.get(server) in NOISY_FP_CATEGORIES
        )
        return noisy / len(campaign.servers) if campaign.servers else 0.0

    def verify(
        self,
        result: SmashResult,
        thresh: float,
        min_clients: int = 2,
        max_clients: int | None = None,
    ) -> VerificationSummary:
        """Verify the campaigns of *result* in the given client-count band."""
        campaigns = result.campaigns_with_clients(min_clients, max_clients)
        summary = VerificationSummary(thresh=thresh)
        summary.total_trace_servers = len(
            {normalize_server_name(h) for h in self.dataset.trace.servers}
        )

        # Profiles of all servers confirmed by IDS or blacklists, used to
        # recognise "New Servers" campaign-wide.
        confirmed_servers = set(self.ids2012_servers) | set(self.ids2013_servers)
        for campaign in campaigns:
            confirmed_servers |= {
                s
                for s in campaign.servers
                if self.dataset.blacklists.is_confirmed(s)
            }
        confirmed_profiles = [
            self._profiles[s] for s in sorted(confirmed_servers) if s in self._profiles
        ]

        for campaign in campaigns:
            verdict = self._campaign_verdict(campaign)
            labels = self._server_labels(campaign, verdict, confirmed_profiles)
            noisy = verdict == "false_positive" and self._noisy_fraction(campaign) >= 0.5
            summary.verdicts.append(
                CampaignVerdict(
                    campaign=campaign,
                    verdict=verdict,
                    server_labels=labels,
                    is_noisy_fp=noisy,
                )
            )
            summary.num_campaigns += 1
            summary.campaign_counts[verdict] += 1
            if noisy:
                summary.campaign_counts["false_positive_noisy"] += 1
            for server, label in labels.items():
                summary.num_servers += 1
                summary.server_counts[label.value] += 1
                if label is ServerLabel.FALSE_POSITIVE and (
                    self.dataset.truth.noise_category.get(server)
                    in NOISY_FP_CATEGORIES
                ):
                    summary.server_counts["false_positive_noisy"] += 1
        return summary

    # -- false negatives (Section V-A2) ---------------------------------------------

    def false_negatives(self, result: SmashResult) -> dict[str, frozenset[str]]:
        """IDS threat groups with members SMASH missed.

        Ground truth: servers grouped by IDS threat identifier ("assuming
        all the servers in the same threat identifier belong to the same
        malicious campaign").  Returns threat -> missed servers, for
        threats where at least one server was missed.
        """
        detected = result.detected_servers
        groups = self.dataset.ids2012.threat_groups(
            self.dataset.trace, normalize_server_name
        )
        missed: dict[str, frozenset[str]] = {}
        for threat, servers in sorted(groups.items()):
            absent = frozenset(s for s in servers if s not in detected)
            if absent:
                missed[threat] = absent
        return missed
