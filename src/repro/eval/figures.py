"""Series computations behind the paper's figures.

Each function returns plain data (lists/dicts) so benchmarks can both
print paper-shaped output and assert on shape properties.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Iterable, Sequence
from dataclasses import dataclass

from repro.core.results import Campaign, SmashResult
from repro.domains.names import normalize_server_name
from repro.groundtruth.ids import SignatureIds
from repro.httplog.trace import HttpTrace
from repro.synth.generator import SyntheticDataset
from repro.util.stats import ecdf, percentile_of


# -- Figure 6: campaign-size and client-count CDFs ------------------------------


@dataclass(frozen=True)
class SizeDistributions:
    campaign_sizes: list[int]
    client_counts: list[int]

    def campaign_size_cdf(self) -> list[tuple[float, float]]:
        return ecdf(self.campaign_sizes)

    def client_count_cdf(self) -> list[tuple[float, float]]:
        return ecdf(self.client_counts)

    def fraction_small_campaigns(self, size: int = 18) -> float:
        """Paper: ~75% of campaigns have fewer than 18 servers."""
        return percentile_of(self.campaign_sizes, size)

    def fraction_single_client(self) -> float:
        """Paper: ~75% of campaigns involve a single client."""
        return percentile_of(self.client_counts, 1)


def size_distributions(campaigns: Iterable[Campaign]) -> SizeDistributions:
    campaigns = list(campaigns)
    return SizeDistributions(
        campaign_sizes=[c.num_servers for c in campaigns],
        client_counts=[c.num_clients for c in campaigns],
    )


# -- Figure 7: persistent vs agile campaigns --------------------------------------


@dataclass(frozen=True)
class PersistenceDay:
    day: int
    old_servers: int
    new_servers_old_clients: int
    new_servers_new_clients: int

    @property
    def total(self) -> int:
        return (
            self.old_servers
            + self.new_servers_old_clients
            + self.new_servers_new_clients
        )


def persistence_series(
    daily_detections: Sequence[tuple[frozenset[str], frozenset[str]]],
) -> list[PersistenceDay]:
    """Classify each day's detected servers against the benchmark day.

    Input: per day, ``(detected servers, involved clients)``.  Day 0 is
    the benchmark; for every later day servers split into

    * ``old_servers`` — persistent campaigns (seen on an earlier day);
    * ``new_servers_old_clients`` — agile campaigns (new server, but a
      client already seen in malicious activity);
    * ``new_servers_new_clients`` — entirely new campaigns.
    """
    series: list[PersistenceDay] = []
    seen_servers: set[str] = set()
    seen_clients: set[str] = set()
    for day, (servers, clients) in enumerate(daily_detections):
        old = servers & seen_servers
        new = servers - seen_servers
        # A "new" server belongs to an old-client (agile) campaign when the
        # day's client set intersects previously seen malicious clients.
        # Server-level attribution needs per-server clients; callers who
        # have them should use persistence_series_detailed instead.
        if clients & seen_clients:
            new_old = new
            new_new: set[str] = set()
        else:
            new_old = set()
            new_new = set(new)
        series.append(
            PersistenceDay(
                day=day,
                old_servers=len(old),
                new_servers_old_clients=len(new_old),
                new_servers_new_clients=len(new_new),
            )
        )
        seen_servers |= servers
        seen_clients |= clients
    return series


def persistence_series_detailed(
    daily_campaigns: Sequence[Sequence[Campaign]],
) -> list[PersistenceDay]:
    """Per-server persistence classification with campaign-level client
    attribution (the Figure-7 computation)."""
    series: list[PersistenceDay] = []
    seen_servers: set[str] = set()
    seen_clients: set[str] = set()
    for day, campaigns in enumerate(daily_campaigns):
        old = 0
        new_old = 0
        new_new = 0
        for campaign in campaigns:
            campaign_is_old_clients = bool(campaign.clients & seen_clients)
            for server in campaign.servers:
                if server in seen_servers:
                    old += 1
                elif campaign_is_old_clients:
                    new_old += 1
                else:
                    new_new += 1
        series.append(
            PersistenceDay(
                day=day,
                old_servers=old,
                new_servers_old_clients=new_old,
                new_servers_new_clients=new_new,
            )
        )
        for campaign in campaigns:
            seen_servers |= campaign.servers
            seen_clients |= campaign.clients
    return series


# -- Figure 8: secondary-dimension effectiveness ------------------------------------


def dimension_decomposition(result: SmashResult) -> dict[str, float]:
    """Fraction of detected servers inferred through each dimension combo.

    Keys are ``"+"``-joined sorted dimension names (e.g. ``"ipset+urifile"``);
    values sum to 1.0 over detected servers with at least one contribution.
    """
    combos: Counter[str] = Counter()
    total = 0
    for campaign in result.campaigns:
        for server in campaign.servers:
            dims = campaign.dimensions_of(server)
            if not dims:
                continue
            total += 1
            combos["+".join(sorted(dims))] += 1
    if total == 0:
        return {}
    return {combo: count / total for combo, count in sorted(combos.items())}


# -- Figure 9 (Appendix A): IDF distribution -----------------------------------------


def idf_series(
    trace: HttpTrace,
    ids: SignatureIds,
) -> tuple[list[tuple[float, float]], list[tuple[float, float]]]:
    """CDFs of per-server client counts: (all servers, IDS-labelled servers).

    Computed on the aggregated name space, as the filter sees it.
    """
    aggregated = trace.map_hosts(normalize_server_name)
    counts = aggregated.client_counts()
    malicious = ids.detected_servers(trace, normalize_server_name)
    all_series = ecdf(list(counts.values()))
    malicious_series = ecdf(
        [count for server, count in counts.items() if server in malicious]
    )
    return all_series, malicious_series


# -- Figure 10 (Appendix B): malicious filename lengths --------------------------------


def malicious_filename_lengths(
    trace: HttpTrace, ids: SignatureIds
) -> list[int]:
    """Lengths of URI files requested from IDS-confirmed servers."""
    malicious = ids.detected_servers(trace, normalize_server_name)
    lengths: list[int] = []
    seen: set[tuple[str, str]] = set()
    for request in trace:
        server = normalize_server_name(request.host)
        if server not in malicious:
            continue
        key = (server, request.uri_file)
        if key in seen:
            continue
        seen.add(key)
        lengths.append(len(request.uri_file))
    return lengths


# -- Section V-C1: main-dimension herd taxonomy -----------------------------------------


def main_herd_taxonomy(
    result: SmashResult,
    dataset: SyntheticDataset,
) -> dict[str, float]:
    """Classify multi-client main-dimension herds like the paper's manual
    study: referrer / redirection / similar-content / malicious / unknown.

    Uses the generator's annotations in place of the paper's manual
    inspection.  Herds whose servers are all visited by one client are
    skipped (footnote 10).
    """
    truth = dataset.truth
    noise = truth.noise_category
    malicious = truth.malicious_servers
    taxonomy: Counter[str] = Counter()
    clients_by_server = dataset.trace.map_hosts(normalize_server_name).clients_by_server

    def herd_clients(servers: frozenset[str]) -> set[str]:
        clients: set[str] = set()
        for server in servers:
            clients |= clients_by_server.get(server, frozenset())
        return clients

    total = 0
    for herd in result.herds_by_dimension.get("client", ()):
        if len(herd_clients(herd.servers)) <= 1:
            continue  # single-client herds analysed separately
        total += 1
        categories = Counter()
        for server in herd.servers:
            if server in malicious:
                categories["malicious"] += 1
            elif noise.get(server) == "referrer":
                categories["referrer"] += 1
            elif noise.get(server) == "redirect":
                categories["redirection"] += 1
            elif noise.get(server) == "adult":
                categories["similar_content"] += 1
            else:
                categories["unknown"] += 1
        dominant, count = categories.most_common(1)[0]
        if count * 2 >= len(herd.servers):
            taxonomy[dominant] += 1
        else:
            taxonomy["unknown"] += 1
    if total == 0:
        return {}
    return {category: count / total for category, count in sorted(taxonomy.items())}
