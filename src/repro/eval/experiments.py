"""Experiment registry: one method per paper table/figure.

:class:`ExperimentRunner` lazily generates the scenario datasets, mines
each one once (mining dominates cost and is threshold-independent), and
exposes a method per experiment returning plain data structures.  The
``benchmarks/`` suite is a thin layer over this module: every bench calls
one runner method, prints the paper-shaped table and asserts the shape
properties listed in DESIGN.md.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.config import SmashConfig
from repro.core.pipeline import MinedDimensions, SmashPipeline
from repro.core.results import SmashResult
from repro.eval.figures import (
    PersistenceDay,
    SizeDistributions,
    dimension_decomposition,
    idf_series,
    main_herd_taxonomy,
    malicious_filename_lengths,
    persistence_series_detailed,
    size_distributions,
)
from repro.eval.verification import VerificationSummary, Verifier
from repro.synth.generator import SyntheticDataset, TraceGenerator
from repro.synth.scenarios import data2011day, data2012day, data2012week

#: The Table II/III threshold sweep.
THRESHOLDS: tuple[float, ...] = (0.5, 0.8, 1.0, 1.5)

#: The paper's operating thresholds (Section V-A1, Appendix C).
DEFAULT_THRESH = 0.8
SINGLE_CLIENT_THRESH = 1.0


@dataclass
class ExperimentRunner:
    """Shared state for all experiments at one scenario scale."""

    scale: float = 1.0
    config: SmashConfig = field(default_factory=SmashConfig)
    #: Optional fan-out for per-dimension mining (overrides
    #: ``config.workers``); results are identical at any worker count,
    #: only the per-dataset mining wall time changes.
    workers: int | None = None

    def __post_init__(self) -> None:
        if self.workers is not None:
            self.config = self.config.replace(workers=self.workers)
        self._datasets: dict[str, SyntheticDataset] = {}
        self._week: list[SyntheticDataset] | None = None
        self._mined: dict[str, MinedDimensions] = {}
        self._results: dict[tuple[str, float], SmashResult] = {}
        self._verifiers: dict[str, Verifier] = {}
        self._streamed = None
        self._streamed_scored = None
        self.pipeline = SmashPipeline(self.config)

    # -- dataset / pipeline plumbing -------------------------------------------------

    def dataset(self, name: str) -> SyntheticDataset:
        if name not in self._datasets:
            if name == "2011":
                spec = data2011day(scale=self.scale)
            elif name == "2012":
                spec = data2012day(scale=self.scale)
            else:
                raise KeyError(f"unknown day dataset {name!r}")
            self._datasets[name] = TraceGenerator(spec).generate_day(0)
        return self._datasets[name]

    def week(self) -> list[SyntheticDataset]:
        if self._week is None:
            self._week = TraceGenerator(data2012week(scale=self.scale)).generate_week()
        return self._week

    def mined(self, name: str) -> MinedDimensions:
        if name not in self._mined:
            if name.startswith("week"):
                day = int(name.removeprefix("week"))
                dataset = self.week()[day]
            else:
                dataset = self.dataset(name)
            self._mined[name] = self.pipeline.mine(dataset.trace, whois=dataset.whois)
        return self._mined[name]

    def _dataset_for(self, name: str) -> SyntheticDataset:
        if name.startswith("week"):
            return self.week()[int(name.removeprefix("week"))]
        return self.dataset(name)

    def result(self, name: str, thresh: float = DEFAULT_THRESH) -> SmashResult:
        key = (name, thresh)
        if key not in self._results:
            dataset = self._dataset_for(name)
            self._results[key] = self.pipeline.finish(
                self.mined(name), redirects=dataset.redirects, thresh=thresh
            )
        return self._results[key]

    def verifier(self, name: str) -> Verifier:
        if name not in self._verifiers:
            self._verifiers[name] = Verifier(self._dataset_for(name))
        return self._verifiers[name]

    def verification(
        self,
        name: str,
        thresh: float,
        min_clients: int = 2,
        max_clients: int | None = None,
    ) -> VerificationSummary:
        return self.verifier(name).verify(
            self.result(name, thresh),
            thresh,
            min_clients=min_clients,
            max_clients=max_clients,
        )

    # -- Table I --------------------------------------------------------------------

    def table1(self) -> dict[str, dict[str, int]]:
        """Trace statistics of the three datasets."""
        columns: dict[str, dict[str, int]] = {}
        for label, name in (("Data2011day", "2011"), ("Data2012day", "2012")):
            columns[label] = self.dataset(name).trace.stats().as_row()
        week = self.week()
        week_stats = None
        from repro.httplog.trace import HttpTrace

        combined = HttpTrace.concat([d.trace for d in week], name="data2012week")
        week_stats = combined.stats().as_row()
        columns["Data2012week"] = week_stats
        return columns

    # -- Tables II and III ------------------------------------------------------------

    def table2(self) -> dict[str, dict[float, dict[str, int]]]:
        """Campaign counts by threshold (multi-client track)."""
        out: dict[str, dict[float, dict[str, int]]] = {}
        for label, name in (("Data2011day", "2011"), ("Data2012day", "2012")):
            out[label] = {
                thresh: self.verification(name, thresh).table2_row()
                for thresh in THRESHOLDS
            }
        return out

    def table3(self) -> dict[str, dict[float, dict[str, int]]]:
        """Server counts by threshold (multi-client track)."""
        out: dict[str, dict[float, dict[str, int]]] = {}
        for label, name in (("Data2011day", "2011"), ("Data2012day", "2012")):
            out[label] = {
                thresh: self.verification(name, thresh).table3_row()
                for thresh in THRESHOLDS
            }
        return out

    # -- Table IV ---------------------------------------------------------------------

    def table4(self, name: str = "2011") -> dict[str, dict[str, int]]:
        """Detected servers by attack category, split by activity type.

        The paper categorises via IDS labels and blacklists; with a
        synthetic universe the planted campaign category plays that role.
        """
        dataset = self._dataset_for(name)
        detected = self.result(name, DEFAULT_THRESH).detected_servers
        detected |= self.result(name, SINGLE_CLIENT_THRESH).detected_servers
        by_category: Counter[str] = Counter()
        for campaign in dataset.truth.campaigns:
            hits = len(campaign.servers & detected)
            if hits:
                by_category[campaign.category] += hits
        communication = {
            "C&C": by_category.get("cnc", 0),
            "Web exploit": by_category.get("web_exploit", 0),
            "Phishing": by_category.get("phishing", 0),
            "Drop zone": by_category.get("drop_zone", 0),
            "Other malicious servers": by_category.get("malicious", 0),
        }
        attacking = {
            "Web scanner": by_category.get("web_scanner", 0),
            "Iframe injection": by_category.get("iframe_injection", 0),
        }
        return {"Communication": communication, "Attacking": attacking}

    # -- Tables V and VI (week) ---------------------------------------------------------

    def week_verifications(
        self, min_clients: int = 2, max_clients: int | None = None
    ) -> list[VerificationSummary]:
        thresh = DEFAULT_THRESH if min_clients >= 2 else SINGLE_CLIENT_THRESH
        summaries = []
        for day in range(len(self.week())):
            summaries.append(
                self.verification(
                    f"week{day}", thresh, min_clients=min_clients, max_clients=max_clients
                )
            )
        return summaries

    def table5(self) -> list[dict[str, int]]:
        """Per-day campaign counts over the week (footnote 9: threshold 0.8
        for multi-client campaigns, 1.0 for single-client ones)."""
        rows = []
        for day in range(len(self.week())):
            multi = self.verification(f"week{day}", DEFAULT_THRESH, min_clients=2)
            single = self.verification(
                f"week{day}", SINGLE_CLIENT_THRESH, min_clients=1, max_clients=1
            )
            combined = Counter(multi.campaign_counts) + Counter(single.campaign_counts)
            row = {"SMASH": multi.num_campaigns + single.num_campaigns}
            row["IDS 2013 total"] = combined["ids2013_total"] + combined["ids2012_total"]
            row["IDS 2013 partial"] = combined["ids2013_partial"] + combined["ids2012_partial"]
            row["Blacklist"] = combined["blacklist_partial"]
            row["Suspicious"] = combined["suspicious"]
            row["False Positives"] = combined["false_positive"]
            row["FP (Updated)"] = (
                combined["false_positive"] - combined["false_positive_noisy"]
            )
            rows.append(row)
        return rows

    def table6(self) -> list[dict[str, int]]:
        """Per-day server counts over the week."""
        rows = []
        for day in range(len(self.week())):
            multi = self.verification(f"week{day}", DEFAULT_THRESH, min_clients=2)
            single = self.verification(
                f"week{day}", SINGLE_CLIENT_THRESH, min_clients=1, max_clients=1
            )
            counts = Counter(multi.server_counts) + Counter(single.server_counts)
            row = {"SMASH": multi.num_servers + single.num_servers}
            row["IDS 2013"] = counts["ids2013"] + counts["ids2012"]
            row["Blacklist"] = counts["blacklist"]
            row["New Servers"] = counts["new_server"]
            row["Suspicious"] = counts["suspicious"]
            row["False Positives"] = counts["false_positive"]
            row["FP (Updated)"] = counts["false_positive"] - counts["false_positive_noisy"]
            rows.append(row)
        return rows

    # -- Figures -----------------------------------------------------------------------

    def fig6(self) -> SizeDistributions:
        """Campaign-size / client-count distributions over both day sets,
        multi- and single-client tracks combined (as the paper plots)."""
        campaigns = []
        for name in ("2011", "2012"):
            campaigns.extend(self.result(name, DEFAULT_THRESH).campaigns_with_clients(2))
            campaigns.extend(
                self.result(name, SINGLE_CLIENT_THRESH).campaigns_with_clients(1, 1)
            )
        return size_distributions(campaigns)

    def fig7(self) -> list[PersistenceDay]:
        """Persistent vs agile decomposition over the week."""
        daily = []
        for day in range(len(self.week())):
            campaigns = list(
                self.result(f"week{day}", DEFAULT_THRESH).campaigns_with_clients(2)
            )
            campaigns.extend(
                self.result(f"week{day}", SINGLE_CLIENT_THRESH).campaigns_with_clients(1, 1)
            )
            daily.append(campaigns)
        return persistence_series_detailed(daily)

    # -- streaming (repro.stream) reformulations of the week experiments ----------------

    def streamed_week(self):
        """Run the week through :class:`~repro.stream.engine.StreamingSmash`.

        Cached: one stream drive serves :meth:`fig7_streaming`,
        :meth:`campaign_lifetimes` and :meth:`table5_streaming`.
        Returns ``(engine, updates)``.
        """
        if self._streamed is None:
            from repro.eval.streaming import stream_week

            self._streamed = stream_week(self.week(), config=self.config)
        return self._streamed

    def fig7_streaming(self) -> list[PersistenceDay]:
        """Figure 7 from the campaign tracker's live bookkeeping.

        Agrees with :meth:`fig7` on the same week — the tracker records
        the identical decomposition incrementally instead of comparing
        retained daily results post hoc.
        """
        engine, _ = self.streamed_week()
        return engine.tracker.persistence_series()

    def campaign_lifetimes(self) -> list[dict[str, object]]:
        """Cross-day campaign lifetime/churn rows from the tracker."""
        engine, _ = self.streamed_week()
        return engine.tracker.lifetimes()

    def table5_streaming(self) -> list[dict[str, int]]:
        """Per-day campaign counts with tracker event breakdown."""
        from repro.eval.streaming import daily_tracking_summary

        _, updates = self.streamed_week()
        return daily_tracking_summary(updates)

    def alert_quality(self) -> dict[str, dict[str, object]]:
        """Alert precision/recall per severity over the streamed week.

        Streams the week with the scenario's IDS generations and
        blacklists wired as evidence sources and the default alert
        policy, then scores the resulting alert feed against the planted
        ground truth (:func:`repro.eval.alerts.alert_quality`).  Cached
        separately from :meth:`streamed_week`, which streams unscored.
        """
        if self._streamed_scored is None:
            from repro.eval.streaming import stream_week
            from repro.stream.scoring import scenario_evidence

            self._streamed_scored = stream_week(
                self.week(), config=self.config, evidence=scenario_evidence()
            )
        from repro.eval.alerts import alert_quality

        engine, updates = self._streamed_scored
        return alert_quality(
            engine, updates, [dataset.truth for dataset in self.week()]
        )

    def fig8(self, name: str = "2011") -> dict[str, float]:
        """Secondary-dimension decomposition of detected servers."""
        return dimension_decomposition(self.result(name, DEFAULT_THRESH))

    def fig9(self, name: str = "2011"):
        dataset = self._dataset_for(name)
        return idf_series(dataset.trace, dataset.ids2013)

    def fig10(self, name: str = "2011") -> list[int]:
        dataset = self._dataset_for(name)
        return malicious_filename_lengths(dataset.trace, dataset.ids2013)

    # -- Section V-C1 taxonomy ------------------------------------------------------------

    def taxonomy(self, name: str = "2011") -> dict[str, float]:
        return main_herd_taxonomy(self.result(name, DEFAULT_THRESH), self._dataset_for(name))

    # -- Appendix C (Tables XI, XII) -------------------------------------------------------

    def table11(self) -> dict[str, dict[float, dict[str, int]]]:
        out: dict[str, dict[float, dict[str, int]]] = {}
        for label, name in (("Data2011day", "2011"), ("Data2012day", "2012")):
            out[label] = {
                thresh: self.verification(
                    name, thresh, min_clients=1, max_clients=1
                ).table2_row()
                for thresh in THRESHOLDS
            }
        return out

    def table12(self) -> dict[str, dict[float, dict[str, int]]]:
        out: dict[str, dict[float, dict[str, int]]] = {}
        for label, name in (("Data2011day", "2011"), ("Data2012day", "2012")):
            out[label] = {
                thresh: self.verification(
                    name, thresh, min_clients=1, max_clients=1
                ).table3_row()
                for thresh in THRESHOLDS
            }
        return out

    # -- false negatives (Section V-A2) ------------------------------------------------------

    def false_negatives(self, name: str = "2011") -> dict[str, frozenset[str]]:
        result = self.result(name, DEFAULT_THRESH)
        return self.verifier(name).false_negatives(result)
