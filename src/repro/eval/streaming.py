"""Week-long experiments re-expressed on the streaming engine.

The batch evaluation derives Figure 7 and the campaign-lifetime picture
by retaining every day's :class:`~repro.core.results.SmashResult` and
comparing server/client sets post hoc.  With
:class:`~repro.stream.engine.StreamingSmash` the same analyses are live
tracker bookkeeping: the persistence decomposition accumulates as the
stream advances and lifetimes/churn are per-identity counters.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Iterable, Sequence

from repro.config import SmashConfig
from repro.eval.figures import PersistenceDay
from repro.stream.engine import StreamingSmash, StreamUpdate
from repro.stream.scoring import AlertPolicy, EvidenceSource
from repro.stream.tracker import TrackerConfig


def stream_week(
    datasets: Iterable,
    config: SmashConfig | None = None,
    window_size: int = 1,
    tracker_config: TrackerConfig | None = None,
    incremental: bool | None = None,
    evidence: tuple[EvidenceSource, ...] = (),
    policy: AlertPolicy | None = None,
) -> tuple[StreamingSmash, list[StreamUpdate]]:
    """Drive a sequence of per-day datasets through a fresh engine.

    Returns the engine (whose tracker holds the longitudinal state) and
    the per-advance updates.  *incremental* toggles the per-dimension
    mining cache (default: the config's setting); results are identical
    either way.  *evidence*/*policy* switch on the alert-scoring layer
    (:mod:`repro.stream.scoring`): evidence sources adopt each dataset's
    ground-truth objects as the stream advances.
    """
    engine = StreamingSmash(
        config=config,
        window_size=window_size,
        tracker_config=tracker_config,
        incremental=incremental,
        evidence=evidence,
        policy=policy,
    )
    updates = engine.run_datasets(datasets)
    return engine, updates


def fig7_streaming(engine: StreamingSmash) -> list[PersistenceDay]:
    """Figure 7 from the tracker's live persistence bookkeeping."""
    return engine.tracker.persistence_series()


def campaign_lifetimes(engine: StreamingSmash) -> list[dict[str, object]]:
    """Per-identity lifetime/churn table (uid, first/last seen, spans,
    server churn) — the longitudinal view Tables V/VI only hint at."""
    return engine.tracker.lifetimes()


def daily_tracking_summary(updates: Sequence[StreamUpdate]) -> list[dict[str, int]]:
    """Per-day campaign counts with tracker event breakdown.

    The Table-V-shaped row the stream produces for free: total campaigns
    fed to the tracker, identities newly minted / grown / died that day,
    and identities alive after the advance.
    """
    rows = []
    for update in updates:
        kinds = Counter(event.kind for event in update.events)
        rows.append(
            {
                "day": update.day,
                "campaigns": update.num_campaigns,
                "servers": len(update.detected_servers),
                "new": kinds.get("new_campaign", 0),
                "grown": kinds.get("campaign_growth", 0),
                "died": kinds.get("campaign_died", 0),
                "active": len(update.active),
            }
        )
    return rows
