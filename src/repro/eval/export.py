"""Export SMASH results for downstream consumption.

Two formats:

* **JSON** — one document with every inferred campaign, its servers,
  per-server scores and dimension evidence (what an analyst console or a
  blocklist generator would ingest);
* **DOT** — the similarity graph of one dimension restricted to detected
  servers, for Figure-3-style visualisation in Graphviz.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.core.results import SmashResult


def result_to_dict(result: SmashResult) -> dict:
    """JSON-compatible representation of a :class:`SmashResult`."""
    campaigns = []
    for campaign in result.campaigns:
        campaigns.append(
            {
                "id": campaign.campaign_id,
                "num_servers": campaign.num_servers,
                "num_clients": campaign.num_clients,
                "servers": sorted(campaign.servers),
                "clients": sorted(campaign.clients),
                "scores": {
                    server: round(score, 6)
                    for server, score in sorted(campaign.server_scores.items())
                },
                "dimensions": {
                    server: sorted(campaign.dimensions_of(server))
                    for server in sorted(campaign.servers)
                },
                "replaced_servers": dict(sorted(campaign.replaced_servers.items())),
            }
        )
    return {
        "campaigns": campaigns,
        "detected_servers": sorted(result.detected_servers),
        "herd_counts": {
            dimension: len(herds)
            for dimension, herds in sorted(result.herds_by_dimension.items())
        },
        "main_dimension_dropped": len(result.main_dimension_dropped),
        "pruning": {
            "redirection_replacements": len(
                result.prune_report.redirection_replacements
            ),
            "referrer_replacements": len(result.prune_report.referrer_replacements),
            "dropped_ashes": result.prune_report.dropped_ashes,
        },
    }


def write_result_json(result: SmashResult, path: str | Path) -> None:
    """Write :func:`result_to_dict` to *path* (pretty-printed)."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(json.dumps(result_to_dict(result), indent=2) + "\n")


def _dot_escape(name: str) -> str:
    return name.replace('"', r"\"")


def herds_to_dot(
    result: SmashResult,
    dimension: str = "client",
    detected_only: bool = True,
) -> str:
    """Render one dimension's herds as an undirected Graphviz graph.

    Detected servers are filled red (the paper's Figure-3 colouring:
    "red nodes represent the servers labeled by IDS" — here, by SMASH).
    """
    herds = result.herds_by_dimension.get(dimension, ())
    detected = result.detected_servers
    lines = [f'graph "{_dot_escape(dimension)}_herds" {{']
    lines.append("  node [shape=circle, style=filled, fillcolor=lightgrey];")
    for herd in herds:
        members = sorted(herd.servers)
        if detected_only and not any(m in detected for m in members):
            continue
        lines.append(f"  subgraph cluster_{herd.index} {{")
        lines.append(f'    label="herd {herd.index} (density {herd.density:.2f})";')
        for member in members:
            colour = "tomato" if member in detected else "lightgrey"
            lines.append(
                f'    "{_dot_escape(member)}" [fillcolor={colour}];'
            )
        for i, first in enumerate(members):
            for second in members[i + 1:]:
                lines.append(
                    f'    "{_dot_escape(first)}" -- "{_dot_escape(second)}";'
                )
        lines.append("  }")
    lines.append("}")
    return "\n".join(lines)
