"""Evaluation harness: the paper's verification methodology, the
table/figure series of Section V, and streaming reformulations of the
week-long experiments (:mod:`repro.eval.streaming`)."""

from repro.eval.verification import (
    CampaignVerdict,
    ServerLabel,
    VerificationSummary,
    Verifier,
)
from repro.eval.alerts import alert_quality, planted_campaign_servers
from repro.eval.experiments import ExperimentRunner
from repro.eval.streaming import (
    campaign_lifetimes,
    daily_tracking_summary,
    fig7_streaming,
    stream_week,
)

__all__ = [
    "CampaignVerdict",
    "ExperimentRunner",
    "ServerLabel",
    "VerificationSummary",
    "Verifier",
    "alert_quality",
    "campaign_lifetimes",
    "daily_tracking_summary",
    "fig7_streaming",
    "planted_campaign_servers",
    "stream_week",
]
