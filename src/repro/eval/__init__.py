"""Evaluation harness: the paper's verification methodology and the
table/figure series of Section V."""

from repro.eval.verification import (
    CampaignVerdict,
    ServerLabel,
    VerificationSummary,
    Verifier,
)
from repro.eval.experiments import ExperimentRunner

__all__ = [
    "CampaignVerdict",
    "ExperimentRunner",
    "ServerLabel",
    "VerificationSummary",
    "Verifier",
]
