"""Streaming perf-trajectory benchmark (the CI ``bench`` job).

Measures the costs the incremental-streaming work (PR 3) is supposed to
remove, and writes them as one JSON document (``BENCH_stream.json`` in
CI) so the numbers are tracked per PR instead of asserted once and
forgotten:

* per-day advance time, cold (``--no-incremental``, full re-mine every
  day) vs incremental, on two workloads:

  - ``varying`` — a generated multi-day scenario where every day brings
    new requests in every dimension (the incremental cache's honest
    lower bound: little to reuse);
  - ``steady`` — the same day content re-ingested day over day (steady
    state traffic; the cache's ceiling: after warm-up every dimension is
    reused);

* checkpoint bytes with and without a :class:`~repro.stream.store.TraceStore`
  attached, plus the bytes the store itself occupies;
* days/sec throughput and the incremental/cold speedup.

The harness re-checks incremental == cold campaign output while it
times, so a benchmark run is also an equivalence smoke test.

Run directly::

    python -m repro.eval.bench --days 4 --window 2 --out BENCH_stream.json
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import tempfile
import time
from pathlib import Path

from repro.stream.checkpoint import save_checkpoint
from repro.stream.engine import StreamingSmash
from repro.stream.store import TraceStore
from repro.stream.window import DayPartition
from repro.synth.generator import TraceGenerator
from repro.synth.scenarios import small_scenario


def _timed_stream(
    partitions: list[DayPartition],
    window_size: int,
    incremental: bool,
    store_dir: str | Path | None = None,
) -> tuple[StreamingSmash, dict[str, object]]:
    """Ingest *partitions* into a fresh engine, timing each advance."""
    engine = StreamingSmash(
        window_size=window_size, incremental=incremental, store_dir=store_dir
    )
    per_day: list[float] = []
    reused: list[int] = []
    campaigns: list[tuple[tuple[str, ...], ...]] = []
    start = time.perf_counter()
    for partition in partitions:
        tick = time.perf_counter()
        update = engine.ingest_day(
            partition.day,
            partition.trace,
            whois=partition.whois,
            redirects=partition.redirects,
        )
        per_day.append(time.perf_counter() - tick)
        reused.append(len(update.reused_dimensions))
        campaigns.append(
            tuple(tuple(sorted(c.servers)) for c in update.campaigns)
        )
    total = time.perf_counter() - start
    stats = {
        "per_day_seconds": [round(seconds, 6) for seconds in per_day],
        "total_seconds": round(total, 6),
        "days_per_second": round(len(partitions) / total, 4) if total else None,
        "reused_dimensions_per_day": reused,
        "_campaigns": campaigns,  # stripped before serialisation
    }
    return engine, stats


def _speedup(cold: dict[str, object], warm: dict[str, object]) -> float | None:
    cold_total = cold["total_seconds"]
    warm_total = warm["total_seconds"]
    if not isinstance(cold_total, float) or not isinstance(warm_total, float):
        return None
    if warm_total <= 0:
        return None
    return round(cold_total / warm_total, 3)


def bench_stream(
    days: int = 4, window: int = 2, seed: int = 7
) -> dict[str, object]:
    """Run the streaming benchmark and return the result document."""
    datasets = list(TraceGenerator(small_scenario(seed=seed, days=days)).iter_days())
    varying = [
        DayPartition(
            day=dataset.day,
            trace=dataset.trace,
            whois=dataset.whois,
            redirects=dataset.redirects,
        )
        for dataset in datasets
    ]
    # Steady state: the same day content arriving day after day.
    first = varying[0]
    steady = [
        DayPartition(
            day=day, trace=first.trace, whois=first.whois, redirects=first.redirects
        )
        for day in range(days)
    ]

    document: dict[str, object] = {
        "benchmark": "repro.stream",
        "days": days,
        "window": window,
        "seed": seed,
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "workloads": {},
    }

    workloads: dict[str, object] = {}
    for name, partitions in (("varying", varying), ("steady", steady)):
        _, cold = _timed_stream(partitions, window, incremental=False)
        _, warm = _timed_stream(partitions, window, incremental=True)
        if cold.pop("_campaigns") != warm.pop("_campaigns"):
            raise AssertionError(
                f"incremental and cold runs diverged on the {name} workload"
            )
        workloads[name] = {
            "cold": cold,
            "incremental": warm,
            "speedup": _speedup(cold, warm),
        }
    document["workloads"] = workloads

    # Checkpoint footprint: inline (v1-style embedded window) vs store-backed.
    with tempfile.TemporaryDirectory(prefix="repro-bench-") as tmp:
        root = Path(tmp)
        inline_engine, _ = _timed_stream(varying, window, incremental=True)
        save_checkpoint(inline_engine, root / "inline.ckpt")
        store_engine, _ = _timed_stream(
            varying, window, incremental=True, store_dir=root / "store"
        )
        save_checkpoint(store_engine, root / "store.ckpt")
        inline_bytes = (root / "inline.ckpt").stat().st_size
        store_bytes = (root / "store.ckpt").stat().st_size
        document["checkpoint"] = {
            "inline_bytes": inline_bytes,
            "store_bytes": store_bytes,
            "shrink_factor": round(inline_bytes / store_bytes, 1)
            if store_bytes
            else None,
            "store_partition_bytes": TraceStore(root / "store").total_bytes(),
        }
    return document


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.eval.bench",
        description="streaming perf-trajectory benchmark (writes one JSON doc)",
    )
    parser.add_argument("--days", type=int, default=4)
    parser.add_argument("--window", type=int, default=2)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--out", default="BENCH_stream.json", help="output JSON path"
    )
    args = parser.parse_args(argv)

    document = bench_stream(days=args.days, window=args.window, seed=args.seed)
    out = Path(args.out)
    out.write_text(json.dumps(document, indent=1, sort_keys=True) + "\n")

    workloads = document["workloads"]
    assert isinstance(workloads, dict)
    for name, entry in workloads.items():
        assert isinstance(entry, dict)
        print(
            f"{name}: cold {entry['cold']['total_seconds']}s, "
            f"incremental {entry['incremental']['total_seconds']}s "
            f"(speedup {entry['speedup']}x)"
        )
    checkpoint = document["checkpoint"]
    assert isinstance(checkpoint, dict)
    print(
        f"checkpoint: inline {checkpoint['inline_bytes']} B, "
        f"store-backed {checkpoint['store_bytes']} B "
        f"({checkpoint['shrink_factor']}x smaller)"
    )
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
