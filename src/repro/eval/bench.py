"""Performance benchmarks (the CI ``bench`` job and ``smash bench``).

Two suites, each writing one JSON document so the numbers are tracked
per PR instead of asserted once and forgotten:

``stream`` (``BENCH_stream.json``)
    Measures the costs the incremental-streaming work (PR 3) removes:
    per-day advance time cold vs incremental on a varying and a steady
    workload, checkpoint bytes with and without a
    :class:`~repro.stream.store.TraceStore`, days/sec throughput.

``mine`` (``BENCH_mine.json``)
    Measures the interned-ID mining core against the frozen pre-refactor
    label-path core (:class:`repro.core.legacy.LegacyPipeline`) over a
    sweep of synthetic scenario sizes (servers/clients/requests all
    scale with the factor): end-to-end run time, mine/finish stage
    split, requests/sec throughput, per-dimension candidate-pair
    accounting, and a heavy-hitter section showing how the
    ``max_group_size`` gate bounds an otherwise quadratic shared-IP
    posting list.

``sharded`` (merged into ``BENCH_mine.json`` under ``"sharded"``)
    Measures the map-reduce mine path (:mod:`repro.core.shardmine`) at
    10x the mine suite's largest scale: peak RSS per shard count (each
    configuration in its own subprocess — see
    :mod:`repro.eval.shardprobe`), spill-merge throughput serial and on
    the process pool, and the byte-identity of every row's result
    document.

All harnesses re-check output equivalence while they time (incremental
== cold, interned == label path, sharded == single-pass), so a
benchmark run is also an equivalence smoke test.

All stage timings come from the ``repro.obs`` span layer rather than
ad-hoc ``time.perf_counter()`` bookkeeping: instrumented components
(:class:`~repro.core.pipeline.SmashPipeline`,
:class:`~repro.stream.engine.StreamingSmash`) record their own spans,
and un-instrumented ones (the frozen
:class:`~repro.core.legacy.LegacyPipeline`, raw graph builders) are
timed with external spans in the same registry.  Pass ``--metrics-out``
/ ``--trace-out`` to keep that registry as a Prometheus exposition or a
span snapshot next to the JSON documents.  The mine suite additionally
reports ``obs_overhead``: the enabled-recorder cost of a full run
against the :class:`~repro.obs.NullRecorder` default.

Run directly::

    python -m repro.eval.bench --suite stream --days 4 --window 2 --out BENCH_stream.json
    python -m repro.eval.bench --suite mine --scales 0.25,0.5,1.0 --out BENCH_mine.json

or via the CLI: ``smash bench --scales 0.25,0.5,1.0``.
"""

from __future__ import annotations

import argparse
import gc
import json
import platform
import sys
import tempfile
from typing import TYPE_CHECKING
from pathlib import Path

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.httplog.trace import HttpTrace
    from repro.stream.engine import StreamingSmash
    from repro.stream.window import DayPartition

# Package imports happen inside the suite functions: the CLI imports
# this module at parser-build time (for ``add_bench_arguments``), and
# that must not drag the streaming engine, the synth generator and the
# pipeline into every ``smash generate/run/report/stream`` startup.


def _timed_stream(
    partitions: list["DayPartition"],
    window_size: int,
    incremental: bool,
    store_dir: str | Path | None = None,
    registry=None,
) -> tuple["StreamingSmash", dict[str, object]]:
    """Ingest *partitions* into a fresh engine; per-day times come from
    the engine's own ``stream.advance`` spans."""
    from repro.obs.metrics import MetricsRegistry
    from repro.stream.engine import StreamingSmash

    registry = registry if registry is not None else MetricsRegistry()
    engine = StreamingSmash(
        window_size=window_size,
        incremental=incremental,
        store_dir=store_dir,
        metrics=registry,
    )
    base = len(registry.spans)
    reused: list[int] = []
    campaigns: list[tuple[tuple[str, ...], ...]] = []
    for partition in partitions:
        update = engine.ingest_day(
            partition.day,
            partition.trace,
            whois=partition.whois,
            redirects=partition.redirects,
        )
        reused.append(len(update.reused_dimensions))
        campaigns.append(
            tuple(tuple(sorted(c.servers)) for c in update.campaigns)
        )
    per_day = [
        span.seconds
        for span in registry.spans[base:]
        if span.name == "stream.advance"
    ]
    total = sum(per_day)
    stats = {
        "per_day_seconds": [round(seconds, 6) for seconds in per_day],
        "total_seconds": round(total, 6),
        "days_per_second": round(len(partitions) / total, 4) if total else None,
        "reused_dimensions_per_day": reused,
        "_campaigns": campaigns,  # stripped before serialisation
    }
    return engine, stats


def _speedup(cold: dict[str, object], warm: dict[str, object]) -> float | None:
    cold_total = cold["total_seconds"]
    warm_total = warm["total_seconds"]
    if not isinstance(cold_total, float) or not isinstance(warm_total, float):
        return None
    if warm_total <= 0:
        return None
    return round(cold_total / warm_total, 3)


def bench_stream(
    days: int = 4, window: int = 2, seed: int = 7, registry=None
) -> dict[str, object]:
    """Run the streaming benchmark and return the result document."""
    from repro.stream.checkpoint import save_checkpoint
    from repro.stream.store import TraceStore
    from repro.stream.window import DayPartition
    from repro.synth.generator import TraceGenerator
    from repro.synth.scenarios import small_scenario

    datasets = list(TraceGenerator(small_scenario(seed=seed, days=days)).iter_days())
    varying = [
        DayPartition(
            day=dataset.day,
            trace=dataset.trace,
            whois=dataset.whois,
            redirects=dataset.redirects,
        )
        for dataset in datasets
    ]
    # Steady state: the same day content arriving day after day.
    first = varying[0]
    steady = [
        DayPartition(
            day=day, trace=first.trace, whois=first.whois, redirects=first.redirects
        )
        for day in range(days)
    ]

    document: dict[str, object] = {
        "benchmark": "repro.stream",
        "days": days,
        "window": window,
        "seed": seed,
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "workloads": {},
    }

    workloads: dict[str, object] = {}
    for name, partitions in (("varying", varying), ("steady", steady)):
        _, cold = _timed_stream(partitions, window, incremental=False, registry=registry)
        _, warm = _timed_stream(partitions, window, incremental=True, registry=registry)
        if cold.pop("_campaigns") != warm.pop("_campaigns"):
            raise AssertionError(
                f"incremental and cold runs diverged on the {name} workload"
            )
        workloads[name] = {
            "cold": cold,
            "incremental": warm,
            "speedup": _speedup(cold, warm),
        }
    document["workloads"] = workloads

    # Checkpoint footprint: inline (v1-style embedded window) vs store-backed.
    with tempfile.TemporaryDirectory(prefix="repro-bench-") as tmp:
        root = Path(tmp)
        inline_engine, _ = _timed_stream(varying, window, incremental=True, registry=registry)
        save_checkpoint(inline_engine, root / "inline.ckpt")
        store_engine, _ = _timed_stream(
            varying, window, incremental=True, store_dir=root / "store", registry=registry
        )
        save_checkpoint(store_engine, root / "store.ckpt")
        inline_bytes = (root / "inline.ckpt").stat().st_size
        store_bytes = (root / "store.ckpt").stat().st_size
        document["checkpoint"] = {
            "inline_bytes": inline_bytes,
            "store_bytes": store_bytes,
            "shrink_factor": round(inline_bytes / store_bytes, 1)
            if store_bytes
            else None,
            "store_partition_bytes": TraceStore(root / "store").total_bytes(),
        }
    return document


# -- mine-core scaling benchmark ---------------------------------------------------


def _fresh_trace(trace: "HttpTrace") -> "HttpTrace":
    """Same requests, no cached indices — a cold trace for honest timing."""
    from repro.httplog.trace import HttpTrace

    return HttpTrace(trace.requests, name=trace.name)


def _timed_pipeline(
    pipeline_factory,
    dataset,
    repeats: int,
    registry=None,
    self_instrumented: bool = False,
) -> tuple[dict[str, float], object, object]:
    """Best-of-*repeats* staged timing of one core on one dataset.

    Timings are read back from ``pipeline.mine`` / ``pipeline.finish``
    spans in *registry*.  With ``self_instrumented=True`` the core is
    built with the registry attached (``SmashConfig(metrics=...)``) and
    records those spans itself — the enabled-recorder path; otherwise
    the core runs with its default :class:`~repro.obs.NullRecorder` and
    this harness wraps each stage in an external span, so the timed work
    is the zero-overhead disabled path.  The frozen legacy core has no
    recorder support and is always timed externally.
    """
    from repro.obs.metrics import MetricsRegistry

    registry = registry if registry is not None else MetricsRegistry()
    best_total = None
    best = None
    for _ in range(max(1, repeats)):
        if self_instrumented:
            from repro.config import SmashConfig

            pipeline = pipeline_factory(SmashConfig(metrics=registry))
        else:
            pipeline = pipeline_factory()
        trace = _fresh_trace(dataset.trace)
        gc.collect()
        base = len(registry.spans)
        if self_instrumented:
            mined = pipeline.mine(trace, dataset.whois)
            result = pipeline.finish(mined, dataset.redirects)
        else:
            with registry.span("pipeline.mine"):
                mined = pipeline.mine(trace, dataset.whois)
            with registry.span("pipeline.finish"):
                result = pipeline.finish(mined, dataset.redirects)
        ran = registry.spans[base:]
        mine_seconds = next(s.seconds for s in ran if s.name == "pipeline.mine")
        finish_seconds = next(s.seconds for s in ran if s.name == "pipeline.finish")
        total = mine_seconds + finish_seconds
        if best_total is None or total < best_total:
            best_total = total
            best = (
                {
                    "mine_seconds": round(mine_seconds, 6),
                    "finish_seconds": round(finish_seconds, 6),
                    "total_seconds": round(total, 6),
                    "requests_per_second": round(len(trace) / total, 1),
                },
                mined,
                result,
            )
    assert best is not None
    return best


def _flux_trace(num_servers: int) -> "HttpTrace":
    """A domain-flux heavy hitter: every server shares one sinkhole IP.

    The shared IP's posting list has ``num_servers`` members, so
    uncapped candidate generation walks ``n*(n-1)/2`` pairs; each
    consecutive server pair also shares a private relay IP, so a capped
    run still has honest (linear) work to do.
    """
    from repro.httplog.records import HttpRequest
    from repro.httplog.trace import HttpTrace

    requests = []
    for index in range(num_servers):
        host = f"flux{index:05d}.example"
        client = f"bot{index % 97:03d}"
        requests.append(
            HttpRequest(
                timestamp=float(index),
                client=client,
                host=host,
                server_ip="198.51.100.7",
                uri="/gate.php",
            )
        )
        requests.append(
            HttpRequest(
                timestamp=float(index) + 0.5,
                client=client,
                host=host,
                server_ip=f"10.{index // 250}.{index % 250}.9",
                uri="/gate.php",
            )
        )
        if index + 1 < num_servers:
            requests.append(
                HttpRequest(
                    timestamp=float(index) + 0.7,
                    client=client,
                    host=host,
                    server_ip=f"172.16.{index // 250}.{index % 250}",
                    uri="/gate.php",
                )
            )
        if index > 0:
            requests.append(
                HttpRequest(
                    timestamp=float(index) + 0.8,
                    client=client,
                    host=host,
                    server_ip=f"172.16.{(index - 1) // 250}.{(index - 1) % 250}",
                    uri="/gate.php",
                )
            )
    return HttpTrace(requests, name=f"flux{num_servers}")


def heavy_hitter_scaling(
    sizes: tuple[int, ...] = (200, 400, 800), cap: int = 64, registry=None
) -> dict[str, object]:
    """Candidate-pair counts on the flux trace, capped vs uncapped.

    Uncapped, the shared-IP group alone contributes ``n*(n-1)/2``
    enumerated pairs — quadratic in scenario size.  With
    ``DimensionConfig(max_group_size=cap)`` the group is skipped
    deterministically and the walked-pair count stays linear (the relay
    pairs).  Both runs are timed (external spans — graph builders do not
    record their own) and their pair accounting recorded.
    """
    from repro.config import DimensionConfig
    from repro.core.dimensions.ipset import build_ipset_graph
    from repro.obs.metrics import MetricsRegistry

    registry = registry if registry is not None else MetricsRegistry()
    rows = []
    for size in sizes:
        trace = _flux_trace(size)
        entry: dict[str, object] = {"servers": size}
        for label, config in (
            ("uncapped", DimensionConfig()),
            ("capped", DimensionConfig(max_group_size=cap)),
        ):
            fresh = _fresh_trace(trace)
            gc.collect()
            with registry.span(
                "bench.heavy_hitter.build", servers=size, mode=label
            ) as span:
                graph = build_ipset_graph(fresh, config)
            stats = dict(graph.build_stats)
            entry[label] = {
                "seconds": round(span.seconds, 6),
                "enumerated_pairs": stats.get("enumerated_pairs"),
                "candidate_pairs": stats.get("candidate_pairs"),
                "skipped_groups": stats.get("skipped_groups"),
                "edges": graph.num_edges(),
            }
        rows.append(entry)
    return {"cap": cap, "dimension": "ipset", "sizes": rows}


def mine_scaling(
    scales: tuple[float, ...] = (0.25, 0.5, 1.0),
    seed: int = 7,
    repeats: int = 2,
    heavy_sizes: tuple[int, ...] = (200, 400, 800),
    heavy_cap: int = 64,
    registry=None,
) -> dict[str, object]:
    """Interned core vs the frozen pre-refactor core across scenario sizes.

    Returns the ``BENCH_mine.json`` document.  Every scale is an
    equivalence check as well: the two cores' full result documents must
    be byte-identical or the benchmark aborts.  Both headline timings
    run on the disabled-recorder path so the comparison stays fair; the
    ``obs_overhead`` section quantifies the enabled-recorder cost
    separately at the largest scale.
    """
    from repro.core.legacy import LegacyPipeline
    from repro.core.pipeline import SmashPipeline, dimension_build_stats
    from repro.eval.export import result_to_dict
    from repro.synth.generator import TraceGenerator
    from repro.synth.scenarios import data2012day

    rows = []
    for scale in scales:
        # Separate (identical) datasets per core: the legacy pipeline
        # injects pre-refactor-built indices into its traces, and the
        # cores must not subsidise each other's caches.
        dataset = TraceGenerator(data2012day(scale=scale, seed=seed)).generate_day(0)
        dataset_legacy = TraceGenerator(data2012day(scale=scale, seed=seed)).generate_day(0)
        interned, mined, result = _timed_pipeline(
            SmashPipeline, dataset, repeats, registry=registry
        )
        legacy, _, legacy_result = _timed_pipeline(
            LegacyPipeline, dataset_legacy, repeats, registry=registry
        )
        new_doc = json.dumps(result_to_dict(result), sort_keys=True)
        old_doc = json.dumps(result_to_dict(legacy_result), sort_keys=True)
        if new_doc != old_doc:
            raise AssertionError(f"interned and label-path cores diverged at scale {scale}")
        rows.append(
            {
                "scale": scale,
                "requests": len(dataset.trace),
                "servers_raw": len(dataset.trace.servers),
                "servers_mined": len(mined.trace.servers),
                "campaigns": len(result.campaigns),
                "interned": interned,
                "legacy": legacy,
                "speedup": round(
                    legacy["total_seconds"] / interned["total_seconds"], 3
                ),
                "identical_output": True,
                "dimension_stats": dimension_build_stats(mined),
            }
        )

    # Enabled-recorder overhead at the largest scale: same core, same
    # dataset shape, recorder attached vs the NullRecorder default.
    obs_overhead = None
    if scales:
        overhead_dataset = TraceGenerator(
            data2012day(scale=scales[-1], seed=seed)
        ).generate_day(0)
        disabled, _, _ = _timed_pipeline(
            SmashPipeline, overhead_dataset, repeats, registry=registry
        )
        enabled, _, _ = _timed_pipeline(
            SmashPipeline, overhead_dataset, repeats, registry=registry, self_instrumented=True
        )
        obs_overhead = {
            "scale": scales[-1],
            "disabled": disabled,
            "enabled": enabled,
            "overhead_ratio": round(
                enabled["total_seconds"] / disabled["total_seconds"], 4
            )
            if disabled["total_seconds"]
            else None,
        }

    document: dict[str, object] = {
        "benchmark": "repro.mine",
        "seed": seed,
        "repeats": repeats,
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "scales": rows,
        "largest_scale_speedup": rows[-1]["speedup"] if rows else None,
        "obs_overhead": obs_overhead,
        "heavy_hitter": heavy_hitter_scaling(heavy_sizes, heavy_cap, registry=registry),
    }
    return document


# -- sharded-mine scaling benchmark -------------------------------------------------


def sharded_scaling(
    scale: float = 10.0,
    shard_counts: tuple[int, ...] = (1, 2, 4, 8),
    seed: int = 7,
    registry=None,
    shard_retries: int = 2,
    shard_timeout: float = 600.0,
    fault_plan: dict | None = None,
) -> dict[str, object]:
    """Sharded map-reduce mine vs the single-pass mine at one large scale.

    The benchmark day is generated once and persisted into a temporary
    :class:`~repro.stream.store.TraceStore`; every configuration row then
    runs in its own fresh interpreter (:mod:`repro.eval.shardprobe`) that
    loads the digest-verified partition back from the store, because
    ``ru_maxrss`` is a process-lifetime high-water mark and in-process
    rows would all report the first row's peak.

    Rows: the single-pass baseline, each requested shard count on the
    serial executor (the peak-memory story — map partials spill to the
    store and merge one shard at a time), the largest shard count on
    the process pool with one worker per CPU (the throughput story), and
    the largest shard count in out-of-core mode with subprocess dispatch
    (the coordinator-memory story: store-direct map jobs in child
    interpreters, streaming reduce, no window trace in the coordinator),
    and a chaos twin of that row under an injected worker-crash +
    torn-spill fault plan (the robustness story: retries recover the
    identical output, and the fault-free vs retrying ratio is gated).
    Every row's full result document must hash identically or the
    benchmark aborts — the byte-identity acceptance gate, measured at
    bench scale rather than only at test scale.
    """
    import subprocess

    from repro.obs.metrics import MetricsRegistry
    from repro.stream.store import TraceStore
    from repro.stream.window import DayPartition
    from repro.synth.generator import TraceGenerator
    from repro.synth.scenarios import data2012day

    registry = registry if registry is not None else MetricsRegistry()
    with registry.span("bench.sharded.generate", scale=scale) as span:
        dataset = TraceGenerator(data2012day(scale=scale, seed=seed)).generate_day(0)
    generate_seconds = span.seconds

    configs = [(1, 1, "serial", "pool", False, None)]
    for shards in shard_counts:
        if shards > 1:
            configs.append((shards, 1, "serial", "pool", False, None))
    largest = max(shard_counts) if shard_counts else 1
    if largest > 1:
        configs.append((largest, 0, "process", "pool", False, None))
        configs.append((largest, 1, "serial", "subprocess", True, None))
        # Chaos twin of the out-of-core subprocess row: one worker crash
        # plus one torn spill (both wall-clock-free — no hang, so the
        # overhead ratio measures retry cost, not timeout waits).  Its
        # digest joins the identity assertion: recovery must reproduce
        # the exact output, and benchcheck gates the overhead ratio.
        chaos_plan = fault_plan or {
            "version": 1,
            "faults": [
                {"shard": 0, "kind": "crash_before_spill", "attempt": 1},
                {"shard": min(1, largest - 1), "kind": "corrupt_partial", "attempt": 1},
            ],
        }
        configs.append((largest, 1, "serial", "subprocess", True, chaos_plan))

    rows: list[dict[str, object]] = []
    with tempfile.TemporaryDirectory(prefix="repro-bench-sharded-") as tmp:
        store = TraceStore(Path(tmp) / "store")
        ref = store.put(
            DayPartition(
                day=0,
                trace=dataset.trace,
                whois=dataset.whois,
                redirects=dataset.redirects,
            )
        )
        for shards, workers, executor, dispatch, out_of_core, row_plan in configs:
            spec = {
                "store_root": str(store.root),
                "day": ref.day,
                "digest": ref.digest,
                "shards": shards,
                "workers": workers,
                "executor": executor,
                "dispatch": dispatch,
                "out_of_core": out_of_core,
                "shard_retries": shard_retries,
                "shard_timeout": shard_timeout,
                "fault_plan": row_plan,
            }
            with registry.span(
                "bench.sharded.probe",
                shards=shards,
                workers=workers,
                executor=executor,
                dispatch=dispatch,
                out_of_core=out_of_core,
                chaos=row_plan is not None,
            ):
                probe = subprocess.run(
                    [sys.executable, "-m", "repro.eval.shardprobe", json.dumps(spec)],
                    capture_output=True,
                    text=True,
                )
            if probe.returncode != 0:
                raise AssertionError(
                    f"shard probe {shards}/{workers}/{executor}/{dispatch}"
                    f"{'/ooc' if out_of_core else ''}"
                    f"{'/chaos' if row_plan is not None else ''}"
                    f" failed:\n{probe.stderr}"
                )
            rows.append(json.loads(probe.stdout))

    digests = {row["digest"] for row in rows}
    if len(digests) != 1:
        raise AssertionError(
            f"sharded and single-pass mines diverged at scale {scale}: {digests}"
        )
    baseline = rows[0]
    serial_rows = [
        r
        for r in rows
        if r["executor"] == "serial" and r["shards"] > 1 and not r["out_of_core"]
    ]
    most_sharded = serial_rows[-1] if serial_rows else baseline
    ooc_rows = [r for r in rows if r["out_of_core"] and not r.get("chaos")]
    ooc = ooc_rows[-1] if ooc_rows else None
    chaos_rows = [r for r in rows if r.get("chaos")]
    chaos = chaos_rows[-1] if chaos_rows else None
    # The headline compares *mine-phase* peaks (VmHWM reset after the
    # load — see shardprobe): whole-process ru_maxrss is set by the
    # partition load, which is identical across rows.
    document: dict[str, object] = {
        "scale": scale,
        "seed": seed,
        "requests": baseline["requests"],
        "generate_seconds": round(generate_seconds, 3),
        "configs": rows,
        "identical_output": True,
        "baseline_mine_peak_rss_kb": baseline["mine_peak_rss_kb"],
        "sharded_mine_peak_rss_kb": most_sharded["mine_peak_rss_kb"],
        "mine_peak_rss_reduction": round(
            baseline["mine_peak_rss_kb"] / most_sharded["mine_peak_rss_kb"], 3
        )
        if most_sharded["mine_peak_rss_kb"]
        else None,
    }
    if ooc is not None:
        # The out-of-core headline: the coordinator's mine-phase peak with
        # store-direct subprocess map jobs and the streaming reduce,
        # against the single-pass coordinator holding everything.
        document["out_of_core_coordinator_peak_rss_kb"] = ooc["coordinator_peak_rss_kb"]
        document["coordinator_rss_reduction"] = (
            round(
                baseline["mine_peak_rss_kb"] / ooc["coordinator_peak_rss_kb"], 3
            )
            if ooc["coordinator_peak_rss_kb"]
            else None
        )
    if chaos is not None and ooc is not None:
        # Fault-free vs retrying twin rows (same shards/dispatch/mode):
        # the ratio is the price of recovering from the injected plan,
        # gated in benchcheck as sharded.chaos_overhead_bounded.
        document["chaos"] = {
            "mine_seconds": chaos["mine_seconds"],
            "fault_free_mine_seconds": ooc["mine_seconds"],
            "overhead_ratio": round(chaos["mine_seconds"] / ooc["mine_seconds"], 3)
            if ooc["mine_seconds"]
            else None,
            "plan": chaos_plan,
        }
    return document


def _print_sharded_summary(document: dict[str, object]) -> None:
    configs = document["configs"]
    assert isinstance(configs, list)
    for row in configs:
        mode = " out-of-core" if row.get("out_of_core") else ""
        print(
            f"shards={row['shards']} workers={row['workers']} {row['executor']} "
            f"dispatch={row.get('dispatch', 'pool')}{mode}: "
            f"mine {row['mine_seconds']}s ({row['requests_per_second']} req/s), "
            f"coordinator peak RSS {row['mine_peak_rss_kb']} KB"
        )
    print(
        f"mine-phase peak RSS {document['baseline_mine_peak_rss_kb']} KB single-pass -> "
        f"{document['sharded_mine_peak_rss_kb']} KB most-sharded serial "
        f"({document['mine_peak_rss_reduction']}x), identical output"
    )
    if "out_of_core_coordinator_peak_rss_kb" in document:
        print(
            f"out-of-core coordinator peak RSS "
            f"{document['out_of_core_coordinator_peak_rss_kb']} KB "
            f"({document['coordinator_rss_reduction']}x below single-pass)"
        )
    chaos = document.get("chaos")
    if isinstance(chaos, dict):
        print(
            f"chaos twin (injected crash + torn spill): mine "
            f"{chaos['mine_seconds']}s vs fault-free "
            f"{chaos['fault_free_mine_seconds']}s "
            f"(overhead ratio {chaos['overhead_ratio']}), identical output"
        )


def _print_mine_summary(document: dict[str, object]) -> None:
    scales = document["scales"]
    assert isinstance(scales, list)
    for row in scales:
        print(
            f"scale {row['scale']}: {row['requests']} requests, "
            f"interned {row['interned']['total_seconds']}s "
            f"({row['interned']['requests_per_second']} req/s), "
            f"legacy {row['legacy']['total_seconds']}s "
            f"-> {row['speedup']}x, identical output"
        )
    overhead = document.get("obs_overhead")
    if isinstance(overhead, dict):
        print(
            f"obs overhead at scale {overhead['scale']}: "
            f"disabled {overhead['disabled']['total_seconds']}s, "
            f"enabled {overhead['enabled']['total_seconds']}s "
            f"(ratio {overhead['overhead_ratio']})"
        )
    heavy = document["heavy_hitter"]
    assert isinstance(heavy, dict)
    for entry in heavy["sizes"]:
        print(
            f"heavy-hitter {entry['servers']} servers: "
            f"uncapped {entry['uncapped']['enumerated_pairs']} pairs "
            f"({entry['uncapped']['seconds']}s), "
            f"capped {entry['capped']['enumerated_pairs']} pairs "
            f"({entry['capped']['seconds']}s)"
        )


def _print_stream_summary(document: dict[str, object]) -> None:
    workloads = document["workloads"]
    assert isinstance(workloads, dict)
    for name, entry in workloads.items():
        assert isinstance(entry, dict)
        print(
            f"{name}: cold {entry['cold']['total_seconds']}s, "
            f"incremental {entry['incremental']['total_seconds']}s "
            f"(speedup {entry['speedup']}x)"
        )
    checkpoint = document["checkpoint"]
    assert isinstance(checkpoint, dict)
    print(
        f"checkpoint: inline {checkpoint['inline_bytes']} B, "
        f"store-backed {checkpoint['store_bytes']} B "
        f"({checkpoint['shrink_factor']}x smaller)"
    )


def add_bench_arguments(parser: argparse.ArgumentParser, default_suite: str = "stream") -> None:
    """The benchmark flag set, shared by ``smash bench`` and this module."""
    parser.add_argument(
        "--suite",
        choices=["stream", "mine", "sharded", "all"],
        default=default_suite,
        help=f"which benchmark suite to run (default: {default_suite})",
    )
    parser.add_argument("--days", type=int, default=4, help="streaming suite: days to ingest")
    parser.add_argument("--window", type=int, default=2, help="streaming suite: window size")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--scales",
        default="0.25,0.5,1.0",
        help="mine suite: comma-separated scenario scale factors",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=2,
        help="mine suite: timing repetitions per core (best is kept)",
    )
    parser.add_argument(
        "--sharded-scale",
        type=float,
        default=10.0,
        help="sharded suite: scenario scale factor (default 10.0, ~1M requests "
        "— 10x the mine suite's largest default scale)",
    )
    parser.add_argument(
        "--shard-counts",
        default="1,2,4,8",
        help="sharded suite: comma-separated shard counts to probe",
    )
    parser.add_argument(
        "--shard-retries",
        type=int,
        default=2,
        help="sharded suite: retry budget per shard-map job (default 2)",
    )
    parser.add_argument(
        "--shard-timeout",
        type=float,
        default=600.0,
        metavar="SECONDS",
        help="sharded suite: per-attempt subprocess worker timeout "
        "(default 600)",
    )
    parser.add_argument(
        "--fault-plan",
        default=None,
        metavar="FILE",
        help="sharded suite: JSON fault plan for the chaos twin row "
        "(default: a generated crash + torn-spill plan)",
    )
    parser.add_argument(
        "--out",
        default=None,
        help="output JSON path (default: BENCH_stream.json / BENCH_mine.json; "
        "with --suite all, the mine document — the stream document "
        "then goes to BENCH_stream.json)",
    )
    parser.add_argument(
        "--stream-out",
        default="BENCH_stream.json",
        help="streaming-suite output path when --suite all (default: BENCH_stream.json)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="after running the selected suites, compare the fresh documents "
        "against the committed baselines (--check-baseline-dir) and exit "
        "non-zero on regression (see repro.eval.benchcheck)",
    )
    parser.add_argument(
        "--check-report",
        default="BENCH_check.json",
        metavar="FILE",
        help="--check: write the machine-readable comparison report here "
        "(default: BENCH_check.json; point it outside the checkout in CI)",
    )
    parser.add_argument(
        "--check-baseline-dir",
        default=".",
        metavar="DIR",
        help="--check: directory holding the committed BENCH_mine.json / "
        "BENCH_stream.json baselines (default: current directory)",
    )
    parser.add_argument(
        "--check-tolerance",
        type=float,
        default=None,
        help="--check: fractional slack before a speedup/shrink ratio "
        "regression fails (default: 0.35)",
    )
    parser.add_argument(
        "--check-rss-tolerance",
        type=float,
        default=None,
        help="--check: fractional slack before mine-phase peak-RSS growth "
        "fails (default: 0.25)",
    )
    parser.add_argument(
        "--metrics-out",
        default=None,
        metavar="FILE",
        help="write the bench run's metrics as a Prometheus text exposition to FILE",
    )
    parser.add_argument(
        "--trace-out",
        default=None,
        metavar="FILE",
        help="write a JSONL metrics + stage-span snapshot of the bench run to "
        "FILE (render with 'repro stats FILE')",
    )


def run_bench_cli(args: argparse.Namespace) -> int:
    """Execute the suites selected on an ``add_bench_arguments`` namespace."""
    from repro.obs.metrics import MetricsRegistry

    # One registry across every suite: all timed spans land in it, so
    # the obs exports describe the whole bench run.
    registry = MetricsRegistry()
    wrote = []
    if args.suite in ("stream", "all"):
        document = bench_stream(
            days=args.days, window=args.window, seed=args.seed, registry=registry
        )
        out = Path(args.stream_out if args.suite == "all" else (args.out or "BENCH_stream.json"))
        out.write_text(json.dumps(document, indent=1, sort_keys=True) + "\n")
        _print_stream_summary(document)
        wrote.append(out)
    if args.suite in ("mine", "all"):
        scales = tuple(float(part) for part in args.scales.split(",") if part)
        document = mine_scaling(
            scales=scales, seed=args.seed, repeats=args.repeats, registry=registry
        )
        out = Path(args.out or "BENCH_mine.json")
        out.write_text(json.dumps(document, indent=1, sort_keys=True) + "\n")
        _print_mine_summary(document)
        wrote.append(out)
    if args.suite == "sharded":
        shard_counts = tuple(int(part) for part in args.shard_counts.split(",") if part)
        fault_plan = None
        if getattr(args, "fault_plan", None):
            fault_plan = json.loads(Path(args.fault_plan).read_text())
        document = sharded_scaling(
            scale=args.sharded_scale,
            shard_counts=shard_counts,
            seed=args.seed,
            registry=registry,
            shard_retries=args.shard_retries,
            shard_timeout=args.shard_timeout,
            fault_plan=fault_plan,
        )
        # The sharded suite extends the mine document rather than owning a
        # separate file: read-modify-write under the "sharded" key so both
        # mining benchmarks stay tracked side by side in BENCH_mine.json.
        out = Path(args.out or "BENCH_mine.json")
        merged: dict[str, object] = {}
        if out.exists():
            existing = json.loads(out.read_text())
            if isinstance(existing, dict):
                merged = existing
        merged["sharded"] = document
        out.write_text(json.dumps(merged, indent=1, sort_keys=True) + "\n")
        _print_sharded_summary(document)
        wrote.append(out)
    if args.metrics_out or args.trace_out:
        from repro.obs import write_prometheus, write_snapshot

        if args.metrics_out:
            write_prometheus(registry, args.metrics_out)
            print(f"metrics -> {args.metrics_out}")
        if args.trace_out:
            write_snapshot(registry, args.trace_out)
            print(f"trace snapshot -> {args.trace_out}")
    for path in wrote:
        print(f"wrote {path}")
    if getattr(args, "check", False):
        from repro.eval.benchcheck import (
            DEFAULT_RSS_TOLERANCE,
            DEFAULT_TOLERANCE,
            run_check,
        )

        # A suite pair (mine then sharded) writes the same document twice;
        # compare each fresh file once, re-read from disk so the sharded
        # merge is included.
        unique = list(dict.fromkeys(path.resolve() for path in wrote))
        return run_check(
            unique,
            baseline_dir=Path(args.check_baseline_dir),
            tolerance=(
                args.check_tolerance
                if args.check_tolerance is not None
                else DEFAULT_TOLERANCE
            ),
            rss_tolerance=(
                args.check_rss_tolerance
                if args.check_rss_tolerance is not None
                else DEFAULT_RSS_TOLERANCE
            ),
            report_path=Path(args.check_report),
        )
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.eval.bench",
        description="performance benchmarks (each suite writes one JSON doc)",
    )
    add_bench_arguments(parser, default_suite="stream")
    return run_bench_cli(parser.parse_args(argv))


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
