"""Alert-quality evaluation against synthetic planted ground truth.

The paper validates detections against external evidence it does not
control (IDS hits, blacklists); the synthetic universe can go further
and score the *alert feed itself* against what was actually planted.
For each severity level this module reports how many alerts the policy
emitted, how many distinct campaign identities they covered, and the
resulting precision (alerted identities whose infrastructure really was
planted malicious) and recall (planted campaigns reached by at least
one alert) — the trade-off curve an operator tunes ``--min-severity``
along.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.stream.engine import StreamingSmash, StreamUpdate
from repro.stream.scoring import SEVERITIES, SEVERITY_RANK
from repro.synth.truth import GroundTruth


def planted_campaign_servers(truths: Iterable[GroundTruth]) -> dict[str, frozenset[str]]:
    """Planted campaign name -> all servers it ever used, across days."""
    servers: dict[str, set[str]] = {}
    for truth in truths:
        for campaign in truth.campaigns:
            servers.setdefault(campaign.name, set()).update(campaign.servers)
    return {name: frozenset(members) for name, members in servers.items()}


def alert_quality(
    engine: StreamingSmash,
    updates: Sequence[StreamUpdate],
    truths: Iterable[GroundTruth],
) -> dict[str, dict[str, object]]:
    """Per-severity alert precision/recall against the planted truth.

    For each severity level ``L`` the candidate set is every scored
    event of severity >= ``L`` (i.e. what ``min_severity=L`` would have
    emitted).  An alerted identity is a true positive when its all-time
    server set intersects any planted campaign's servers; a planted
    campaign is recalled when some true-positive alerted identity
    overlaps it.  ``precision``/``recall`` are ``None`` when their
    denominator is empty.
    """
    planted = planted_campaign_servers(truths)
    by_uid = {campaign.uid: campaign for campaign in engine.tracker.campaigns}
    malicious: frozenset[str] = frozenset().union(*planted.values()) if planted else frozenset()

    report: dict[str, dict[str, object]] = {}
    for severity in SEVERITIES:
        rank = SEVERITY_RANK[severity]
        events = [
            event
            for update in updates
            for event in update.events
            if event.severity is not None and SEVERITY_RANK[event.severity] >= rank
        ]
        uids = sorted({event.uid for event in events})
        true_positive_uids = [uid for uid in uids if by_uid[uid].all_servers & malicious]
        covered = sum(
            1
            for servers in planted.values()
            if any(servers & by_uid[uid].all_servers for uid in true_positive_uids)
        )
        precision = round(len(true_positive_uids) / len(uids), 4) if uids else None
        recall = round(covered / len(planted), 4) if planted else None
        report[severity] = {
            "alerts": len(events),
            "identities": len(uids),
            "true_positive_identities": len(true_positive_uids),
            "planted_campaigns": len(planted),
            "recalled_campaigns": covered,
            "precision": precision,
            "recall": recall,
        }
    return report
