"""Command-line interface.

Subcommands cover the deploy-and-operate loop the paper describes
("SMASH ... can be run everyday to detect daily malicious activities"):

* ``generate`` — materialise a synthetic scenario day to a JSONL trace
  (plus whois/oracle sidecar files), for demos and load testing;
* ``run`` — run the pipeline on a JSONL trace and write the campaign
  report as JSON;
* ``report`` — print a human-readable summary of a campaign JSON file;
* ``stream`` — run the incremental engine (:mod:`repro.stream`) over a
  multi-day stream with cross-day campaign tracking, alerts and
  checkpoint/resume;
* ``chaos`` — run a sharded mine under a deterministic injected fault
  plan (:mod:`repro.core.faults`) and assert its recovered output is
  byte-identical to the fault-free single-pass mine;
* ``bench`` — run the performance suites (:mod:`repro.eval.bench`):
  the interned-core scaling benchmark (``BENCH_mine.json``) and/or the
  streaming perf-trajectory benchmark (``BENCH_stream.json``);
* ``stats`` — render a human-readable report from a metrics artifact
  written by ``--metrics-out`` / ``--trace-out`` (:mod:`repro.obs`).

Examples::

    python -m repro generate --scenario small --out day0
    python -m repro run --trace day0/trace.jsonl --whois day0/whois.json \
        --redirects day0/redirects.json --out campaigns.json
    python -m repro report campaigns.json
    python -m repro stream --scenario small --days 7 \
        --checkpoint stream.ckpt --events events.jsonl --out summary.json
    python -m repro stream --day-dirs day0 day1 day2 --window 2 \
        --metrics-out metrics.prom --trace-out trace.jsonl
    python -m repro stats trace.jsonl
    python -m repro bench --scales 0.25,0.5,1.0 --out BENCH_mine.json
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import logging
import sys
from pathlib import Path

from repro.config import SmashConfig
from repro.core.pipeline import SmashPipeline
from repro.eval.export import write_result_json
from repro.httplog.loader import read_jsonl, write_jsonl
from repro.obs import (
    MetricsRegistry,
    configure_logging,
    render_stats,
    write_prometheus,
    write_snapshot,
)
from repro.synth.generator import TraceGenerator
from repro.synth.oracles import RedirectOracle
from repro.synth.scenarios import data2011day, data2012day, data2012week, small_scenario
from repro.whois.record import WhoisRecord
from repro.whois.registry import WhoisRegistry

_SCENARIOS = {
    "small": small_scenario,
    "data2011day": data2011day,
    "data2012day": data2012day,
    "data2012week": data2012week,
}


def _write_whois_json(registry: WhoisRegistry, path: Path) -> None:
    records = [
        record.to_dict() for record in sorted(registry, key=lambda r: r.domain)
    ]
    path.write_text(json.dumps(records, indent=1) + "\n")


def _read_whois_json(path: Path) -> WhoisRegistry:
    records = json.loads(path.read_text())
    return WhoisRegistry(WhoisRecord.from_dict(entry) for entry in records)


def _write_redirects_json(oracle: RedirectOracle, path: Path) -> None:
    path.write_text(json.dumps(oracle.to_dict(), indent=1) + "\n")


def _read_redirects_json(path: Path) -> RedirectOracle:
    return RedirectOracle.from_dict(json.loads(path.read_text()))


def _cmd_generate(args: argparse.Namespace) -> int:
    factory = _SCENARIOS[args.scenario]
    spec = factory(seed=args.seed) if args.scenario == "small" else factory(
        scale=args.scale, seed=args.seed
    )
    generator = TraceGenerator(spec)
    out = Path(args.out)
    out.mkdir(parents=True, exist_ok=True)
    dataset = generator.generate_day(args.day)
    written = write_jsonl(dataset.trace, out / "trace.jsonl")
    _write_whois_json(dataset.whois, out / "whois.json")
    _write_redirects_json(dataset.redirects, out / "redirects.json")
    truth = {
        "campaigns": [
            {
                "name": campaign.name,
                "category": campaign.category,
                "activity": campaign.activity,
                "servers": sorted(campaign.servers),
                "clients": sorted(campaign.clients),
            }
            for campaign in dataset.truth.campaigns
        ],
        "noise_category": dict(sorted(dataset.truth.noise_category.items())),
    }
    (out / "truth.json").write_text(json.dumps(truth, indent=1) + "\n")
    print(f"wrote {written} requests to {out / 'trace.jsonl'}")
    print(f"sidecars: whois.json, redirects.json, truth.json in {out}/")
    return 0


def _obs_registry(args: argparse.Namespace) -> MetricsRegistry | None:
    """A live registry when any obs export flag asks for one, else None."""
    if getattr(args, "metrics_out", None) or getattr(args, "trace_out", None):
        return MetricsRegistry()
    return None


def _export_obs(registry: MetricsRegistry | None, args: argparse.Namespace) -> None:
    if registry is None:
        return
    if args.metrics_out:
        write_prometheus(registry, args.metrics_out)
        print(f"metrics -> {args.metrics_out}")
    if args.trace_out:
        write_snapshot(registry, args.trace_out)
        print(f"trace snapshot -> {args.trace_out}")


def _apply_backend_flag(config: SmashConfig, args: argparse.Namespace) -> SmashConfig:
    """Pin the pure-python graph backend when ``--pure-python`` was given."""
    if getattr(args, "pure_python", False):
        return config.replace(
            dimensions=dataclasses.replace(config.dimensions, use_csr=False)
        )
    return config


def _cmd_run(args: argparse.Namespace) -> int:
    trace = read_jsonl(args.trace)
    whois = _read_whois_json(Path(args.whois)) if args.whois else None
    redirects = _read_redirects_json(Path(args.redirects)) if args.redirects else None
    registry = _obs_registry(args)
    config = SmashConfig().with_thresh(args.thresh).replace(
        workers=args.workers,
        executor=args.executor,
        shards=args.shards,
        dispatch=args.dispatch,
        out_of_core=args.out_of_core,
        shard_retries=args.shard_retries,
        shard_timeout=args.shard_timeout,
        fault_plan=_load_fault_plan(args),
        metrics=registry,
    )
    config = _apply_backend_flag(config, args)
    if args.dimensions:
        config = config.replace(
            enabled_secondary_dimensions=tuple(args.dimensions.split(","))
        )
    config.validate()
    result = SmashPipeline(config).run(trace, whois=whois, redirects=redirects)
    write_result_json(result, args.out)
    print(
        f"{len(result.campaigns)} campaigns, "
        f"{len(result.detected_servers)} servers -> {args.out}"
    )
    _export_obs(registry, args)
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    data = json.loads(Path(args.campaigns).read_text())
    campaigns = data.get("campaigns", [])
    print(f"{len(campaigns)} inferred campaigns, "
          f"{len(data.get('detected_servers', []))} servers total")
    for campaign in campaigns:
        print(
            f"\ncampaign #{campaign['id']}: {campaign['num_servers']} servers, "
            f"{campaign['num_clients']} clients"
        )
        for server in campaign["servers"][: args.max_servers]:
            dims = ",".join(campaign["dimensions"].get(server, []))
            score = campaign["scores"].get(server)
            rendered = f"{score:.2f}" if isinstance(score, float) else "-"
            print(f"    {server:<40} score={rendered:<6} [{dims}]")
        hidden = campaign["num_servers"] - args.max_servers
        if hidden > 0:
            print(f"    ... and {hidden} more")
    return 0


def _ids_evidence(arg: str | None):
    """``--ids`` sources: 'scenario' binds the generator's per-day IDS
    generations; a path loads ``{"ids2012": [servers], "ids2013": [...]}``."""
    from repro.domains.names import normalize_server_name
    from repro.stream import StaticEvidence
    from repro.stream.scoring import scenario_ids_evidence

    if arg is None:
        return ()
    if arg == "scenario":
        return scenario_ids_evidence()
    data = json.loads(Path(arg).read_text())
    # Campaign servers are pipeline-aggregated second-level names; feed
    # entries ("www.evil.com") must land in the same name space or they
    # silently never match.
    known_2012 = frozenset(normalize_server_name(s) for s in data.get("ids2012", ()))
    known_2013 = frozenset(normalize_server_name(s) for s in data.get("ids2013", ()))
    return (
        StaticEvidence("ids2012", known_2012, kind="ids"),
        StaticEvidence("ids2013_zero_day", known_2013 - known_2012, kind="zero_day"),
    )


def _blacklist_evidence(arg: str | None):
    """``--blacklist`` source: 'scenario' binds the generator's per-day
    aggregator; a path loads a JSON array of servers (or feed->servers map)."""
    from repro.domains.names import normalize_server_name
    from repro.stream import BlacklistEvidence, StaticEvidence

    if arg is None:
        return ()
    if arg == "scenario":
        return (BlacklistEvidence(),)
    data = json.loads(Path(arg).read_text())
    if isinstance(data, dict):
        servers = [server for feed in data.values() for server in feed]
    else:
        servers = list(data)
    normalized = [normalize_server_name(server) for server in servers]
    return (StaticEvidence("blacklist", normalized, kind="blacklist"),)


def _cmd_stream(args: argparse.Namespace) -> int:
    from repro.stream import (
        AlertPolicy,
        JsonlSink,
        StreamingSmash,
        TrackerConfig,
        load_checkpoint,
        save_checkpoint,
    )
    from repro.stream.window import DayPartition

    configure_logging(args.log_level, args.log_json)
    logger = logging.getLogger("repro.stream.cli")
    registry = _obs_registry(args)
    evidence = _ids_evidence(args.ids) + _blacklist_evidence(args.blacklist)
    if args.day_dirs and any(flag == "scenario" for flag in (args.ids, args.blacklist)):
        print("error: --ids/--blacklist scenario evidence needs a generated "
              "scenario feed, not --day-dirs (pass evidence files instead)",
              file=sys.stderr)
        return 2
    policy = AlertPolicy(min_severity=args.min_severity, growth_rate=args.growth_rate)
    policy.validate()
    # On --resume the sinks dedupe against what their files already hold
    # (the resumed stream replays at most the crashed day); a fresh
    # stream appends plainly, so reusing a file never swallows new days.
    sinks: tuple[JsonlSink, ...] = ()
    if args.events:
        # The event log stays complete whatever the severity floor; only
        # the --alerts feed is filtered.
        sinks += (JsonlSink(args.events, resume_safe=args.resume, receive_all=True),)
    if args.alerts:
        sinks += (JsonlSink(args.alerts, resume_safe=args.resume),)
    config = _apply_backend_flag(
        SmashConfig().replace(
            workers=args.workers,
            executor=args.executor,
            shards=args.shards,
            dispatch=args.dispatch,
            out_of_core=args.out_of_core,
            shard_retries=args.shard_retries,
            shard_timeout=args.shard_timeout,
            fault_plan=_load_fault_plan(args),
            incremental=args.incremental,
        ),
        args,
    )
    config.validate()
    checkpoint = Path(args.checkpoint) if args.checkpoint else None
    if args.resume and checkpoint is not None and checkpoint.exists():
        # Evidence accumulations are restored from the checkpoint into
        # the freshly-built sources; the alert policy is operational
        # tuning (like sinks), so the command line's flags apply.
        engine = load_checkpoint(
            checkpoint,
            config=config,
            sinks=sinks,
            store_dir=args.store,
            evidence=evidence,
            policy=policy,
            metrics=registry,
        )
        print(f"resumed from {checkpoint} (last day: {engine.last_day})")
        # The checkpoint carries the stream's window size and tracker
        # tuning; changing them mid-stream would silently change what a
        # "matched" campaign means, so the checkpointed values win.
        if engine.window.size != args.window:
            print(f"note: --window {args.window} ignored on resume "
                  f"(checkpoint uses {engine.window.size})")
        if engine.tracker.config.server_jaccard != args.match_jaccard:
            print(f"note: --match-jaccard {args.match_jaccard} ignored on resume "
                  f"(checkpoint uses {engine.tracker.config.server_jaccard})")
    else:
        engine = StreamingSmash(
            config=config,
            window_size=args.window,
            tracker_config=TrackerConfig(server_jaccard=args.match_jaccard),
            sinks=sinks,
            store_dir=args.store,
            evidence=evidence,
            policy=policy,
            metrics=registry,
        )
    start_day = 0 if engine.last_day is None else engine.last_day + 1

    def feed():
        if args.day_dirs:
            for day, directory in enumerate(args.day_dirs):
                if day < start_day:
                    continue
                root = Path(directory)
                whois_path = root / "whois.json"
                redirects_path = root / "redirects.json"
                yield DayPartition(
                    day=day,
                    trace=read_jsonl(root / "trace.jsonl"),
                    whois=_read_whois_json(whois_path) if whois_path.exists() else None,
                    redirects=_read_redirects_json(redirects_path)
                    if redirects_path.exists() else None,
                )
        else:
            factory = _SCENARIOS[args.scenario]
            if args.scenario == "small":
                spec = factory(seed=args.seed, days=args.days)
            else:
                spec = factory(scale=args.scale, seed=args.seed)
            generator = TraceGenerator(spec)
            for dataset in generator.iter_days(start=start_day):
                # Scenario ground truth rotates with the campaigns; the
                # evidence sources adopt each day's IDS/blacklists just
                # before the engine ingests that day.
                for source in engine.evidence:
                    source.bind_dataset(dataset)
                yield DayPartition(
                    day=dataset.day,
                    trace=dataset.trace,
                    whois=dataset.whois,
                    redirects=dataset.redirects,
                )

    updates = []
    for partition in feed():
        update = engine.ingest_day(
            partition.day,
            partition.trace,
            whois=partition.whois,
            redirects=partition.redirects,
        )
        updates.append(update)
        critical = sum(1 for event in update.alerts if event.severity == "critical")
        logger.info(
            f"day {update.day}",
            extra={
                "data": {
                    "day": update.day,
                    "campaigns": update.num_campaigns,
                    "servers": len(update.detected_servers),
                    "new": len(update.events_of("new_campaign")),
                    "grown": len(update.events_of("campaign_growth")),
                    "died": len(update.events_of("campaign_died")),
                    "active": len(update.active),
                    "alerts": len(update.alerts),
                    "critical": critical,
                    "mined_dimensions": len(update.mined_dimensions),
                    "reused_dimensions": len(update.reused_dimensions),
                }
            },
        )
        if checkpoint is not None:
            save_checkpoint(engine, checkpoint)
    engine.close()

    if not updates and start_day > 0:
        print("nothing to do: stream already past the requested days")

    tracker = engine.tracker
    print(f"\n{len(tracker.campaigns)} campaign identities tracked:")
    for row in tracker.lifetimes():
        status = "active" if row["alive"] else "dead"
        print(
            f"  {row['uid']}: days {row['first_seen']}-{row['last_seen']} "
            f"({row['days_seen']} seen, {row['max_consecutive_days']} consecutive), "
            f"{row['servers']} servers ({row['all_servers']} all-time), {status}"
        )

    if args.campaigns_out:
        if updates:
            write_result_json(updates[-1].result, args.campaigns_out)
            print(f"final-window campaigns -> {args.campaigns_out}")
        else:
            print("no new days streamed; --campaigns-out not written")

    if args.out:
        summary = {
            "lifetimes": tracker.lifetimes(),
            "persistence": [
                {
                    "day": p.day,
                    "old_servers": p.old_servers,
                    "new_servers_old_clients": p.new_servers_old_clients,
                    "new_servers_new_clients": p.new_servers_new_clients,
                }
                for p in tracker.persistence_series()
            ],
            # Per-day, per-dimension candidate-pair accounting: the
            # heavy-hitter load signal, now visible outside `smash bench`.
            "build_stats": [
                {"day": update.day, "dimensions": update.build_stats}
                for update in updates
            ],
        }
        Path(args.out).write_text(json.dumps(summary, indent=1) + "\n")
        print(f"\nsummary -> {args.out}")
    _export_obs(registry, args)
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.eval.bench import run_bench_cli

    return run_bench_cli(args)


def _result_digest(result) -> str:
    import hashlib

    from repro.eval.export import result_to_dict

    document = json.dumps(result_to_dict(result), sort_keys=True)
    return hashlib.sha256(document.encode("utf-8")).hexdigest()


def _counter_total(registry: MetricsRegistry, name: str) -> int:
    family = registry.get(name)
    if family is None:
        return 0
    return int(sum(child.value for _, child in family.samples()))


def _cmd_chaos(args: argparse.Namespace) -> int:
    """Prove fault recovery: a faulted sharded mine must equal the clean run."""
    from repro.core.faults import RECOVERABLE_KINDS, FaultPlan
    from repro.errors import ReproError

    factory = _SCENARIOS[args.scenario]
    spec = factory(seed=args.seed) if args.scenario == "small" else factory(
        scale=args.scale, seed=args.seed
    )
    dataset = TraceGenerator(spec).generate_day(0)

    config = _apply_backend_flag(
        SmashConfig().replace(
            workers=args.workers,
            executor=args.executor,
            shards=args.shards,
            dispatch=args.dispatch,
            shard_retries=args.shard_retries,
            shard_timeout=args.shard_timeout,
        ),
        args,
    )
    config.validate()

    # The reference is the fault-free *single-pass* mine: recovery must
    # reproduce not just "a" result but the one the unsharded pipeline
    # computes (sharded == single-pass is already test-enforced; chaos
    # extends the equality through crashes, hangs and torn spills).
    clean = SmashPipeline(config.replace(shards=1)).run(
        dataset.trace, whois=dataset.whois, redirects=dataset.redirects
    )
    clean_digest = _result_digest(clean)
    print(f"clean run: {len(clean.campaigns)} campaigns, digest {clean_digest[:12]}")

    if args.fault_plan:
        plan = FaultPlan.load(args.fault_plan)
    else:
        kinds = tuple(args.kinds.split(",")) if args.kinds else RECOVERABLE_KINDS
        # Hangs must overshoot the timeout comfortably or they are not
        # hangs; everything else in the plan is wall-clock-free.
        plan = FaultPlan.generate(
            args.shards, kinds, hang_seconds=max(4.0, 4.0 * args.shard_timeout)
        )
    print(f"fault plan: {len(plan.faults)} trigger(s)")
    for fault in plan.faults:
        scope = "every attempt" if fault.attempt is None else f"attempt {fault.attempt}"
        print(f"  shard {fault.shard} {scope}: {fault.kind}")

    registry = MetricsRegistry()
    chaos_digest = None
    failure = None
    try:
        chaos = SmashPipeline(config.replace(fault_plan=plan, metrics=registry)).run(
            dataset.trace, whois=dataset.whois, redirects=dataset.redirects
        )
        chaos_digest = _result_digest(chaos)
    except ReproError as error:
        failure = f"{type(error).__name__}: {error}"

    identical = chaos_digest is not None and chaos_digest == clean_digest
    accounting = {
        name: _counter_total(registry, f"smash_shard_{name}_total")
        for name in ("retries", "worker_failures", "reassigned")
    }
    if failure is not None:
        print(f"chaos run FAILED: {failure}")
    else:
        print(f"chaos run: digest {chaos_digest[:12]}")
    print(
        f"recovery: {accounting['worker_failures']} worker failure(s), "
        f"{accounting['retries']} retr(y/ies), "
        f"{accounting['reassigned']} reassignment(s)"
    )
    print("byte-identical to clean run" if identical else "OUTPUT DIVERGED")

    if args.report:
        report = {
            "identical": identical,
            "clean_digest": clean_digest,
            "chaos_digest": chaos_digest,
            "error": failure,
            "plan": plan.to_dict(),
            "shards": args.shards,
            "dispatch": args.dispatch,
            **accounting,
        }
        Path(args.report).write_text(json.dumps(report, indent=1, sort_keys=True) + "\n")
        print(f"report -> {args.report}")
    return 0 if identical else 1


def _add_obs_flags(parser: argparse.ArgumentParser) -> None:
    """``--metrics-out`` / ``--trace-out`` metric export destinations."""
    parser.add_argument(
        "--metrics-out",
        default=None,
        metavar="FILE",
        help="write the run's metrics as a Prometheus text exposition to FILE",
    )
    parser.add_argument(
        "--trace-out",
        default=None,
        metavar="FILE",
        help="write a JSONL metrics + stage-span snapshot to FILE "
        "(render with 'repro stats FILE')",
    )


def _cmd_stats(args: argparse.Namespace) -> int:
    print(render_stats(args.file), end="")
    return 0


def _add_worker_flags(parser: argparse.ArgumentParser) -> None:
    """``--workers`` / ``--executor`` / ``--shards`` for parallel mining."""
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="workers for per-dimension mining (0 = one per CPU, default 1 = "
        "serial); every worker count produces identical output",
    )
    parser.add_argument(
        "--executor",
        choices=["serial", "thread", "process"],
        default="thread",
        help="executor used when --workers > 1 (default: thread)",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=1,
        help="shard the mine into N map-reduce partitions with spill-to-store "
        "partials (default 1 = single pass); every shard count produces "
        "byte-identical output",
    )
    parser.add_argument(
        "--dispatch",
        choices=["serial", "pool", "subprocess"],
        default="pool",
        help="how sharded map jobs execute: on the worker pool (default), "
        "inline (serial), or one subprocess per shard exchanging only store "
        "paths and content digests; every dispatch kind produces "
        "byte-identical output",
    )
    parser.add_argument(
        "--out-of-core",
        action="store_true",
        help="reduce shard partials into per-dimension indexes without ever "
        "assembling the full window trace in the coordinator (requires "
        "--store for streaming; output is byte-identical either way)",
    )
    parser.add_argument(
        "--pure-python",
        action="store_true",
        help="force the pure-python reference graph backend instead of the "
        "numpy CSR fast path (output is byte-identical either way)",
    )
    _add_fault_flags(parser)


def _add_fault_flags(parser: argparse.ArgumentParser) -> None:
    """``--shard-retries`` / ``--shard-timeout`` / ``--fault-plan``."""
    parser.add_argument(
        "--shard-retries",
        type=int,
        default=2,
        help="retries per failed shard-map job before the coordinator "
        "reassigns it inline (default 2; 0 = single attempt); recovery "
        "produces byte-identical output",
    )
    parser.add_argument(
        "--shard-timeout",
        type=float,
        default=600.0,
        metavar="SECONDS",
        help="kill a subprocess shard worker after this many seconds and "
        "retry (default 600)",
    )
    parser.add_argument(
        "--fault-plan",
        default=None,
        metavar="FILE",
        help="inject deterministic shard-job faults from this JSON plan "
        "(testing/chaos only; see 'repro chaos')",
    )


def _load_fault_plan(args: argparse.Namespace):
    if getattr(args, "fault_plan", None):
        from repro.core.faults import FaultPlan

        return FaultPlan.load(args.fault_plan)
    return None


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="SMASH malware-campaign discovery (ICDCS 2015)"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    generate = sub.add_parser("generate", help="materialise a synthetic scenario day")
    generate.add_argument("--scenario", choices=sorted(_SCENARIOS), default="small")
    generate.add_argument("--scale", type=float, default=1.0)
    generate.add_argument("--seed", type=int, default=7)
    generate.add_argument("--day", type=int, default=0)
    generate.add_argument("--out", required=True, help="output directory")
    generate.set_defaults(func=_cmd_generate)

    run = sub.add_parser("run", help="run SMASH on a JSONL trace")
    run.add_argument("--trace", required=True)
    run.add_argument("--whois", default=None)
    run.add_argument("--redirects", default=None)
    run.add_argument("--thresh", type=float, default=0.8)
    run.add_argument(
        "--dimensions",
        default=None,
        help="comma-separated secondary dimensions "
        "(default: urifile,ipset,whois)",
    )
    run.add_argument("--out", required=True, help="campaign JSON output path")
    _add_worker_flags(run)
    _add_obs_flags(run)
    run.set_defaults(func=_cmd_run)

    report = sub.add_parser("report", help="summarise a campaign JSON file")
    report.add_argument("campaigns")
    report.add_argument("--max-servers", type=int, default=5)
    report.set_defaults(func=_cmd_report)

    stream = sub.add_parser(
        "stream", help="run the incremental multi-day streaming engine"
    )
    stream.add_argument("--scenario", choices=sorted(_SCENARIOS), default="small")
    stream.add_argument("--scale", type=float, default=1.0)
    stream.add_argument("--seed", type=int, default=7)
    stream.add_argument(
        "--days",
        type=int,
        default=7,
        help="number of days (small scenario only; presets fix their own)",
    )
    stream.add_argument(
        "--day-dirs",
        nargs="+",
        default=None,
        metavar="DIR",
        help="stream from 'repro generate' output directories instead of "
        "generating a scenario (each holds trace.jsonl [+ sidecars])",
    )
    stream.add_argument("--window", type=int, default=1, help="rolling window size in days")
    stream.add_argument(
        "--match-jaccard",
        type=float,
        default=0.3,
        help="server-set Jaccard threshold for cross-day campaign identity",
    )
    stream.add_argument("--checkpoint", default=None, help="checkpoint file, saved after every day")
    stream.add_argument(
        "--resume",
        action="store_true",
        help="resume from --checkpoint if it exists",
    )
    stream.add_argument(
        "--store",
        default=None,
        metavar="DIR",
        help="persist each day partition into this on-disk trace store; "
        "checkpoints then hold (day, digest) references instead of "
        "embedded traces and stay a few KB regardless of window size",
    )
    stream.add_argument(
        "--no-incremental",
        dest="incremental",
        action="store_false",
        default=True,
        help="disable the per-dimension incremental mining cache and fully "
        "re-mine the window every day (results are identical either way)",
    )
    stream.add_argument(
        "--events",
        default=None,
        help="append every scored tracker event to this JSONL file "
        "(unfiltered by --min-severity)",
    )
    stream.add_argument(
        "--alerts",
        default=None,
        metavar="FILE",
        help="append scored alerts (severity >= --min-severity) to this "
        "JSONL file; with --resume, replayed days are never duplicated",
    )
    stream.add_argument(
        "--min-severity",
        choices=["info", "warning", "critical"],
        default="info",
        help="suppress events below this severity before they reach any "
        "sink (default: info = everything)",
    )
    stream.add_argument(
        "--growth-rate",
        type=float,
        default=3.0,
        help="servers added per advance that makes a growth event at "
        "least a warning (default: 3)",
    )
    stream.add_argument(
        "--ids",
        default=None,
        metavar="SCENARIO_OR_FILE",
        help="IDS evidence: 'scenario' runs the generated scenario's "
        "2012/2013 signature generations over each day (zero-day "
        "hits escalate to critical), or a JSON file "
        '{"ids2012": [servers], "ids2013": [servers]}',
    )
    stream.add_argument(
        "--blacklist",
        default=None,
        metavar="SCENARIO_OR_FILE",
        help="blacklist evidence: 'scenario' checks servers against the "
        "generated scenario's blacklist aggregator, or a JSON array "
        "of servers / {feed: [servers]} file",
    )
    stream.add_argument("--out", default=None, help="write lifetimes + persistence summary JSON")
    stream.add_argument(
        "--campaigns-out",
        default=None,
        help="write the final window's campaign JSON (same schema as 'run --out')",
    )
    stream.add_argument(
        "--log-level",
        choices=["debug", "info", "warning", "error"],
        default="info",
        help="stderr log level for per-advance summaries (default: info)",
    )
    stream.add_argument(
        "--log-json",
        action="store_true",
        help="emit log lines as JSON objects instead of human-readable text",
    )
    _add_worker_flags(stream)
    _add_obs_flags(stream)
    stream.set_defaults(func=_cmd_stream)

    chaos = sub.add_parser(
        "chaos",
        help="run a sharded mine under an injected fault plan and assert "
        "its output is byte-identical to the fault-free single-pass mine",
    )
    chaos.add_argument("--scenario", choices=sorted(_SCENARIOS), default="small")
    chaos.add_argument("--scale", type=float, default=1.0)
    chaos.add_argument("--seed", type=int, default=7)
    chaos.add_argument("--shards", type=int, default=3)
    chaos.add_argument(
        "--dispatch",
        choices=["serial", "pool", "subprocess"],
        default="subprocess",
        help="dispatcher to stress (default: subprocess — the only one that "
        "can enforce timeouts and survive real worker death)",
    )
    chaos.add_argument(
        "--workers",
        type=int,
        default=0,
        help="concurrent shard workers (0 = one per CPU)",
    )
    chaos.add_argument("--executor", choices=["serial", "thread", "process"], default="thread")
    chaos.add_argument(
        "--shard-retries",
        type=int,
        default=2,
        help="retry budget per shard job (default 2)",
    )
    chaos.add_argument(
        "--shard-timeout",
        type=float,
        default=20.0,
        metavar="SECONDS",
        help="per-attempt worker timeout; injected hangs sleep 4x this "
        "(default 20)",
    )
    chaos.add_argument(
        "--fault-plan",
        default=None,
        metavar="FILE",
        help="use this JSON fault plan instead of generating one",
    )
    chaos.add_argument(
        "--kinds",
        default=None,
        help="comma-separated fault kinds for the generated plan "
        "(default: all six recoverable kinds)",
    )
    chaos.add_argument(
        "--report",
        default=None,
        metavar="FILE",
        help="write a JSON chaos report (digests, plan, retry accounting)",
    )
    chaos.add_argument(
        "--pure-python",
        action="store_true",
        help="force the pure-python graph backend in both runs",
    )
    chaos.set_defaults(func=_cmd_chaos)

    bench = sub.add_parser(
        "bench",
        help="run the perf benchmarks (mine scaling and/or streaming)",
    )
    from repro.eval.bench import add_bench_arguments

    add_bench_arguments(bench, default_suite="mine")
    bench.set_defaults(func=_cmd_bench)

    stats = sub.add_parser(
        "stats",
        help="render a metrics/trace artifact written by --metrics-out/--trace-out",
    )
    stats.add_argument("file", help="Prometheus text exposition or JSONL snapshot")
    stats.set_defaults(func=_cmd_stats)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
