"""Command-line interface.

Three subcommands cover the deploy-and-operate loop the paper describes
("SMASH ... can be run everyday to detect daily malicious activities"):

* ``generate`` — materialise a synthetic scenario day to a JSONL trace
  (plus whois/oracle sidecar files), for demos and load testing;
* ``run`` — run the pipeline on a JSONL trace and write the campaign
  report as JSON;
* ``report`` — print a human-readable summary of a campaign JSON file.

Examples::

    python -m repro generate --scenario small --out day0
    python -m repro run --trace day0/trace.jsonl --whois day0/whois.json \
        --redirects day0/redirects.json --out campaigns.json
    python -m repro report campaigns.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.config import SmashConfig
from repro.core.pipeline import SmashPipeline
from repro.eval.export import result_to_dict, write_result_json
from repro.httplog.loader import read_jsonl, write_jsonl
from repro.synth.generator import TraceGenerator
from repro.synth.oracles import RedirectOracle
from repro.synth.scenarios import data2011day, data2012day, data2012week, small_scenario
from repro.whois.record import WhoisRecord
from repro.whois.registry import WhoisRegistry

_SCENARIOS = {
    "small": small_scenario,
    "data2011day": data2011day,
    "data2012day": data2012day,
    "data2012week": data2012week,
}


def _write_whois_json(registry: WhoisRegistry, path: Path) -> None:
    records = [
        {
            "domain": record.domain,
            "registrant": record.registrant,
            "address": record.address,
            "email": record.email,
            "phone": record.phone,
            "name_servers": list(record.name_servers),
            "registered_on": record.registered_on,
            "is_proxy": record.is_proxy,
        }
        for record in sorted(registry, key=lambda r: r.domain)
    ]
    path.write_text(json.dumps(records, indent=1) + "\n")


def _read_whois_json(path: Path) -> WhoisRegistry:
    records = json.loads(path.read_text())
    return WhoisRegistry(
        WhoisRecord(
            domain=entry["domain"],
            registrant=entry.get("registrant", ""),
            address=entry.get("address", ""),
            email=entry.get("email", ""),
            phone=entry.get("phone", ""),
            name_servers=tuple(entry.get("name_servers", ())),
            registered_on=float(entry.get("registered_on", 0.0)),
            is_proxy=bool(entry.get("is_proxy", False)),
        )
        for entry in records
    )


def _write_redirects_json(oracle: RedirectOracle, path: Path) -> None:
    mapping = {
        server: oracle.landing_server(server)
        for server in sorted(oracle.chain_members())
    }
    path.write_text(json.dumps(mapping, indent=1) + "\n")


def _read_redirects_json(path: Path) -> RedirectOracle:
    mapping = json.loads(path.read_text())
    return RedirectOracle(landing_of=mapping)


def _cmd_generate(args: argparse.Namespace) -> int:
    factory = _SCENARIOS[args.scenario]
    spec = factory(seed=args.seed) if args.scenario == "small" else factory(
        scale=args.scale, seed=args.seed
    )
    generator = TraceGenerator(spec)
    out = Path(args.out)
    out.mkdir(parents=True, exist_ok=True)
    dataset = generator.generate_day(args.day)
    written = write_jsonl(dataset.trace, out / "trace.jsonl")
    _write_whois_json(dataset.whois, out / "whois.json")
    _write_redirects_json(dataset.redirects, out / "redirects.json")
    truth = {
        "campaigns": [
            {
                "name": campaign.name,
                "category": campaign.category,
                "activity": campaign.activity,
                "servers": sorted(campaign.servers),
                "clients": sorted(campaign.clients),
            }
            for campaign in dataset.truth.campaigns
        ],
        "noise_category": dict(sorted(dataset.truth.noise_category.items())),
    }
    (out / "truth.json").write_text(json.dumps(truth, indent=1) + "\n")
    print(f"wrote {written} requests to {out / 'trace.jsonl'}")
    print(f"sidecars: whois.json, redirects.json, truth.json in {out}/")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    trace = read_jsonl(args.trace)
    whois = _read_whois_json(Path(args.whois)) if args.whois else None
    redirects = _read_redirects_json(Path(args.redirects)) if args.redirects else None
    config = SmashConfig().with_thresh(args.thresh)
    if args.dimensions:
        config = config.replace(
            enabled_secondary_dimensions=tuple(args.dimensions.split(","))
        )
    config.validate()
    result = SmashPipeline(config).run(trace, whois=whois, redirects=redirects)
    write_result_json(result, args.out)
    print(
        f"{len(result.campaigns)} campaigns, "
        f"{len(result.detected_servers)} servers -> {args.out}"
    )
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    data = json.loads(Path(args.campaigns).read_text())
    campaigns = data.get("campaigns", [])
    print(f"{len(campaigns)} inferred campaigns, "
          f"{len(data.get('detected_servers', []))} servers total")
    for campaign in campaigns:
        print(
            f"\ncampaign #{campaign['id']}: {campaign['num_servers']} servers, "
            f"{campaign['num_clients']} clients"
        )
        for server in campaign["servers"][: args.max_servers]:
            dims = ",".join(campaign["dimensions"].get(server, []))
            score = campaign["scores"].get(server)
            rendered = f"{score:.2f}" if isinstance(score, float) else "-"
            print(f"    {server:<40} score={rendered:<6} [{dims}]")
        hidden = campaign["num_servers"] - args.max_servers
        if hidden > 0:
            print(f"    ... and {hidden} more")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="SMASH malware-campaign discovery (ICDCS 2015)"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    generate = sub.add_parser("generate", help="materialise a synthetic scenario day")
    generate.add_argument("--scenario", choices=sorted(_SCENARIOS), default="small")
    generate.add_argument("--scale", type=float, default=1.0)
    generate.add_argument("--seed", type=int, default=7)
    generate.add_argument("--day", type=int, default=0)
    generate.add_argument("--out", required=True, help="output directory")
    generate.set_defaults(func=_cmd_generate)

    run = sub.add_parser("run", help="run SMASH on a JSONL trace")
    run.add_argument("--trace", required=True)
    run.add_argument("--whois", default=None)
    run.add_argument("--redirects", default=None)
    run.add_argument("--thresh", type=float, default=0.8)
    run.add_argument(
        "--dimensions", default=None,
        help="comma-separated secondary dimensions "
             "(default: urifile,ipset,whois)",
    )
    run.add_argument("--out", required=True, help="campaign JSON output path")
    run.set_defaults(func=_cmd_run)

    report = sub.add_parser("report", help="summarise a campaign JSON file")
    report.add_argument("campaigns")
    report.add_argument("--max-servers", type=int, default=5)
    report.set_defaults(func=_cmd_report)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
