"""Exception hierarchy for the :mod:`repro` package.

Every error raised intentionally by this library derives from
:class:`ReproError` so that callers can catch library failures with a single
``except`` clause while still letting programming errors (``TypeError`` and
friends) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigError(ReproError):
    """An invalid configuration value was supplied."""


class TraceError(ReproError):
    """A trace file or trace record is malformed."""


class GraphError(ReproError):
    """An invalid graph operation was attempted."""


class ScenarioError(ReproError):
    """A synthetic scenario specification is inconsistent."""


class GroundTruthError(ReproError):
    """Ground-truth (IDS/blacklist) data is inconsistent with the trace."""


class PipelineError(ReproError):
    """The SMASH pipeline was driven with inconsistent inputs."""


class WorkerError(PipelineError):
    """A shard-job worker died or misbehaved in a retryable way.

    Raised for failures that concern the *execution* of a shard job —
    a crashed subprocess, an unparseable worker reply — rather than its
    inputs.  Re-running the same job (on a fresh spill name) can
    succeed, so the dispatch layer's retry policy treats every
    ``WorkerError`` as retryable (see :mod:`repro.core.faults`).
    """


class ShardTimeoutError(WorkerError):
    """A shard-job worker ran past the configured ``shard_timeout``."""


class ObsError(ReproError):
    """A metric or span was registered or recorded inconsistently."""


class StreamError(ReproError):
    """The streaming engine was driven with inconsistent inputs."""


class CheckpointError(StreamError):
    """A streaming checkpoint is missing, corrupt or incompatible."""
