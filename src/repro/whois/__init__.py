"""Whois substrate: registration records and a queryable registry."""

from repro.whois.record import WhoisRecord, WHOIS_FIELDS
from repro.whois.registry import WhoisRegistry

__all__ = ["WHOIS_FIELDS", "WhoisRecord", "WhoisRegistry"]
