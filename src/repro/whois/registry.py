"""A queryable Whois registry.

In production SMASH would query live Whois; here the registry is populated
by the synthetic-trace generator.  Lookups are by registrable (second-level)
domain.  IP-address "servers" have no registration and return ``None``,
exactly as a live Whois lookup on a bare IP would be unusable for the
field-comparison dimension.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from repro.whois.record import WhoisRecord


class WhoisRegistry:
    """In-memory mapping domain -> :class:`WhoisRecord`."""

    def __init__(self, records: Iterable[WhoisRecord] = ()) -> None:
        self._records: dict[str, WhoisRecord] = {}
        for record in records:
            self.add(record)

    def add(self, record: WhoisRecord) -> None:
        """Register *record*; re-registering a domain overwrites it."""
        self._records[record.domain.lower()] = record

    def lookup(self, domain: str) -> WhoisRecord | None:
        """Return the record for *domain* (case-insensitive) or ``None``."""
        return self._records.get(domain.lower())

    def __contains__(self, domain: str) -> bool:
        return domain.lower() in self._records

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[WhoisRecord]:
        return iter(self._records.values())

    def merged_with(self, other: "WhoisRegistry") -> "WhoisRegistry":
        """A new registry containing both record sets (other wins ties)."""
        merged = WhoisRegistry(self)
        for record in other:
            merged.add(record)
        return merged
