"""Whois registration records.

The paper's Whois dimension compares the fields "register name, home
address, email address, phone number and name servers" (Section III-B2,
Figure 5) and counts how many are shared between two registrations.  A
single shared field — typically a privacy/registration proxy — is not
enough; at least two shared fields are required.
"""

from __future__ import annotations

from dataclasses import dataclass

#: The comparable Whois fields, in a fixed order.
WHOIS_FIELDS: tuple[str, ...] = (
    "registrant",
    "address",
    "email",
    "phone",
    "name_servers",
)


@dataclass(frozen=True, slots=True)
class WhoisRecord:
    """One domain registration.

    ``name_servers`` is stored as a sorted tuple and compared as a whole:
    the paper's Figure 5 treats "name servers" as a single shared field
    (both example domains delegate to the same NS pair).
    """

    domain: str
    registrant: str = ""
    address: str = ""
    email: str = ""
    phone: str = ""
    name_servers: tuple[str, ...] = ()
    registered_on: float = 0.0  # days since epoch of the synthetic universe
    is_proxy: bool = False  # registered through a privacy proxy

    def __post_init__(self) -> None:
        if not self.domain:
            raise ValueError("WhoisRecord.domain must be non-empty")
        object.__setattr__(
            self, "name_servers", tuple(sorted(self.name_servers))
        )

    def field_value(self, field_name: str) -> object:
        """Comparable value of *field_name* (empty values compare as absent)."""
        if field_name not in WHOIS_FIELDS:
            raise KeyError(f"unknown whois field: {field_name}")
        return getattr(self, field_name)

    def shared_fields(self, other: "WhoisRecord") -> tuple[str, ...]:
        """Names of the fields with identical non-empty values in both records."""
        shared = []
        for field_name in WHOIS_FIELDS:
            mine = self.field_value(field_name)
            theirs = other.field_value(field_name)
            if mine and theirs and mine == theirs:
                shared.append(field_name)
        return tuple(shared)

    def present_fields(self) -> tuple[str, ...]:
        """Names of the fields carrying a non-empty value in this record."""
        return tuple(f for f in WHOIS_FIELDS if self.field_value(f))

    def to_dict(self) -> dict[str, object]:
        """Serialise to a JSON-compatible dict (the whois.json sidecar and
        streaming-checkpoint schema; inverse of :meth:`from_dict`)."""
        return {
            "domain": self.domain,
            "registrant": self.registrant,
            "address": self.address,
            "email": self.email,
            "phone": self.phone,
            "name_servers": list(self.name_servers),
            "registered_on": self.registered_on,
            "is_proxy": self.is_proxy,
        }

    @classmethod
    def from_dict(cls, data: dict[str, object]) -> "WhoisRecord":
        return cls(
            domain=str(data["domain"]),
            registrant=str(data.get("registrant", "")),
            address=str(data.get("address", "")),
            email=str(data.get("email", "")),
            phone=str(data.get("phone", "")),
            name_servers=tuple(data.get("name_servers", ())),  # type: ignore[arg-type]
            registered_on=float(data.get("registered_on", 0.0)),  # type: ignore[arg-type]
            is_proxy=bool(data.get("is_proxy", False)),
        )
