"""Packaging for the SMASH reproduction.

Metadata lives here rather than in ``pyproject.toml``: the offline
environment lacks the ``wheel`` package, so PEP-517 installs (which
build a wheel) fail — use ``python setup.py develop`` there instead
(modern pip rejects ``--no-use-pep517`` without wheel).  Environments
with wheel available install normally with ``pip install -e .``.
``pyproject.toml`` carries only the build backend declaration and tool
configuration (pytest).
"""

from setuptools import find_packages, setup

setup(
    name="repro-smash",
    version="1.0.0",
    description=(
        "Reproduction of SMASH: Systematic Mining of Associated Server "
        "Herds for Malware Campaign Discovery (ICDCS 2015)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    extras_require={
        # The CSR graph fast path (repro.graph.csr) auto-engages when
        # numpy is importable and produces byte-identical output either
        # way; the core stays dependency-free.
        "fast": ["numpy>=1.24"],
    },
    entry_points={
        "console_scripts": [
            "smash = repro.cli:main",
        ],
    },
)
