"""Section VI (Overhead) — sparse-matrix similarity construction.

The paper notes the N^2 similarity computation "can be significantly
reduced by sparse matrix multiplication".  This bench times the
pure-Python pair-accumulation builder against the scipy sparse builder
on the full preprocessed Data2011day trace and checks they produce the
same graph.
"""

import pytest

from repro.core.dimensions.client import build_client_graph
from repro.core.dimensions.client_sparse import (
    build_client_graph_sparse,
    scipy_available,
)
from repro.core.preprocess import preprocess


@pytest.mark.skipif(not scipy_available(), reason="scipy not installed")
def test_sparse_builder_equivalence_and_speed(runner, emit, benchmark):
    dataset = runner.dataset("2011")
    prepared, _ = preprocess(dataset.trace)

    import time
    start = time.perf_counter()
    dense = build_client_graph(prepared)
    dense_seconds = time.perf_counter() - start

    sparse = benchmark(build_client_graph_sparse, prepared)

    dense_edges = {frozenset((u, v)): w for u, v, w in dense.edges()}
    sparse_edges = {frozenset((u, v)): w for u, v, w in sparse.edges()}
    assert set(dense_edges) == set(sparse_edges)
    assert all(
        abs(dense_edges[key] - sparse_edges[key]) < 1e-9 for key in dense_edges
    )

    emit("sparse_speedup", "\n".join([
        "Sparse vs dense client-similarity construction (Section VI)",
        f"servers: {len(prepared.servers)}, edges: {len(dense_edges)}",
        f"pure-python builder: {dense_seconds * 1000:.1f} ms",
        "(sparse builder timing in the benchmark table below)",
    ]))
