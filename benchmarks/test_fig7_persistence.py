"""Figure 7 — persistent vs agile malicious campaigns over the week.

Shape targets: after the benchmark day there are persistent servers
(old servers seen again), agile campaigns (new servers contacted by
already-known malicious clients) and brand-new campaigns; agile servers
dominate the new ones ("most servers belong to agile malicious
campaigns").
"""


def test_fig7_persistence(runner, emit, benchmark):
    series = benchmark.pedantic(runner.fig7, rounds=1, iterations=1)

    lines = ["Figure 7 - persistent vs agile campaigns",
             f"{'day':>4} {'old':>6} {'new/old-client':>15} {'new/new-client':>15}"]
    for entry in series:
        lines.append(
            f"{entry.day:>4} {entry.old_servers:>6} "
            f"{entry.new_servers_old_clients:>15} "
            f"{entry.new_servers_new_clients:>15}"
        )
    emit("fig7_persistence", "\n".join(lines))

    assert len(series) == 7
    # Day 0 is the benchmark: everything is new.
    assert series[0].old_servers == 0
    later = series[1:]
    assert sum(e.old_servers for e in later) > 0, "persistent campaigns exist"
    assert sum(e.new_servers_old_clients for e in later) > 0, "agile campaigns exist"
    assert sum(e.new_servers_new_clients for e in later) > 0, "new campaigns appear"
    # Agile turnover dominates persistence among *new* servers (paper:
    # "malware may change their servers/domains every day").
    assert (
        sum(e.new_servers_old_clients for e in later)
        > sum(e.new_servers_new_clients for e in later) * 0.5
    )
