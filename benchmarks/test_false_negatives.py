"""Section V-A2 — false-negative analysis against IDS threat groups.

The paper reports two FN classes: campaigns sharing *no* secondary
dimension (Cycbot / Fake AV / Tidserv — would need the parameter-pattern
extension) and servers lost to pruning.  Our planted `cycbot-a` /
`fakeav-a` campaigns reproduce the first class.
"""


def test_false_negatives(runner, emit, benchmark):
    missed = benchmark.pedantic(
        runner.false_negatives,
        rounds=1,
        iterations=1,
    )
    dataset = runner.dataset("2011")

    lines = ["False negatives vs IDS threat groups (Section V-A2)"]
    for threat, servers in sorted(missed.items()):
        lines.append(f"  {threat}: {len(servers)} servers missed")
    emit("false_negatives", "\n".join(lines))

    # The no-shared-secondary-dimension campaigns are missed, as in the
    # paper; their servers DO share a parameter pattern (the documented
    # extension would recover them).
    assert "cycbot-a" in missed
    fn_campaign = next(
        c for c in dataset.truth.campaigns if c.name == "cycbot-a"
    )
    patterns = set()
    for request in dataset.trace:
        if request.host in fn_campaign.servers:
            patterns.add(request.parameter_names)
    assert len(patterns) == 1, "FN campaign shares a URI parameter pattern"

    # The detected case-study campaigns must NOT appear as fully missed.
    detected = runner.result("2011", 0.8).detected_servers
    for name in ("sality-a",):
        campaign = next(c for c in dataset.truth.campaigns if c.name == name)
        assert campaign.servers & detected
