"""Figure 9 (Appendix A) — IDF (client-count) distribution and the
threshold-200 justification.

Shape targets: ~90% of malicious servers sit below 10 clients; the
maximum malicious client count is far below the 200-client threshold
while some benign servers exceed it (so the filter removes only
popular benign properties).
"""

from repro.util.stats import percentile_of


def test_fig9_idf(runner, emit, benchmark):
    all_series, malicious_series = benchmark.pedantic(
        runner.fig9,
        rounds=1,
        iterations=1,
    )

    malicious_counts = [v for v, _ in malicious_series]
    all_counts = [v for v, _ in all_series]
    lines = ["Figure 9 - IDF distribution (client count per server)"]
    lines.append(f"servers total: {len(all_counts)} distinct IDF values")
    lines.append(f"max IDF all servers:       {max(all_counts)}")
    lines.append(f"max IDF malicious servers: {max(malicious_counts)}")
    frac_low = percentile_of(malicious_counts, 10)
    lines.append(f"fraction of malicious-IDF values <= 10 clients: {frac_low:.2f}")
    emit("fig9_idf", "\n".join(lines))

    # Malicious servers live in the unpopular region (paper: 90% < 10,
    # max 127 << 200).
    assert max(malicious_counts) < 200
    assert frac_low >= 0.5
    # The threshold actually has something to cut: benign servers above it.
    assert max(all_counts) > 200
