"""Tables VII, VIII, IX, X — the attack-campaign case studies.

* Bagle (Table VII): two compromised-server tiers re-merged into one
  campaign through shared bots;
* Sality (Table VIII): dedicated C&C pair (shared IP + "/" + Whois) plus
  compromised download hosts;
* iframe injection (Table IX): SMASH recovers (nearly) the whole victim
  population where the IDS labels a handful;
* Zeus (Table X): the DGA herd is inferred without any 2012 signature.
"""


def _campaign_for(result, servers):
    """The inferred campaign containing most of *servers*."""
    best, best_overlap = None, 0
    for campaign in result.campaigns:
        overlap = len(campaign.servers & servers)
        if overlap > best_overlap:
            best, best_overlap = campaign, overlap
    return best


def test_case_studies(runner, emit, benchmark):
    result = benchmark.pedantic(
        runner.result,
        args=("2011", 0.8),
        rounds=1,
        iterations=1,
    )
    dataset = runner.dataset("2011")
    truth = {c.name: c for c in dataset.truth.campaigns}
    detected = result.detected_servers
    lines = ["Case studies (Tables VII, VIII, IX, X)"]

    # --- Bagle: tier merging ----------------------------------------------------
    bagle = truth["bagle-a"]
    campaign = _campaign_for(result, bagle.servers)
    assert campaign is not None, "Bagle campaign not recovered"
    downloads = campaign.servers & bagle.servers_in_tier("download")
    cncs = campaign.servers & bagle.servers_in_tier("cnc")
    lines.append(
        f"Bagle: one campaign with {len(downloads)} download + {len(cncs)} C&C "
        "servers (merged through shared bots)"
    )
    assert len(downloads) >= 10 and len(cncs) >= 12
    # Both tiers inside ONE inferred campaign (Section III-E merging).
    assert downloads and cncs

    # --- Sality ------------------------------------------------------------------
    sality = truth["sality-a"]
    found = sality.servers & detected
    lines.append(f"Sality: {len(found)}/{len(sality.servers)} servers recovered")
    assert len(found) >= len(sality.servers) * 0.7

    # --- iframe injection ----------------------------------------------------------
    iframe = truth["iframe-a"]
    ids_hits = dataset.ids2012.detected_servers(dataset.trace) & iframe.servers
    found = iframe.servers & detected
    lines.append(
        f"iframe: SMASH {len(found)} vs IDS {len(ids_hits)} of "
        f"{len(iframe.servers)} injected victims"
    )
    assert len(found) >= len(iframe.servers) * 0.9
    assert len(found) > 10 * max(1, len(ids_hits))  # paper: 600 vs 4

    # --- Zeus ---------------------------------------------------------------------
    zeus = truth["zeus-a"]
    ids2012 = dataset.ids2012.detected_servers(dataset.trace)
    found = zeus.servers & detected
    lines.append(
        f"Zeus: {len(found)}/{len(zeus.servers)} DGA domains inferred with "
        "zero 2012 signatures"
    )
    assert not (zeus.servers & ids2012)
    assert found == zeus.servers
    campaign = _campaign_for(result, zeus.servers)
    assert campaign is not None
    for server in zeus.servers:
        dims = campaign.dimensions_of(server)
        assert {"urifile", "ipset"} <= dims  # login.php + shared IP pool

    emit("case_studies", "\n".join(lines))
