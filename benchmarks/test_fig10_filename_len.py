"""Figure 10 (Appendix B) — length distribution of malicious URI files
and the len=25 justification.

Shape targets: the bulk of malicious filenames are short (the paper has
85% under 25 characters), with a heavy-tail of long obfuscated names
that the charset-cosine comparison must handle.
"""

from repro.util.stats import percentile_of


def test_fig10_filename_lengths(runner, emit, benchmark):
    lengths = benchmark.pedantic(runner.fig10, rounds=1, iterations=1)

    frac_short = percentile_of(lengths, 25)
    lines = ["Figure 10 - malicious URI file name lengths"]
    lines.append(f"files measured:              {len(lengths)}")
    lines.append(f"fraction <= 25 chars:        {frac_short:.2f}")
    lines.append(f"longest filename:            {max(lengths)} chars")
    emit("fig10_filename_len", "\n".join(lines))

    assert lengths
    assert frac_short >= 0.6, "most malicious filenames are unobfuscated"
    assert max(lengths) > 25, "obfuscated long names exist in the trace"
