"""Table I — trace statistics of the three datasets."""

from repro.eval.tables import render_table


def test_table1_trace_stats(runner, emit, benchmark):
    dataset = runner.dataset("2011")
    benchmark(dataset.trace.stats)

    table = runner.table1()
    rows = list(next(iter(table.values())).keys())
    text = render_table("Table I", rows, table)
    emit("table1_trace_stats", text)

    for column in table.values():
        # Each dataset is a real multi-thousand-server trace.
        assert column["# of clients"] > 50
        assert column["# of HTTP requests"] > column["# of Servers"]
        assert column["# of URI Files"] > column["# of Servers"]
    # The week trace dominates the day traces (paper shape).
    week = table["Data2012week"]
    for name in ("Data2011day", "Data2012day"):
        assert week["# of HTTP requests"] > table[name]["# of HTTP requests"]
