"""Table V — number of attack campaigns per day over Data2012week.

Shape targets: SMASH reports a steady stream of campaigns every day,
always more than the IDS-confirmed subset; FP (updated) <= FP.
"""

from repro.eval.tables import render_table


def test_table5_week_campaigns(runner, emit, benchmark):
    rows = benchmark.pedantic(runner.table5, rounds=1, iterations=1)

    columns = {f"Day {i + 1}": row for i, row in enumerate(rows)}
    labels = list(rows[0].keys())
    emit("table5_week_campaigns", render_table("Table V", labels, columns))

    for day, row in enumerate(rows):
        assert row["SMASH"] > 0, f"day {day}: no campaigns at all"
        confirmed = row["IDS 2013 total"] + row["IDS 2013 partial"]
        assert row["SMASH"] >= confirmed, f"day {day}"
        assert row["FP (Updated)"] <= row["False Positives"], f"day {day}"
    # Campaigns appear throughout the week, not just on the benchmark day.
    assert sum(row["SMASH"] for row in rows[1:]) > 0
