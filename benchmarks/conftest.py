"""Shared benchmark fixtures.

One session-scoped :class:`~repro.eval.experiments.ExperimentRunner`
serves all benches: scenario generation and ASH mining are cached, so
each bench times its own experiment-specific computation and prints the
paper-shaped table.  Output is also written to ``results/<bench>.txt``.

Set ``REPRO_BENCH_SCALE`` (default 1.0) to shrink the scenarios and
``REPRO_BENCH_WORKERS`` (default 1) to fan per-dimension mining out over
a pool (identical results, different wall time).
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.eval.experiments import ExperimentRunner

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


@pytest.fixture(scope="session")
def runner() -> ExperimentRunner:
    scale = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
    workers = int(os.environ.get("REPRO_BENCH_WORKERS", "1"))
    return ExperimentRunner(scale=scale, workers=workers)


@pytest.fixture(scope="session")
def emit():
    """Write a named result artifact and echo it to stdout."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _emit(name: str, text: str) -> None:
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        print(f"\n{text}")

    return _emit
