"""Section V-C1 — taxonomy of multi-client main-dimension herds.

The paper's manual study of 50 random herds found 60% referrer groups,
10% redirection groups, 8% similar-content groups, 18% unknown and 4%
malicious.  Shape targets: benign structural groups (referrer /
redirection / similar-content) together outnumber malicious herds, and a
large population of servers is dropped by the main dimension outright.
"""

from repro.eval.tables import render_mapping


def test_main_dimension_taxonomy(runner, emit, benchmark):
    taxonomy = benchmark.pedantic(runner.taxonomy, rounds=1, iterations=1)
    result = runner.result("2011", 0.8)

    lines = [render_mapping("Main-dimension herd taxonomy (Section V-C1)", taxonomy)]
    lines.append(
        f"servers dropped by the main dimension: {len(result.main_dimension_dropped)}"
    )
    emit("main_dimension_taxonomy", "\n".join(lines))

    assert taxonomy
    assert abs(sum(taxonomy.values()) - 1.0) < 1e-9
    structural = (
        taxonomy.get("referrer", 0.0)
        + taxonomy.get("redirection", 0.0)
        + taxonomy.get("similar_content", 0.0)
        + taxonomy.get("unknown", 0.0)
    )
    assert structural > taxonomy.get("malicious", 0.0), (
        "most main-dimension herds are benign structure, not malware"
    )
    # Section V-C1: a large share of servers cannot be correlated at all.
    assert len(result.main_dimension_dropped) > 100
