"""Tables XI and XII (Appendix C) — single-client campaigns.

Shape targets: SMASH finds single-client campaigns (which client-side
clustering systems cannot see at all); counts decrease with threshold;
the single-client track is noisier than the multi-client one, which is
why the paper raises its operating threshold to 1.0.
"""

from repro.eval.experiments import THRESHOLDS
from repro.eval.tables import render_table


def test_table11_12_single_client(runner, emit, benchmark):
    table11 = benchmark.pedantic(runner.table11, rounds=1, iterations=1)
    table12 = runner.table12()

    blocks = []
    for title, table in (("Table XI", table11), ("Table XII", table12)):
        for label, sweep in table.items():
            columns = {str(thresh): row for thresh, row in sweep.items()}
            rows = list(next(iter(columns.values())).keys())
            blocks.append(render_table(f"{title} - {label}", rows, columns))
    emit("table11_12_single_client", "\n\n".join(blocks))

    for label, sweep in table11.items():
        counts = [sweep[t]["SMASH"] for t in THRESHOLDS]
        assert counts == sorted(counts, reverse=True), label
        assert sweep[1.0]["SMASH"] > 0, f"{label}: single-client campaigns found"
    for label, sweep in table12.items():
        # Single-client detections exist at the Appendix-C threshold.
        assert sweep[1.0]["SMASH"] > 0, label
