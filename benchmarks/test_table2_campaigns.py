"""Table II — number of malicious campaigns vs inference threshold.

Shape targets (multi-client track): campaign count and false positives
decrease monotonically with the threshold; FP (updated) <= FP; zero FPs
at threshold 1.5; the Zeus herd shows up as an "IDS 2013 total" campaign
(zero-day detection).
"""

from repro.eval.experiments import THRESHOLDS
from repro.eval.tables import render_table


def test_table2_campaigns(runner, emit, benchmark):
    # Time the threshold-dependent stage (correlation + pruning +
    # inference); mining is cached and threshold-independent.
    mined = runner.mined("2011")
    dataset = runner.dataset("2011")
    benchmark.pedantic(
        runner.pipeline.finish,
        args=(mined,),
        kwargs={"redirects": dataset.redirects, "thresh": 0.8},
        rounds=3,
        iterations=1,
    )

    table2 = runner.table2()
    blocks = []
    for label, sweep in table2.items():
        columns = {str(thresh): row for thresh, row in sweep.items()}
        rows = list(next(iter(columns.values())).keys())
        blocks.append(render_table(f"Table II - {label}", rows, columns))
    emit("table2_campaigns", "\n\n".join(blocks))

    for label, sweep in table2.items():
        counts = [sweep[t]["SMASH"] for t in THRESHOLDS]
        fps = [sweep[t]["False Positives"] for t in THRESHOLDS]
        assert counts == sorted(counts, reverse=True), label
        assert fps == sorted(fps, reverse=True), label
        assert sweep[1.5]["False Positives"] == 0, label
        for thresh in THRESHOLDS:
            row = sweep[thresh]
            assert row["FP (Updated)"] <= row["False Positives"]
        # Zero-day evidence: a campaign fully covered only by the NEWER
        # signature generation exists at the operating point.
        assert sweep[0.8]["IDS 2013 total"] >= 1, label
        # SMASH reports campaigns beyond what any single source confirms.
        assert sweep[0.8]["SMASH"] > sweep[0.8]["IDS 2012 total"], label
