"""Table VI — number of servers involved in malicious activities per day
over Data2012week.

Shape targets: hundreds of servers daily; "New Servers" (previously
unknown) present every day; FP (updated) <= FP.
"""

from repro.eval.tables import render_table


def test_table6_week_servers(runner, emit, benchmark):
    rows = benchmark.pedantic(runner.table6, rounds=1, iterations=1)

    columns = {f"Day {i + 1}": row for i, row in enumerate(rows)}
    labels = list(rows[0].keys())
    emit("table6_week_servers", render_table("Table VI", labels, columns))

    for day, row in enumerate(rows):
        assert row["SMASH"] > 0, f"day {day}"
        assert row["SMASH"] >= row["IDS 2013"], f"day {day}"
        assert row["FP (Updated)"] <= row["False Positives"], f"day {day}"
    total_new = sum(row["New Servers"] for row in rows)
    total_ids = sum(row["IDS 2013"] for row in rows)
    assert total_new > total_ids, (
        "across the week SMASH must surface more previously-unknown "
        "servers than the IDS knows"
    )
