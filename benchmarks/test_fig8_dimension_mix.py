"""Figure 8 — effectiveness of the secondary dimensions.

Shape targets: the URI-file dimension is the workhorse (the paper
attributes 53.71% of detected servers to it alone), the all-three combo
exists (15.05% in the paper), and IP/Whois mostly act as confirmation
for the URI-file dimension rather than alone.
"""

from repro.eval.tables import render_mapping


def test_fig8_dimension_mix(runner, emit, benchmark):
    decomposition = benchmark.pedantic(
        runner.fig8,
        rounds=1,
        iterations=1,
    )
    emit("fig8_dimension_mix", render_mapping(
        "Figure 8 - detected servers by dimension combination",
        decomposition,
    ))

    assert decomposition, "no detected servers to decompose"
    assert abs(sum(decomposition.values()) - 1.0) < 1e-9

    urifile_alone = decomposition.get("urifile", 0.0)
    ip_alone = decomposition.get("ipset", 0.0)
    whois_alone = decomposition.get("whois", 0.0)
    # URI file is the dominant single dimension.
    assert urifile_alone > ip_alone
    assert urifile_alone > whois_alone
    # Combination evidence exists (the "cross check with more dimensions"
    # mechanism of eq. 9).
    combos = [key for key in decomposition if "+" in key]
    assert combos, "no multi-dimension detections"
