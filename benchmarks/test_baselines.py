"""Baseline comparison — the paper's positioning claims, executable.

* SMASH covers a multiple of IDS+blacklist (Section V-A2's ~7x claim);
* client-side clustering cannot see single-client campaigns
  (Section V-A3: 75% of campaigns have one infected client);
* per-domain reputation misses compromised-benign servers
  (Section V-D1's Bagle/iframe discussion).
"""

from repro.baselines import (
    BlacklistOnlyDetector,
    ClientClusteringDetector,
    DomainReputationDetector,
    IdsOnlyDetector,
)
from repro.eval.tables import render_mapping


def test_baseline_comparison(runner, emit, benchmark):
    dataset = runner.dataset("2011")
    trace = dataset.trace
    truth = dataset.truth
    malicious = truth.malicious_servers

    smash = (
        runner.result("2011", 0.8).detected_servers
        | runner.result("2011", 1.0).detected_servers
    )
    ids = IdsOnlyDetector(dataset.ids2012).detect_servers(trace)
    blacklist = BlacklistOnlyDetector(dataset.blacklists).detect_servers(trace)

    client_detector = ClientClusteringDetector()
    client_side = benchmark.pedantic(
        client_detector.detect_servers,
        args=(trace,),
        rounds=1,
        iterations=1,
    )

    reputation = DomainReputationDetector()
    reputation.train(trace, dataset.ids2012, whois=dataset.whois)
    reputation_hits = reputation.detect_servers(trace, whois=dataset.whois)

    rows = {}
    for name, detected in (
        ("SMASH", smash),
        ("IDS 2012 signatures", ids),
        ("Online blacklists", blacklist),
        ("Client-side clustering", client_side),
        ("Domain reputation", reputation_hits),
    ):
        tp = len(detected & malicious)
        fp = len(detected - malicious - truth.noise_servers)
        rows[f"{name}: TP"] = tp
        rows[f"{name}: benign FP"] = fp
    emit("baselines", render_mapping(
        f"Server coverage (of {len(malicious)} planted malicious)",
        rows,
    ))

    # SMASH finds a multiple of the signature/blacklist knowledge.
    assert rows["SMASH: TP"] >= 3 * (
        rows["IDS 2012 signatures: TP"] + rows["Online blacklists: TP"]
    )
    # ... at a benign cost no worse than the supervised classifier's,
    # despite needing no training data at all.
    assert rows["SMASH: benign FP"] <= rows["Domain reputation: benign FP"]
    assert rows["SMASH: TP"] > 2 * rows["Domain reputation: TP"]

    # Client clustering: blind to every single-client campaign.
    for campaign in truth.campaigns:
        if len(campaign.clients) == 1:
            assert not (campaign.servers & client_side), campaign.name

    # Reputation baseline: misses most compromised-benign victims (their
    # names, registrations and content look benign — Section V-D1), while
    # SMASH recovers them through herd structure.
    victims = set()
    for campaign in truth.campaigns:
        for server, tier in campaign.tier_of_server.items():
            if tier in ("victims", "download"):
                victims.add(server)
    if victims:
        missed = victims - reputation_hits
        assert len(missed) >= 0.5 * len(victims)
        assert len(victims & smash) > len(victims & reputation_hits)
