"""Figure 6 — distribution of campaign sizes and involved-client counts.

Shape targets: most campaigns are small (the paper's "75% of attack
campaigns have size smaller than 18"), and most campaigns involve a
single client ("75% of attack campaigns have only one infected client"),
which is the argument against client-side clustering systems.
"""


def test_fig6_size_cdf(runner, emit, benchmark):
    dist = benchmark.pedantic(runner.fig6, rounds=1, iterations=1)

    lines = ["Figure 6 - campaign size / client count distributions", "-" * 54]
    lines.append(f"campaigns analysed:          {len(dist.campaign_sizes)}")
    lines.append(
        f"fraction with size < 18:     {dist.fraction_small_campaigns(18):.2f}"
    )
    lines.append(
        f"fraction with single client: {dist.fraction_single_client():.2f}"
    )
    lines.append("campaign-size CDF: " + ", ".join(
        f"({v},{f:.2f})" for v, f in dist.campaign_size_cdf()[:12]
    ))
    lines.append("client-count CDF:  " + ", ".join(
        f"({v},{f:.2f})" for v, f in dist.client_count_cdf()[:12]
    ))
    emit("fig6_size_cdf", "\n".join(lines))

    assert len(dist.campaign_sizes) >= 10
    assert dist.fraction_small_campaigns(18) >= 0.5
    # Single-client campaigns dominate (paper: ~75%).
    assert dist.fraction_single_client() >= 0.3
    # CDFs end at 1.
    assert dist.campaign_size_cdf()[-1][1] == 1.0
