"""Ablations of SMASH's design choices (DESIGN.md ablation index).

Each ablation switches one mechanism off (or distorts one parameter) and
shows the measurable consequence:

* disabling pruning leaks referrer/redirect groups into the campaigns;
* disabling a secondary dimension removes the campaigns only it could
  confirm (Figure 8's combination argument);
* lowering the IDF threshold erodes coverage (popular servers with
  incidental bot traffic disappear);
* the mu=4 sigmoid centre is what keeps sub-4-server intersections from
  passing on a single dimension.
"""

import dataclasses

from repro.config import CorrelationConfig, SmashConfig
from repro.core.pipeline import SmashPipeline
from repro.eval.tables import render_mapping


def _detected(runner, config, thresh=0.8):
    dataset = runner.dataset("2011")
    pipeline = SmashPipeline(config)
    result = pipeline.run(
        dataset.trace,
        whois=dataset.whois,
        redirects=dataset.redirects,
        thresh=thresh,
    )
    return result


def test_ablations(runner, emit, benchmark):
    dataset = runner.dataset("2011")
    truth = dataset.truth
    baseline = runner.result("2011", 0.8)
    baseline_tp = len(baseline.detected_servers & truth.malicious_servers)

    rows = {}

    # --- no pruning -------------------------------------------------------------
    config = SmashConfig().replace(
        pruning=dataclasses.replace(
            SmashConfig().pruning,
            prune_redirection_groups=False,
            prune_referrer_groups=False,
        )
    )
    no_prune = benchmark.pedantic(
        _detected,
        args=(runner, config),
        rounds=1,
        iterations=1,
    )
    leaked = {
        s for s in no_prune.detected_servers
        if truth.noise_category.get(s) in ("referrer", "redirect")
    }
    rows["pruning off: leaked referrer/redirect servers"] = len(leaked)
    baseline_leaked = {
        s for s in baseline.detected_servers
        if truth.noise_category.get(s) in ("referrer", "redirect")
    }
    assert len(leaked) > len(baseline_leaked), (
        "pruning must be what keeps referrer/redirect herds out"
    )

    # --- single secondary dimension ----------------------------------------------
    config = SmashConfig(enabled_secondary_dimensions=("urifile",))
    urifile_only = _detected(runner, config)
    tp_urifile = len(urifile_only.detected_servers & truth.malicious_servers)
    rows["urifile-only: true positives"] = tp_urifile
    rows["all dimensions: true positives"] = baseline_tp
    assert tp_urifile < baseline_tp, (
        "IP/Whois confirmation must add campaigns beyond URI-file alone"
    )

    # --- aggressive IDF threshold ---------------------------------------------------
    config = SmashConfig().replace(
        preprocess=dataclasses.replace(SmashConfig().preprocess, idf_threshold=3)
    )
    aggressive = _detected(runner, config)
    tp_aggressive = len(aggressive.detected_servers & truth.malicious_servers)
    rows["idf_threshold=3: true positives"] = tp_aggressive
    assert tp_aggressive < baseline_tp, (
        "an over-aggressive popularity filter must hurt coverage"
    )

    # --- parameter-pattern extension (Section V-A2's FN remedy) -------------------------
    config = SmashConfig(
        enabled_secondary_dimensions=("urifile", "ipset", "whois", "urlparam"),
    )
    extended = _detected(runner, config)
    cycbot = next(c for c in truth.campaigns if c.name == "cycbot-a")
    stock_found = len(cycbot.servers & baseline.detected_servers)
    extended_found = len(cycbot.servers & extended.detected_servers)
    rows["cycbot servers found (stock system)"] = stock_found
    rows["cycbot servers found (+urlparam extension)"] = extended_found
    assert stock_found == 0, "cycbot must be a stock-system false negative"
    assert extended_found > 0, (
        "the paper's parameter-pattern extension must recover the "
        "Cycbot-style campaign"
    )

    # --- sigmoid centre ----------------------------------------------------------------
    config = SmashConfig().replace(
        correlation=CorrelationConfig(mu=0.0, sigma=5.5)
    )
    loose_phi = _detected(runner, config)
    fp_loose = len([
        s for s in loose_phi.detected_servers
        if s not in truth.malicious_servers
    ])
    fp_baseline = len([
        s for s in baseline.detected_servers
        if s not in truth.malicious_servers
    ])
    rows["mu=0: false-positive servers"] = fp_loose
    rows["mu=4 (paper): false-positive servers"] = fp_baseline
    assert fp_loose >= fp_baseline, (
        "removing the small-herd penalty cannot reduce false positives"
    )

    emit("ablations", render_mapping("Ablations (data2011day)", rows))
