"""Section VI (Overhead) — parallel per-dimension mining.

``SmashPipeline.mine`` runs one independent build-graph + Louvain job per
dimension (main + urifile + ipset + whois by default).  This bench times
serial mining against thread- and process-pool fan-out on the full
Data2011day trace, asserts the outputs are structurally identical (the
determinism guarantee that makes the fan-out verifiable at all), and
records the wall times in BENCH style.

The speedup is hardware-dependent: thread fan-out is GIL-bound on the
pure-Python builders, and process fan-out pays a trace-pickling tax, so
on a single-CPU box the parallel rows can be *slower* — the table records
whatever the hardware gives.
"""

from __future__ import annotations

import os
import time

from repro.core.pipeline import SmashPipeline


def _timed_mine(pipeline, dataset, **kwargs):
    start = time.perf_counter()
    mined = pipeline.mine(dataset.trace, whois=dataset.whois, **kwargs)
    return mined, time.perf_counter() - start


def test_parallel_mine_equivalence_and_speed(runner, emit):
    dataset = runner.dataset("2011")
    pipeline = SmashPipeline(runner.config.replace(workers=1))
    workers = max(4, os.cpu_count() or 1)

    serial, serial_s = _timed_mine(pipeline, dataset)
    threaded, thread_s = _timed_mine(
        pipeline, dataset, workers=workers, executor="thread"
    )
    processed, process_s = _timed_mine(
        pipeline, dataset, workers=workers, executor="process"
    )

    # Identical results at any worker count — the determinism guarantee.
    for parallel in (threaded, processed):
        assert parallel.main == serial.main
        assert parallel.secondary == serial.secondary

    rows = [
        ("serial (workers=1)", serial_s),
        (f"thread pool (workers={workers})", thread_s),
        (f"process pool (workers={workers})", process_s),
    ]
    lines = [
        "Parallel per-dimension mining (main + %d secondary dimensions)"
        % len(serial.secondary),
        f"trace: {len(dataset.trace)} requests, "
        f"{len(dataset.trace.servers)} servers, cpus: {os.cpu_count()}",
    ]
    for label, seconds in rows:
        speedup = serial_s / seconds if seconds > 0 else float("inf")
        lines.append(f"{label:<28} {seconds * 1000:8.1f} ms  ({speedup:.2f}x)")
    emit("parallel_mine_speedup", "\n".join(lines))
