"""Table IV — attack categories of detected servers.

Shape targets: both activity classes present (communication campaigns
*and* attacks on benign servers); iframe injection contributes a large
victim population; "other malicious servers" dominates the communication
class (as in the paper's 1,120 row).
"""

from repro.eval.tables import render_mapping


def test_table4_categories(runner, emit, benchmark):
    table4 = benchmark.pedantic(runner.table4, rounds=1, iterations=1)

    text = "\n\n".join(
        render_mapping(f"Table IV - {activity}", rows)
        for activity, rows in table4.items()
    )
    emit("table4_categories", text)

    communication = table4["Communication"]
    attacking = table4["Attacking"]
    assert communication["C&C"] > 0
    assert sum(communication.values()) > 0
    assert attacking["Iframe injection"] > 0
    assert attacking["Web scanner"] > 0
    # Iframe injection is the big attacking campaign (paper: 600 victims
    # vs dozens of scanner targets).
    assert attacking["Iframe injection"] > attacking["Web scanner"]
