"""Table III — number of servers in malicious activities vs threshold.

Shape targets: server counts decrease with threshold; SMASH detects a
multiple of IDS+blacklist coverage through "New Servers"; the headline
false-positive *rate* stays within the paper's order of magnitude
(<= ~0.5% of all trace servers, paper: 0.064%); zero FPs at 1.5.
"""

from repro.eval.experiments import THRESHOLDS
from repro.eval.tables import render_table


def test_table3_servers(runner, emit, benchmark):
    verifier = runner.verifier("2011")
    result = runner.result("2011", 0.8)
    benchmark.pedantic(
        verifier.verify,
        args=(result, 0.8),
        kwargs={"min_clients": 2},
        rounds=3,
        iterations=1,
    )

    table3 = runner.table3()
    blocks = []
    for label, sweep in table3.items():
        columns = {str(thresh): row for thresh, row in sweep.items()}
        rows = list(next(iter(columns.values())).keys())
        blocks.append(render_table(f"Table III - {label}", rows, columns))
    emit("table3_servers", "\n\n".join(blocks))

    for label, sweep in table3.items():
        counts = [sweep[t]["SMASH"] for t in THRESHOLDS]
        assert counts == sorted(counts, reverse=True), label
        operating = sweep[0.8]
        known = operating["IDS 2012"] + operating["IDS 2013"] + operating["Blacklist"]
        assert operating["New Servers"] >= known, (
            f"{label}: SMASH must discover servers beyond the ground-truth "
            "sources (the paper reports ~7x IDS+blacklist)"
        )
        assert sweep[1.5]["False Positives"] == 0, label

    summary = runner.verification("2011", 0.8)
    # The paper's 0.064% divides ~34 FP servers by ~52k trace servers; our
    # trace is ~20x smaller while the noisy herds (torrent/TeamViewer) do
    # not shrink with it, so the comparable bound is the same FP mass over
    # a much smaller denominator.
    assert summary.fp_rate <= 0.02, "FP rate out of the paper's regime"
    assert summary.fp_servers_updated <= summary.fp_servers
