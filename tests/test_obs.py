"""Observability tests: registry semantics, histogram bucketing, the
Prometheus exposition golden, snapshot round-trips, span nesting over a
full pipeline run, stream instrumentation, structured logging, and the
NullRecorder identity guarantee (enabled vs disabled outputs are
byte-identical, enforced in-process and across subprocess hash seeds).
"""

from __future__ import annotations

import json
import logging
import os
import subprocess
import sys
import threading
import urllib.request
from pathlib import Path

import pytest

from repro.config import SmashConfig
from repro.core.pipeline import SmashPipeline, dimension_build_stats
from repro.errors import ObsError
from repro.eval.export import result_to_dict
from repro.httplog.records import HttpRequest
from repro.httplog.trace import HttpTrace
from repro.obs import (
    NULL_RECORDER,
    PROMETHEUS_CONTENT_TYPE,
    JsonLogFormatter,
    MetricsRegistry,
    NullRecorder,
    configure_logging,
    detect_format,
    parse_prometheus_text,
    read_snapshot,
    render_stats,
    serve_prometheus_once,
    to_prometheus_text,
    write_prometheus,
    write_snapshot,
)
from repro.stream import DayPartition, StreamingSmash

SRC_DIR = Path(__file__).resolve().parent.parent / "src"


# -- registry semantics ------------------------------------------------------------


class TestRegistry:
    def test_counter_starts_at_zero_and_accumulates(self):
        registry = MetricsRegistry()
        counter = registry.counter("jobs_total", "Jobs.")
        assert counter.labels().value == 0.0
        counter.inc()
        counter.inc(2.5)
        assert counter.labels().value == 3.5

    def test_counter_rejects_negative_increments(self):
        registry = MetricsRegistry()
        with pytest.raises(ObsError):
            registry.counter("jobs_total").inc(-1)

    def test_gauge_moves_both_ways(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("depth", "Depth.")
        gauge.set(10)
        gauge.inc(2)
        gauge.dec(5)
        assert gauge.labels().value == 7.0

    def test_get_or_create_is_idempotent(self):
        registry = MetricsRegistry()
        first = registry.counter("x_total", "X.")
        again = registry.counter("x_total")
        assert first is again
        assert registry.get("x_total") is first
        assert registry.get("missing") is None

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("x_total", "X.")
        with pytest.raises(ObsError):
            registry.gauge("x_total")

    def test_label_set_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("x_total", labels=("kind",))
        with pytest.raises(ObsError):
            registry.counter("x_total", labels=("other",))

    def test_labels_call_must_match_declared_names(self):
        registry = MetricsRegistry()
        family = registry.counter("x_total", labels=("kind",))
        with pytest.raises(ObsError):
            family.labels(wrong="v")
        with pytest.raises(ObsError):
            family.inc()  # labelled family has no zero-label child
        family.labels(kind="a").inc()
        assert family.labels(kind="a").value == 1.0

    def test_histogram_bucket_conflict_raises(self):
        registry = MetricsRegistry()
        registry.histogram("h_seconds", buckets=(1.0, 2.0))
        with pytest.raises(ObsError):
            registry.histogram("h_seconds", buckets=(1.0, 3.0))

    def test_histogram_buckets_must_increase(self):
        registry = MetricsRegistry()
        with pytest.raises(ObsError):
            registry.histogram("h_seconds", buckets=(2.0, 1.0))

    def test_invalid_metric_name_raises(self):
        registry = MetricsRegistry()
        with pytest.raises(ObsError):
            registry.counter("0bad name")


class TestHistogram:
    def test_bucketing_is_cumulative_with_inf_tail(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("h_seconds", buckets=(0.5, 1.0))
        for value in (0.25, 0.75, 2.0):
            histogram.observe(value)
        child = histogram.labels()
        assert child.count == 3
        assert child.sum == pytest.approx(3.0)
        assert child.cumulative_buckets() == [
            (0.5, 1),
            (1.0, 2),
            (float("inf"), 3),
        ]

    def test_boundary_value_falls_in_its_bucket(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("h_seconds", buckets=(0.5, 1.0))
        histogram.observe(0.5)  # le is inclusive
        assert histogram.labels().cumulative_buckets()[0] == (0.5, 1)


# -- exporters ---------------------------------------------------------------------


def _golden_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.counter("jobs_total", "Jobs processed.", labels=("kind",)).labels(
        kind="mine"
    ).inc(3)
    histogram = registry.histogram("latency_seconds", "Latency.", buckets=(0.5, 1.0))
    for value in (0.25, 0.75, 2.0):
        histogram.observe(value)
    registry.gauge("queue_depth", "Queue depth.").set(2)
    return registry


GOLDEN_EXPOSITION = """\
# HELP jobs_total Jobs processed.
# TYPE jobs_total counter
jobs_total{kind="mine"} 3
# HELP latency_seconds Latency.
# TYPE latency_seconds histogram
latency_seconds_bucket{le="0.5"} 1
latency_seconds_bucket{le="1"} 2
latency_seconds_bucket{le="+Inf"} 3
latency_seconds_sum 3
latency_seconds_count 3
# HELP queue_depth Queue depth.
# TYPE queue_depth gauge
queue_depth 2
"""


class TestPrometheusExposition:
    def test_golden_rendering(self):
        assert to_prometheus_text(_golden_registry()) == GOLDEN_EXPOSITION

    def test_rendering_is_deterministic(self):
        assert to_prometheus_text(_golden_registry()) == to_prometheus_text(
            _golden_registry()
        )

    def test_parse_round_trip(self):
        series = parse_prometheus_text(GOLDEN_EXPOSITION)
        assert series["jobs_total"] == [({"kind": "mine"}, 3.0)]
        assert series["queue_depth"] == [({}, 2.0)]
        assert series["latency_seconds_count"] == [({}, 3.0)]
        assert series["latency_seconds_bucket"][-1] == ({"le": "+Inf"}, 3.0)

    def test_label_values_escape_and_round_trip(self):
        registry = MetricsRegistry()
        awkward = 'quo"te\\slash\nnewline'
        registry.counter("x_total", labels=("name",)).labels(name=awkward).inc()
        series = parse_prometheus_text(to_prometheus_text(registry))
        assert series["x_total"] == [({"name": awkward}, 1.0)]

    def test_parse_rejects_malformed_lines(self):
        for bad in ("just-a-name", 'x{le="0.5" 1', "x notanumber"):
            with pytest.raises(ObsError):
                parse_prometheus_text(bad)

    def test_write_prometheus_creates_parents(self, tmp_path):
        out = tmp_path / "deep" / "metrics.prom"
        write_prometheus(_golden_registry(), out)
        assert out.read_text() == GOLDEN_EXPOSITION

    def test_serve_once_over_http(self):
        registry = _golden_registry()
        address: list[tuple[str, int]] = []
        bound = threading.Event()

        def ready(addr):
            address.append(addr)
            bound.set()

        server = threading.Thread(
            target=serve_prometheus_once, args=(registry,), kwargs={"ready": ready}
        )
        server.start()
        try:
            assert bound.wait(timeout=10)
            host, port = address[0]
            with urllib.request.urlopen(
                f"http://{host}:{port}/metrics", timeout=10
            ) as response:
                assert response.status == 200
                assert response.headers["Content-Type"] == PROMETHEUS_CONTENT_TYPE
                body = response.read().decode("utf-8")
        finally:
            server.join(timeout=10)
        assert body == GOLDEN_EXPOSITION


class TestSnapshot:
    def test_write_read_round_trip(self, tmp_path):
        registry = _golden_registry()
        with registry.span("work", metric=None, kind="demo") as span:
            with registry.span("inner"):
                pass
        out = write_snapshot(registry, tmp_path / "trace.jsonl")
        loaded = read_snapshot(out)
        names = {row["name"] for row in loaded["metrics"]}
        assert names == {"jobs_total", "latency_seconds", "queue_depth"}
        spans = loaded["spans"]
        assert [row["name"] for row in spans] == ["work", "inner"]
        assert spans[0]["parent"] is None
        assert spans[1]["parent"] == spans[0]["index"]
        assert spans[0]["attributes"] == {"kind": "demo"}
        assert span.seconds >= 0.0

    def test_read_rejects_non_snapshot_files(self, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"type": "metric", "name": "x"}\n')
        with pytest.raises(ObsError):  # no meta header
            read_snapshot(bad)
        bad.write_text("not json\n")
        with pytest.raises(ObsError):
            read_snapshot(bad)

    def test_detect_format_and_render(self, tmp_path):
        registry = _golden_registry()
        with registry.span("work"):
            pass
        prom = write_prometheus(registry, tmp_path / "m.prom")
        snap = write_snapshot(registry, tmp_path / "t.jsonl")
        assert detect_format(prom) == "prometheus"
        assert detect_format(snap) == "snapshot"
        prom_report = render_stats(prom)
        snap_report = render_stats(snap)
        assert "jobs_total" in prom_report
        assert "queue_depth" in snap_report
        assert "work" in snap_report  # span tree only exists in snapshots
        assert "work" not in prom_report


# -- spans over real runs ----------------------------------------------------------


def _child_names(registry: MetricsRegistry, name: str) -> list[str]:
    (root,) = registry.spans_named(name)
    return [span.name for span in registry.children_of(root)]


class TestPipelineSpans:
    def test_full_run_span_tree(self, small_dataset):
        registry = MetricsRegistry()
        pipeline = SmashPipeline(SmashConfig(metrics=registry))
        mined = pipeline.mine(small_dataset.trace, whois=small_dataset.whois)
        pipeline.finish(mined, redirects=small_dataset.redirects)

        mine_children = _child_names(registry, "pipeline.mine")
        assert mine_children[0] == "pipeline.mine.preprocess"
        dimension_spans = [
            span
            for span in registry.spans_named("pipeline.mine.dimension")
        ]
        assert {span.attributes["dimension"] for span in dimension_spans} == {
            "client",
            "urifile",
            "ipset",
            "whois",
        }
        for span in dimension_spans:
            assert span.seconds > 0.0
            assert "enumerated_pairs" in span.attributes
        assert _child_names(registry, "pipeline.finish") == [
            "pipeline.finish.correlate",
            "pipeline.finish.prune",
            "pipeline.finish.infer",
        ]
        assert registry.histogram("smash_mine_seconds").labels().count == 1
        assert registry.counter(
            "smash_louvain_levels_total", labels=("dimension",)
        ).labels(dimension="client").value > 0
        stats = dimension_build_stats(mined)
        assert set(stats) >= {"client"}
        assert all("enumerated_pairs" in entry for entry in stats.values())

    def test_enabled_and_disabled_results_identical(self, small_dataset):
        plain = SmashPipeline()
        mined_plain = plain.mine(small_dataset.trace, whois=small_dataset.whois)
        result_plain = plain.finish(mined_plain, redirects=small_dataset.redirects)

        instrumented = SmashPipeline(SmashConfig(metrics=MetricsRegistry()))
        mined_inst = instrumented.mine(
            small_dataset.trace, whois=small_dataset.whois
        )
        result_inst = instrumented.finish(
            mined_inst, redirects=small_dataset.redirects
        )
        assert json.dumps(result_to_dict(result_plain), sort_keys=True) == json.dumps(
            result_to_dict(result_inst), sort_keys=True
        )


def _tiny_partition(day: int) -> DayPartition:
    # Content varies with the day so the incremental cache never reuses
    # a dimension and every advance really mines.
    requests = [
        HttpRequest(
            timestamp=float(i),
            client=f"c{i % 2}",
            host=f"d{day}h{i}.example",
            server_ip=f"10.0.{day}.{i}",
            uri="/x.html",
        )
        for i in range(4)
    ]
    return DayPartition(
        day=day, trace=HttpTrace(requests, name=f"day{day}"), whois=None
    )


class TestStreamMetrics:
    def test_advance_metrics_and_build_stats(self):
        registry = MetricsRegistry()
        engine = StreamingSmash(window_size=2, metrics=registry)
        updates = [engine.ingest_day(day, _tiny_partition(day).trace) for day in (0, 1)]

        assert len(registry.spans_named("stream.advance")) == 2
        assert registry.counter("smash_requests_ingested_total").labels().value == 8.0
        assert registry.gauge("smash_window_days").labels().value == 2.0
        assert registry.histogram("smash_advance_seconds").labels().count == 2
        mined = registry.counter(
            "smash_dimensions_mined_total", labels=("dimension",)
        )
        assert mined.labels(dimension="client").value == 2.0
        for update in updates:
            assert "client" in update.build_stats
            assert "enumerated_pairs" in update.build_stats["client"]

    def test_null_recorder_is_default_and_inert(self):
        engine = StreamingSmash(window_size=2)
        assert engine.metrics is NULL_RECORDER
        assert isinstance(engine.metrics, NullRecorder)
        assert not engine.metrics.enabled
        # Every recorder operation is a no-op returning shared singletons.
        with NULL_RECORDER.span("anything", metric="x_seconds", a=1) as span:
            span.set(b=2)
        assert NULL_RECORDER.counter("x_total") is NULL_RECORDER.gauge("y")
        NULL_RECORDER.counter("x_total").labels(kind="k").inc(5)
        NULL_RECORDER.record_span("external", 1.0)


# -- structured logging ------------------------------------------------------------


class TestLogging:
    def teardown_method(self):
        root = logging.getLogger("repro")
        for handler in list(root.handlers):
            root.removeHandler(handler)
        root.propagate = True

    def test_silent_without_configuration(self):
        assert logging.getLogger("repro").handlers == []

    def test_configure_is_idempotent(self):
        configure_logging("debug")
        configure_logging("info", json_mode=True)
        handlers = logging.getLogger("repro").handlers
        assert len(handlers) == 1
        assert isinstance(handlers[0].formatter, JsonLogFormatter)

    def test_unknown_level_raises(self):
        with pytest.raises(ValueError):
            configure_logging("loud")

    def test_json_formatter_merges_data(self):
        record = logging.LogRecord(
            "repro.stream", logging.INFO, __file__, 1, "advance", None, None
        )
        record.data = {"day": 3, "requests": 10}
        payload = json.loads(JsonLogFormatter().format(record))
        assert payload["message"] == "advance"
        assert payload["level"] == "info"
        assert payload["day"] == 3
        assert payload["requests"] == 10


# -- hash-seed identity: metrics on vs off -----------------------------------------


def _run_stream(tmp: Path, tag: str, hash_seed: int, with_obs: bool) -> dict[str, bytes]:
    """One subprocess `repro stream` run; returns its artifact bytes."""
    out_dir = tmp / tag
    out_dir.mkdir()
    args = [
        sys.executable,
        "-m",
        "repro",
        "stream",
        "--scenario",
        "small",
        "--days",
        "2",
        "--seed",
        "7",
        "--window",
        "2",
        "--out",
        str(out_dir / "summary.json"),
        "--campaigns-out",
        str(out_dir / "campaigns.json"),
        "--alerts",
        str(out_dir / "alerts.jsonl"),
        "--checkpoint",
        str(out_dir / "ckpt.json"),
    ]
    if with_obs:
        args += [
            "--metrics-out",
            str(out_dir / "metrics.prom"),
            "--trace-out",
            str(out_dir / "trace.jsonl"),
        ]
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = str(hash_seed)
    env["PYTHONPATH"] = str(SRC_DIR) + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    completed = subprocess.run(
        args, env=env, cwd=out_dir, capture_output=True, text=True, timeout=600
    )
    assert completed.returncode == 0, (
        f"stream run {tag} failed:\n{completed.stdout}\n{completed.stderr}"
    )
    if with_obs:
        # The exports must themselves be well-formed.
        parse_prometheus_text((out_dir / "metrics.prom").read_text())
        read_snapshot(out_dir / "trace.jsonl")
    return {
        name: (out_dir / name).read_bytes()
        for name in ("summary.json", "campaigns.json", "alerts.jsonl", "ckpt.json")
    }


def test_outputs_identical_with_metrics_on_or_off_across_hash_seeds(tmp_path):
    """Recording is metadata-only: every comparable artifact is
    byte-identical with and without the recorder, under different
    interpreter hash seeds."""
    baseline = _run_stream(tmp_path, "off-seed0", hash_seed=0, with_obs=False)
    for tag, hash_seed, with_obs in (
        ("on-seed0", 0, True),
        ("off-seed1", 1, False),
        ("on-seed1", 1, True),
    ):
        artifacts = _run_stream(tmp_path, tag, hash_seed=hash_seed, with_obs=with_obs)
        for name, content in baseline.items():
            assert artifacts[name] == content, f"{name} diverged in run {tag}"
