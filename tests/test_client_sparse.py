"""Equivalence and behaviour tests for the sparse client-graph builder."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import DimensionConfig
from repro.core.dimensions.client import build_client_graph
from repro.core.dimensions.client_sparse import (
    build_client_graph_sparse,
    scipy_available,
)
from repro.httplog.records import HttpRequest
from repro.httplog.trace import HttpTrace

pytestmark = pytest.mark.skipif(
    not scipy_available(), reason="scipy not installed"
)


def trace_from_visits(visits):
    """visits: iterable of (client, server) pairs."""
    return HttpTrace([
        HttpRequest(
            timestamp=0.0,
            client=client,
            host=server,
            server_ip="1.1.1.1",
            uri="/x.html",
        )
        for client, server in visits
    ])


def graphs_equal(a, b):
    if set(a.nodes) != set(b.nodes):
        return False
    edges_a = {frozenset((u, v)): w for u, v, w in a.edges()}
    edges_b = {frozenset((u, v)): w for u, v, w in b.edges()}
    if set(edges_a) != set(edges_b):
        return False
    return all(abs(edges_a[k] - edges_b[k]) < 1e-12 for k in edges_a)


class TestEquivalence:
    def test_simple_pair(self):
        trace = trace_from_visits([
            ("c1", "a.com"),
            ("c2", "a.com"),
            ("c1", "b.com"),
            ("c2", "b.com"),
            ("c3", "c.com"),
        ])
        config = DimensionConfig(client_min_edge_weight=1e-9)
        assert graphs_equal(
            build_client_graph(trace, config),
            build_client_graph_sparse(trace, config),
        )

    @settings(max_examples=40, deadline=None)
    @given(st.lists(
        st.tuples(st.integers(0, 6), st.integers(0, 8)),
        min_size=1,
        max_size=60,
    ))
    def test_equivalence_property(self, pairs):
        trace = trace_from_visits(
            (f"c{c}", f"s{s}.com") for c, s in pairs
        )
        for floor in (1e-9, 0.1, 0.5):
            config = DimensionConfig(client_min_edge_weight=floor)
            assert graphs_equal(
                build_client_graph(trace, config),
                build_client_graph_sparse(trace, config),
            )

    def test_small_dataset_equivalence(self, small_dataset):
        from repro.core.preprocess import preprocess
        prepared, _ = preprocess(small_dataset.trace)
        dense = build_client_graph(prepared)
        sparse = build_client_graph_sparse(prepared)
        assert graphs_equal(dense, sparse)

    def test_empty_ish_trace(self):
        trace = trace_from_visits([("c1", "only.com")])
        graph = build_client_graph_sparse(trace)
        assert set(graph.nodes) == {"only.com"}
        assert graph.num_edges() == 0
